"""Shared constants and dataset builders for the benchmark suite.

Import as ``from _common import ...`` — works both under pytest (which
puts ``benchmarks/`` on ``sys.path``) and when a bench file is run
directly as a script.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.datasets import make_geolife_like, make_openstreetmap_like

#: Base sizes for the scalability studies (laptop-scale stand-ins for
#: Geolife's 24.9M and OpenStreetMap's 2.77B points).
GEOLIFE_N = 40_000
OSM_N = 40_000

#: Parameters mirroring the paper's setup (Section IV-B): minPts = 100
#: on billions of points becomes minPts = 10 at our scale; the eps
#: values carry over because the simulators use the same units.
MIN_PTS = 10
GEOLIFE_EPS = 100.0
OSM_EPS = 1.0e6

#: The eps sweeps of Figs. 11 and 12 (paper values, same units).
GEOLIFE_EPS_SWEEP = (25.0, 50.0, 100.0, 200.0)
OSM_EPS_SWEEP = (2.5e5, 5.0e5, 1.0e6, 2.0e6)


@lru_cache(maxsize=1)
def geolife_dataset() -> np.ndarray:
    """Cached Geolife-like dataset."""
    return make_geolife_like(GEOLIFE_N, seed=0)


@lru_cache(maxsize=1)
def osm_dataset() -> np.ndarray:
    """Cached OpenStreetMap-like dataset."""
    return make_openstreetmap_like(OSM_N, seed=0)
