"""Ablation A4 — the cost of clustering vs outlier-only extraction.

The paper's central design argument (Sections I and III): one *could*
obtain the same outliers by running DBSCAN and keeping the noise, but
clustering pays for cluster construction — work DBSCOUT never does.
This ablation runs DBSCOUT and the exact grid-based DBSCAN (which
shares DBSCOUT's grid and core-point code, so the difference is purely
the cluster graph + labelling) on identical workloads and reports the
time split.  Noise/outlier equality is asserted.
"""

from __future__ import annotations

import time

import numpy as np

from _common import MIN_PTS, OSM_EPS
from repro import DBSCOUT
from repro.baselines import GridDBSCAN
from repro.datasets import make_openstreetmap_like
from repro.experiments import format_table


def dataset(n_points: int) -> np.ndarray:
    return make_openstreetmap_like(n_points, seed=8)


def run_pair(points: np.ndarray) -> tuple[float, float, dict[str, float]]:
    start = time.perf_counter()
    scout = DBSCOUT(eps=OSM_EPS, min_pts=MIN_PTS).fit(points)
    t_scout = time.perf_counter() - start

    clusterer = GridDBSCAN(OSM_EPS, MIN_PTS)
    start = time.perf_counter()
    detection = clusterer.detect(points)
    t_dbscan = time.perf_counter() - start

    assert np.array_equal(scout.outlier_mask, detection.outlier_mask)
    return t_scout, t_dbscan, dict(detection.timings.phases)


def test_dbscout_outliers_only(benchmark):
    points = dataset(20_000)
    engine = DBSCOUT(eps=OSM_EPS, min_pts=MIN_PTS)
    benchmark.pedantic(lambda: engine.fit(points), rounds=2, iterations=1)


def test_grid_dbscan_full_clustering(benchmark):
    points = dataset(20_000)
    clusterer = GridDBSCAN(OSM_EPS, MIN_PTS)
    benchmark.pedantic(lambda: clusterer.fit(points), rounds=2, iterations=1)


def test_same_outliers_and_clustering_overhead():
    points = dataset(20_000)
    t_scout, t_dbscan, phases = run_pair(points)
    # The clustering pipeline can never be cheaper than outlier-only
    # detection by more than noise; its cluster-graph phase is pure
    # extra work.
    assert phases["cluster_graph"] > 0
    assert t_dbscan + 0.05 > t_scout


def main() -> None:
    rows = []
    for n_points in (10_000, 20_000, 40_000):
        points = dataset(n_points)
        t_scout, t_dbscan, phases = run_pair(points)
        rows.append(
            [
                n_points,
                round(t_scout, 3),
                round(t_dbscan, 3),
                round(phases["cluster_graph"] + phases["labelling"], 3),
                round(t_dbscan / max(t_scout, 1e-9), 2),
            ]
        )
    print(
        format_table(
            [
                "n",
                "DBSCOUT (s)",
                "grid-DBSCAN (s)",
                "of which clustering (s)",
                "ratio",
            ],
            rows,
            title=(
                "Ablation A4: outlier-only extraction vs full clustering "
                "(identical outliers asserted)"
            ),
        )
    )


if __name__ == "__main__":
    main()
