"""Ablation A5 — dimensionality: the k_d growth in practice.

Table I shows ``k_d`` exploding with the dimension (21 -> 8M for
d = 2..9), but the paper argues that in practice the *non-empty*
neighbors per cell stay far below the theoretical stencil size because
data gets sparser with d.  This ablation runs DBSCOUT on Gaussian
mixtures of fixed size across d = 1..5 and reports both the stencil
constant and the realized work (distance computations per point,
non-empty neighbor statistics), plus the grid-tree cell planner's
``planner.cell_pairs_examined`` counter against the stencil planner's
— the tree stops paying the full ``k_d`` enumeration per cell once
the grid gets sparse.

Exposes ``BENCH_STATS`` for ``run_all.py --json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.neighbors import count_neighbor_offsets
from repro.core.vectorized import VectorizedEngine, detect
from repro.experiments import format_table

N_POINTS = 20_000
DIMENSIONS = (1, 2, 3, 4, 5)

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def dataset(n_dims: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5.0, 5.0, size=(5, n_dims))
    which = rng.integers(0, 5, size=int(N_POINTS * 0.95))
    clusters = centers[which] + rng.normal(
        0.0, 0.4, size=(which.size, n_dims)
    )
    scatter = rng.uniform(
        -10.0, 10.0, size=(N_POINTS - which.size, n_dims)
    )
    return np.vstack([clusters, scatter])


def eps_for(n_dims: int) -> float:
    # Keep the expected number of eps-neighbors roughly constant: the
    # volume of the eps-ball must not collapse as d grows.
    return 0.8 * (1.35 ** (n_dims - 2))


def run_dimension(n_dims: int):
    points = dataset(n_dims)
    start = time.perf_counter()
    result = detect(points, eps_for(n_dims), 10)
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_dimension_2(benchmark):
    benchmark.pedantic(lambda: run_dimension(2), rounds=2, iterations=1)


def test_dimension_4(benchmark):
    benchmark.pedantic(lambda: run_dimension(4), rounds=2, iterations=1)


def test_realized_work_grows_slower_than_kd():
    """The paper's sparsity argument: realized distance computations
    per point grow far slower than the stencil constant k_d."""
    work = {}
    for n_dims in (2, 4):
        _, result = run_dimension(n_dims)
        work[n_dims] = result.stats["distance_computations"] / N_POINTS
    kd_growth = count_neighbor_offsets(4) / count_neighbor_offsets(2)
    realized_growth = (work[4] + 1.0) / (work[2] + 1.0)
    assert realized_growth < kd_growth


def run_planner(n_dims: int, cell_planner: str):
    points = dataset(n_dims)
    engine = VectorizedEngine(kernel="numpy", cell_planner=cell_planner)
    start = time.perf_counter()
    result = engine.detect(points, eps_for(n_dims), 10)
    return time.perf_counter() - start, result


def test_tree_planner_prunes_high_dims():
    """At d >= 4 the grid tree must examine fewer cell pairs than the
    full-stencil enumeration, with bit-identical labels."""
    _, stencil = run_planner(4, "stencil")
    _, tree = run_planner(4, "tree")
    assert np.array_equal(stencil.outlier_mask, tree.outlier_mask)
    assert np.array_equal(stencil.core_mask, tree.core_mask)
    assert (
        tree.stats["planner.cell_pairs_examined"]
        < stencil.stats["planner.cell_pairs_examined"]
    )


def main() -> None:
    rows = []
    for n_dims in DIMENSIONS:
        elapsed, result = run_dimension(n_dims)
        rows.append(
            [
                n_dims,
                count_neighbor_offsets(n_dims),
                result.stats["n_cells"],
                round(result.stats["distance_computations"] / N_POINTS, 1),
                result.n_outliers,
                round(elapsed, 3),
            ]
        )
    print(
        format_table(
            [
                "d",
                "k_d (stencil)",
                "non-empty cells",
                "distances/point",
                "outliers",
                "seconds",
            ],
            rows,
            title=(
                "Ablation A5: dimensionality — theoretical stencil vs "
                f"realized work (n={N_POINTS})"
            ),
        )
    )

    planner_rows = []
    pairs_by_dim: dict[str, dict[str, int]] = {}
    for n_dims in DIMENSIONS:
        stencil_wall, stencil = run_planner(n_dims, "stencil")
        tree_wall, tree = run_planner(n_dims, "tree")
        assert np.array_equal(stencil.outlier_mask, tree.outlier_mask)
        assert np.array_equal(stencil.core_mask, tree.core_mask)
        s_pairs = stencil.stats["planner.cell_pairs_examined"]
        t_pairs = tree.stats["planner.cell_pairs_examined"]
        pairs_by_dim[str(n_dims)] = {
            "stencil": int(s_pairs),
            "tree": int(t_pairs),
        }
        planner_rows.append(
            [
                n_dims,
                s_pairs,
                t_pairs,
                round(s_pairs / max(1, t_pairs), 1),
                round(stencil_wall, 3),
                round(tree_wall, 3),
            ]
        )
    print()
    print(
        format_table(
            [
                "d",
                "pairs (stencil)",
                "pairs (tree)",
                "reduction",
                "stencil (s)",
                "tree (s)",
            ],
            planner_rows,
            title=(
                "Ablation A5b: cell-pair enumeration — full stencil vs "
                "grid-tree planner (labels bit-identical)"
            ),
        )
    )

    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_points": N_POINTS,
            "dimensions": list(DIMENSIONS),
            "planner_cell_pairs_examined": pairs_by_dim,
        }
    )


if __name__ == "__main__":
    main()
