"""Ablation A2 — vectorized vs distributed engine: parity and speed.

Both engines implement the identical algorithm; the vectorized one
replaces record-level RDD transformations with NumPy bulk operations.
This ablation quantifies the constant-factor gap (why the scalability
benches use the vectorized engine as the stand-in for the compiled
cluster implementation) and asserts exact result parity.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.distributed import DistributedEngine
from repro.core.vectorized import VectorizedEngine
from repro.datasets import make_openstreetmap_like
from repro.experiments import format_table

EPS = 5.0e5
MIN_PTS = 10


def dataset(n_points: int) -> np.ndarray:
    return make_openstreetmap_like(n_points, seed=4)


def test_vectorized_engine(benchmark):
    points = dataset(8_000)
    engine = VectorizedEngine()
    result = benchmark(lambda: engine.detect(points, EPS, MIN_PTS))
    assert result.n_points == 8_000


def test_distributed_engine(benchmark):
    points = dataset(8_000)
    engine = DistributedEngine(num_partitions=8)
    result = benchmark.pedantic(
        lambda: engine.detect(points, EPS, MIN_PTS), rounds=1, iterations=1
    )
    assert result.n_points == 8_000


def test_parity_on_bench_workload():
    points = dataset(8_000)
    vectorized = VectorizedEngine().detect(points, EPS, MIN_PTS)
    distributed = DistributedEngine(num_partitions=8).detect(
        points, EPS, MIN_PTS
    )
    assert np.array_equal(vectorized.outlier_mask, distributed.outlier_mask)
    assert np.array_equal(vectorized.core_mask, distributed.core_mask)


def main() -> None:
    rows = []
    for n_points in (2_000, 4_000, 8_000, 16_000):
        points = dataset(n_points)
        start = time.perf_counter()
        vectorized = VectorizedEngine().detect(points, EPS, MIN_PTS)
        t_vec = time.perf_counter() - start
        start = time.perf_counter()
        distributed = DistributedEngine(num_partitions=8).detect(
            points, EPS, MIN_PTS
        )
        t_dist = time.perf_counter() - start
        assert np.array_equal(
            vectorized.outlier_mask, distributed.outlier_mask
        )
        rows.append(
            [
                n_points,
                round(t_vec, 3),
                round(t_dist, 3),
                round(t_dist / t_vec, 1),
                vectorized.n_outliers,
            ]
        )
    print(
        format_table(
            ["n", "vectorized (s)", "distributed (s)", "ratio", "outliers"],
            rows,
            title="Ablation A2: engine parity and constant-factor gap",
        )
    )


if __name__ == "__main__":
    main()
