"""Ablation A3 — incremental maintenance vs recompute-from-scratch.

Extension beyond the paper: ``IncrementalDBSCOUT`` keeps the exact
result up to date across insertions by re-evaluating only the affected
neighborhoods.  The scenario is the natural one for GPS collections: a
large historical base, then a trickle of *spatially localized* update
batches (new fixes keep arriving around active areas).  Recomputing
batch DBSCOUT after every update pays the full-map cost each time;
incremental maintenance pays only for the touched neighborhoods.
(When a batch scatters uniformly over the whole map the advantage
disappears — the affected region IS the map; the bench reports both.)
"""

from __future__ import annotations

import time

import numpy as np

from _common import MIN_PTS, OSM_EPS
from repro import DBSCOUT, IncrementalDBSCOUT
from repro.datasets import make_openstreetmap_like
from repro.experiments import format_table

BASE_POINTS = 20_000
N_UPDATES = 20
UPDATE_SIZE = 100


def workload():
    """Historical base + localized update batches around one hotspot."""
    base = make_openstreetmap_like(BASE_POINTS, seed=13)
    rng = np.random.default_rng(99)
    hotspot = base[rng.integers(0, BASE_POINTS)]
    updates = [
        hotspot + rng.normal(0.0, 0.3e6, size=(UPDATE_SIZE, 2))
        for _ in range(N_UPDATES)
    ]
    return base, updates


def run_incremental() -> tuple[float, int]:
    base, updates = workload()
    detector = IncrementalDBSCOUT(eps=OSM_EPS, min_pts=MIN_PTS)
    detector.insert(base)
    detector.detect()  # initial load is paid once by both strategies
    start = time.perf_counter()
    result = None
    for batch in updates:
        detector.insert(batch)
        result = detector.detect()
    return time.perf_counter() - start, result.n_outliers


def run_recompute() -> tuple[float, int]:
    base, updates = workload()
    arrived = [base]
    DBSCOUT(eps=OSM_EPS, min_pts=MIN_PTS).fit(base)
    start = time.perf_counter()
    result = None
    for batch in updates:
        arrived.append(batch)
        result = DBSCOUT(eps=OSM_EPS, min_pts=MIN_PTS).fit(np.vstack(arrived))
    return time.perf_counter() - start, result.n_outliers


def test_incremental_stream(benchmark):
    _, n_outliers = benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    assert n_outliers > 0


def test_recompute_stream(benchmark):
    _, n_outliers = benchmark.pedantic(run_recompute, rounds=1, iterations=1)
    assert n_outliers > 0


def test_streams_agree():
    _, incremental_outliers = run_incremental()
    _, recompute_outliers = run_recompute()
    assert incremental_outliers == recompute_outliers


def test_incremental_wins_on_localized_updates():
    t_incremental, _ = run_incremental()
    t_recompute, _ = run_recompute()
    assert t_incremental < t_recompute


def main() -> None:
    t_incremental, n_inc = run_incremental()
    t_recompute, n_re = run_recompute()
    assert n_inc == n_re
    print(
        format_table(
            ["strategy", "update-phase seconds", "final outliers"],
            [
                ["incremental maintenance", round(t_incremental, 3), n_inc],
                ["recompute per update", round(t_recompute, 3), n_re],
            ],
            title=(
                f"Ablation A3: {BASE_POINTS}-point base + {N_UPDATES} "
                f"localized batches of {UPDATE_SIZE} (exact after each)"
            ),
        )
    )


if __name__ == "__main__":
    main()
