"""Ablation A1 — the join strategies of Section III-G.

The paper reports that *grouping before joining* gives up to 5x
speedups at low eps and that the *broadcast join* eliminates shuffle
traffic but risks memory blow-ups.  This ablation runs the distributed
engine under all three strategies on the same workload and reports
wall-clock plus the engine's shuffle metrics — the exact outlier set
is identical by construction (asserted).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.distributed import JOIN_STRATEGIES, DistributedEngine
from repro.datasets import make_openstreetmap_like
from repro.experiments import format_table
from repro.sparklite import Context

N_POINTS = 8_000
EPS = 5.0e5
MIN_PTS = 10


def dataset() -> np.ndarray:
    return make_openstreetmap_like(N_POINTS, seed=3)


def run_strategy(points: np.ndarray, strategy: str):
    context = Context(default_parallelism=8)
    engine = DistributedEngine(
        num_partitions=8, join_strategy=strategy, context=context
    )
    start = time.perf_counter()
    result = engine.detect(points, EPS, MIN_PTS)
    elapsed = time.perf_counter() - start
    return elapsed, result, context.metrics.snapshot()


def test_group_strategy(benchmark):
    points = dataset()
    benchmark.pedantic(
        lambda: run_strategy(points, "group"), rounds=1, iterations=1
    )


def test_plain_strategy(benchmark):
    points = dataset()
    benchmark.pedantic(
        lambda: run_strategy(points, "plain"), rounds=1, iterations=1
    )


def test_broadcast_strategy(benchmark):
    points = dataset()
    benchmark.pedantic(
        lambda: run_strategy(points, "broadcast"), rounds=1, iterations=1
    )


def test_all_strategies_exact_same_result():
    points = dataset()
    masks = []
    for strategy in JOIN_STRATEGIES:
        _, result, _ = run_strategy(points, strategy)
        masks.append(result.outlier_mask)
    assert np.array_equal(masks[0], masks[1])
    assert np.array_equal(masks[1], masks[2])


def test_broadcast_join_minimizes_shuffle():
    points = dataset()
    _, _, plain_metrics = run_strategy(points, "plain")
    _, _, broadcast_metrics = run_strategy(points, "broadcast")
    assert (
        broadcast_metrics["records_shuffled"]
        < plain_metrics["records_shuffled"]
    )


def main() -> None:
    points = dataset()
    rows = []
    for strategy in JOIN_STRATEGIES:
        elapsed, result, metrics = run_strategy(points, strategy)
        rows.append(
            [
                strategy,
                round(elapsed, 2),
                result.n_outliers,
                metrics["shuffles"],
                metrics["records_shuffled"],
                metrics["broadcasts"],
            ]
        )
    print(
        format_table(
            ["strategy", "seconds", "outliers", "shuffles", "records", "bcasts"],
            rows,
            title="Ablation A1: join strategies (Section III-G)",
        )
    )


if __name__ == "__main__":
    main()
