"""Ablation A7 — the compiled distance-kernel tier.

Times the exact same pipeline with the NumPy kernel and the compiled C
kernel (``repro.core.kernels``) on the clustered Table-II-style
workload, asserts bit-identical labels and identical
``distance_computations`` counters, and reports the speedup.  When no
C compiler is available the C row degrades to the NumPy fallback and
the table says so — the kernel tier is a performance hint, never a
correctness dependency.

Exposes ``BENCH_STATS`` for ``run_all.py --json``; the stats record
which kernel actually ran each row so captures are compared per
kernel by ``check_regression.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.kernels.c_kernel import c_kernel_status
from repro.core.vectorized import VectorizedEngine
from repro.datasets import make_geolife_like
from repro.experiments import format_table

#: Same generator as the pruning ablation (skewed GPS-like hotspots)
#: but at the paper's Section IV-B density: minPts = 100, eps doubled.
#: The other benches scale minPts down to 10 to keep brute-force
#: comparisons tractable; the kernel ablation keeps the paper value so
#: the pair-count hot path carries paper-scale work (~59M pairs)
#: instead of being dominated by grid and planner overhead.
N_POINTS = 200_000
EPS = 200.0
MIN_PTS = 100

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def dataset() -> np.ndarray:
    return make_geolife_like(N_POINTS, seed=0)


def _timed_detect(kernel: str, points: np.ndarray):
    engine = VectorizedEngine(kernel=kernel)
    start = time.perf_counter()
    result = engine.detect(points, EPS, MIN_PTS)
    return result, time.perf_counter() - start


def _kernel_microbench():
    """Hot-path-only timing: the segmented pair-count contract alone.

    The end-to-end walls above include grid construction and label
    assembly, which the kernel tier does not touch; this isolates the
    per-pair distance work the C kernel replaces.
    """
    from repro.core.kernels import resolve_kernel

    rng = np.random.default_rng(0)
    n_cells = 2000
    m_sizes = rng.integers(5, 30, size=n_cells)
    c_sizes = rng.integers(20, 120, size=n_cells)
    n_points = N_POINTS
    array = rng.uniform(0.0, 100.0, size=(n_points, 2))
    members = rng.integers(0, n_points, size=int(m_sizes.sum()))
    cands = rng.integers(0, n_points, size=int(c_sizes.sum()))
    pairs = int((m_sizes * c_sizes).sum())
    walls = {}
    baseline = None
    for name in ("numpy", "c"):
        kernel = resolve_kernel(name)
        counters = {}
        start = time.perf_counter()
        for _ in range(3):
            counts = kernel.segmented_pair_counts(
                array, members, m_sizes, cands, c_sizes, 4.0, counters
            )
        walls[name] = (time.perf_counter() - start) / 3
        if baseline is None:
            baseline = counts
        else:
            assert np.array_equal(baseline, counts)
    return pairs, walls


def test_kernel_parity_small():
    points = make_geolife_like(20_000, seed=0)
    ref, _ = _timed_detect("numpy", points)
    got, _ = _timed_detect("c", points)
    assert np.array_equal(ref.outlier_mask, got.outlier_mask)
    assert np.array_equal(ref.core_mask, got.core_mask)
    assert (
        ref.stats["distance_computations"]
        == got.stats["distance_computations"]
    )


def main() -> None:
    status = c_kernel_status()
    points = dataset()

    rows = []
    results = {}
    for requested in ("numpy", "c"):
        result, elapsed = _timed_detect(requested, points)
        ran = result.record.context["kernel"]
        results[requested] = (result, elapsed, ran)
        rows.append(
            [
                requested,
                ran + ("" if ran == requested else " (fallback)"),
                round(elapsed, 3),
                result.stats["distance_computations"],
                result.n_outliers,
            ]
        )

    ref, ref_wall, _ = results["numpy"]
    got, got_wall, got_ran = results["c"]
    assert np.array_equal(ref.outlier_mask, got.outlier_mask)
    assert np.array_equal(ref.core_mask, got.core_mask)
    assert (
        ref.stats["distance_computations"]
        == got.stats["distance_computations"]
    )
    speedup = ref_wall / max(got_wall, 1e-9)

    print(
        format_table(
            ["requested", "ran", "wall (s)", "distances", "outliers"],
            rows,
            title=(
                "Ablation A7: distance-kernel tier "
                f"(geolife-like, n={N_POINTS}, eps={EPS}, "
                f"min_pts={MIN_PTS})"
            ),
        )
    )
    pairs, kernel_walls = _kernel_microbench()
    kernel_speedup = kernel_walls["numpy"] / max(kernel_walls["c"], 1e-9)
    print(
        format_table(
            ["kernel", "wall (s)", "Mpairs/s"],
            [
                [
                    name,
                    round(wall, 4),
                    round(pairs / wall / 1e6, 1),
                ]
                for name, wall in kernel_walls.items()
            ],
            title=(
                "Ablation A7b: pair-count hot path alone "
                f"({pairs} pairs per call, mean of 3)"
            ),
        )
    )
    if status["available"]:
        print(
            f"C kernel: {status['compiler']} -> {status['library']}\n"
            f"end-to-end speedup over NumPy: {speedup:.2f}x; "
            f"hot path alone: {kernel_speedup:.1f}x "
            "(labels and counters bit-identical)"
        )
    else:
        print(
            "C kernel unavailable "
            f"({status['reason']}); both rows ran NumPy"
        )

    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_points": N_POINTS,
            "eps": EPS,
            "min_pts": MIN_PTS,
            "c_kernel_available": bool(status["available"]),
            "compiler": status.get("compiler"),
            "kernel_ran": {"numpy": "numpy", "c": got_ran},
            "wall_seconds": {
                "numpy": round(ref_wall, 3),
                "c": round(got_wall, 3),
            },
            "speedup_c_over_numpy": round(speedup, 2),
            "kernel_only_wall_seconds": {
                name: round(wall, 5)
                for name, wall in kernel_walls.items()
            },
            "kernel_only_speedup": round(kernel_speedup, 1),
            "distance_computations": int(
                ref.stats["distance_computations"]
            ),
        }
    )


if __name__ == "__main__":
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    main()
