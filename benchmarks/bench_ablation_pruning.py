"""Ablation A6 — cell-geometry pruning and multi-core sharding.

Quantifies the two performance layers this repository adds on top of
the paper's exact pipeline (see ``docs/architecture.md``):

1. **Pruning** — bounding-box covered/excluded classification of cell
   pairs plus covered-cell settling.  Measured as the reduction in
   ``distance_computations`` (the paper's per-tuple work budget) on a
   clustered Table-II-style synthetic workload, with exact result
   parity asserted.
2. **Sharding** — ``n_jobs`` in {1, 2, 4} over the shared-memory
   process pool.  On a single-core container the pool cannot beat the
   serial path; the table reports whatever the hardware gives.

Exposes ``BENCH_STATS`` for ``run_all.py --json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.vectorized import VectorizedEngine
from repro.datasets import make_geolife_like
from repro.experiments import format_table

from _common import MIN_PTS

#: The clustered Table-II-style workload: skewed GPS-like hotspots at
#: the scale the multi-core criterion targets.
N_POINTS = 200_000
EPS = 100.0

N_JOBS_SWEEP = (1, 2, 4)

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def dataset() -> np.ndarray:
    return make_geolife_like(N_POINTS, seed=0)


def _timed_detect(engine: VectorizedEngine, points: np.ndarray):
    start = time.perf_counter()
    result = engine.detect(points, EPS, MIN_PTS)
    return result, time.perf_counter() - start


def test_pruning_parity_and_reduction():
    points = make_geolife_like(40_000, seed=0)
    pruned = VectorizedEngine(pruning=True).detect(points, EPS, MIN_PTS)
    plain = VectorizedEngine(pruning=False).detect(points, EPS, MIN_PTS)
    assert np.array_equal(pruned.outlier_mask, plain.outlier_mask)
    assert np.array_equal(pruned.core_mask, plain.core_mask)
    assert (
        pruned.stats["distance_computations"]
        < plain.stats["distance_computations"]
    )
    assert pruned.stats["pairs_skipped_covered"] > 0


def main() -> None:
    points = dataset()

    results = {}
    rows = []
    for label, engine in (
        ("pruning off", VectorizedEngine(pruning=False)),
        ("pruning on", VectorizedEngine(pruning=True)),
    ):
        result, elapsed = _timed_detect(engine, points)
        results[label] = (result, elapsed)
        rows.append(
            [
                label,
                round(elapsed, 3),
                result.stats["distance_computations"],
                result.stats["pairs_skipped_covered"],
                result.stats["pairs_skipped_excluded"],
                result.stats["cells_settled_covered"],
            ]
        )
    plain, _ = results["pruning off"]
    pruned, _ = results["pruning on"]
    assert np.array_equal(pruned.outlier_mask, plain.outlier_mask)
    assert np.array_equal(pruned.core_mask, plain.core_mask)
    reduction = 1.0 - (
        pruned.stats["distance_computations"]
        / max(1, plain.stats["distance_computations"])
    )
    print(
        format_table(
            [
                "variant",
                "wall (s)",
                "distances",
                "skipped covered",
                "skipped excluded",
                "cells settled",
            ],
            rows,
            title=(
                "Ablation A6a: cell-geometry pruning "
                f"(geolife-like, n={N_POINTS}, eps={EPS}, "
                f"min_pts={MIN_PTS})"
            ),
        )
    )
    print(f"distance-computation reduction: {reduction:.1%}\n")

    job_rows = []
    wall_by_jobs = {}
    for n_jobs in N_JOBS_SWEEP:
        engine = VectorizedEngine(n_jobs=n_jobs)
        result, elapsed = _timed_detect(engine, points)
        assert np.array_equal(result.outlier_mask, pruned.outlier_mask)
        assert np.array_equal(result.core_mask, pruned.core_mask)
        wall_by_jobs[n_jobs] = elapsed
        job_rows.append(
            [
                n_jobs,
                round(elapsed, 3),
                round(wall_by_jobs[1] / elapsed, 2),
                result.stats["distance_computations"],
            ]
        )
    print(
        format_table(
            ["n_jobs", "wall (s)", "speedup", "distances"],
            job_rows,
            title=(
                "Ablation A6b: shared-memory sharding "
                f"({os.cpu_count() or 1} CPU(s) visible)"
            ),
        )
    )

    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_points": N_POINTS,
            "eps": EPS,
            "min_pts": MIN_PTS,
            # Which distance kernel actually ran (kernel="auto" resolves
            # per machine) — captures are only comparable per kernel.
            "kernel": pruned.record.context["kernel"],
            "distance_computations_pruned": int(
                pruned.stats["distance_computations"]
            ),
            "distance_computations_unpruned": int(
                plain.stats["distance_computations"]
            ),
            "distance_reduction_pct": round(100.0 * reduction, 1),
            "pairs_skipped_covered": int(
                pruned.stats["pairs_skipped_covered"]
            ),
            "pairs_skipped_excluded": int(
                pruned.stats["pairs_skipped_excluded"]
            ),
            "cells_settled_covered": int(
                pruned.stats["cells_settled_covered"]
            ),
            "wall_seconds_by_n_jobs": {
                str(k): round(v, 3) for k, v in wall_by_jobs.items()
            },
            "cpus_visible": os.cpu_count() or 1,
        }
    )


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    main()
