"""Extension E1 — detection quality on labeled 3-D GPS data.

The paper evaluates quality only on small 2-D benchmarks (Table III);
its flagship workload (skewed 3-D GPS) is judged on runtime alone.
This extension bench closes that gap: the labeled Geolife-like dataset
plants isolated anomalies (spoofed/glitched fixes) into the hotspot +
tracks structure, and every detector is scored with outlier-class F1
and ROC-AUC.

The shape expectation transfers from Table III: density-based
detection must stay strong without any contamination quota.  A nuance
worth keeping: the planted anomalies are *isolated by construction*,
which is precisely the kNN-distance detector's definition — so kNN
scores perfectly here; DBSCOUT matches it closely while also covering
the Table III cases (boundary noise) where kNN-distance collapses.
"""

from __future__ import annotations

import numpy as np

from repro import DBSCOUT, estimate_eps
from repro.baselines import HBOS, IsolationForest, KNNOutlierDetector, LocalOutlierFactor
from repro.core.scoring import nearest_core_distance
from repro.datasets import make_geolife_like_labeled
from repro.experiments import format_table
from repro.metrics import f1_score, roc_auc_score

N_POINTS = 15_000
MIN_PTS = 10


def dataset():
    return make_geolife_like_labeled(N_POINTS, anomaly_fraction=0.01, seed=3)


def evaluate() -> list[list]:
    ds = dataset()
    points, labels = ds.points, ds.outlier_labels
    nu = ds.contamination
    eps = estimate_eps(points, MIN_PTS, sample_size=5_000)

    rows = []
    result = DBSCOUT(eps=eps, min_pts=MIN_PTS).fit(points)
    scores = nearest_core_distance(points, eps, MIN_PTS)
    scores = np.where(np.isinf(scores), 1e18, scores)
    rows.append(
        [
            "DBSCOUT",
            f1_score(labels, result.outlier_mask),
            roc_auc_score(labels, scores),
        ]
    )
    for name, detector in (
        ("LOF", LocalOutlierFactor(k=20, contamination=nu)),
        ("kNN-dist", KNNOutlierDetector(k=MIN_PTS, contamination=nu)),
        ("IF", IsolationForest(contamination=nu, seed=0)),
        ("HBOS", HBOS(contamination=nu)),
    ):
        detected = detector.detect(points)
        rows.append(
            [
                name,
                f1_score(labels, detected.outlier_mask),
                roc_auc_score(labels, detected.scores),
            ]
        )
    return rows


def test_geospatial_quality(benchmark):
    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    scores = {row[0]: row[1] for row in rows}
    # Density-based methods must clearly beat the statistical ones on
    # the multi-scale GPS structure.
    assert scores["DBSCOUT"] > 0.7
    assert scores["DBSCOUT"] >= scores["HBOS"]


def main() -> None:
    rows = evaluate()
    print(
        format_table(
            ["detector", "F1", "ROC-AUC"],
            rows,
            title=(
                "Extension E1: quality on labeled Geolife-like GPS "
                f"(n={N_POINTS}, 1% planted anomalies)"
            ),
        )
    )


if __name__ == "__main__":
    main()
