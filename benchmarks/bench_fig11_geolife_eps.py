"""Fig. 11 — Geolife: scalability with respect to eps.

On the heavily skewed Geolife data the paper finds *no* consistent
winner between DBSCOUT and RP-DBSCAN across eps: the giant hotspot cell
(40% of points at eps = 200) favors RP-DBSCAN's cell-level summaries
while making DBSCOUT's joins heavier.  The reproduced series prints
both algorithms over the paper's eps sweep {25, 50, 100, 200}.
"""

from __future__ import annotations

import time

from _common import GEOLIFE_EPS_SWEEP, MIN_PTS, geolife_dataset
from repro import DBSCOUT
from repro.baselines import RPDBSCAN
from repro.experiments import format_series


def time_dbscout(points, eps: float) -> float:
    start = time.perf_counter()
    DBSCOUT(eps=eps, min_pts=MIN_PTS).fit(points)
    return time.perf_counter() - start


def time_rp_dbscan(points, eps: float) -> float:
    start = time.perf_counter()
    RPDBSCAN(eps, MIN_PTS, rho=0.01, num_partitions=8).detect(points)
    return time.perf_counter() - start


def test_dbscout_eps_smallest(benchmark, geolife):
    benchmark.pedantic(
        lambda: time_dbscout(geolife, GEOLIFE_EPS_SWEEP[0]),
        rounds=2,
        iterations=1,
    )


def test_dbscout_eps_largest(benchmark, geolife):
    benchmark.pedantic(
        lambda: time_dbscout(geolife, GEOLIFE_EPS_SWEEP[-1]),
        rounds=2,
        iterations=1,
    )


def test_rp_dbscan_eps_largest(benchmark, geolife):
    benchmark.pedantic(
        lambda: time_rp_dbscan(geolife, GEOLIFE_EPS_SWEEP[-1]),
        rounds=1,
        iterations=1,
    )


def test_results_identical_across_eps_order(geolife):
    """Sanity: eps sweep must be monotone in the outlier counts."""
    counts = [
        DBSCOUT(eps=eps, min_pts=MIN_PTS).fit(geolife).n_outliers
        for eps in GEOLIFE_EPS_SWEEP
    ]
    assert counts == sorted(counts, reverse=True)


def main() -> None:
    points = geolife_dataset()
    series = {"DBSCOUT": {}, "RP-DBSCAN": {}}
    for eps in GEOLIFE_EPS_SWEEP:
        series["DBSCOUT"][eps] = time_dbscout(points, eps)
        series["RP-DBSCAN"][eps] = time_rp_dbscan(points, eps)
    print(
        format_series(
            "eps",
            series,
            title="Fig. 11: Geolife — running time (s) vs eps (minPts=10)",
        )
    )


if __name__ == "__main__":
    main()
