"""Fig. 12 — OpenStreetMap: scalability with respect to eps.

The paper's finding: on OSM both algorithms get faster as eps grows
(fewer cells), DBSCOUT wins almost everywhere, and the gap is largest
at the smallest eps (RP-DBSCAN up to 4.5x slower).
"""

from __future__ import annotations

import time

from _common import MIN_PTS, OSM_EPS_SWEEP, osm_dataset
from repro import DBSCOUT
from repro.baselines import RPDBSCAN
from repro.experiments import format_series


def time_dbscout(points, eps: float) -> float:
    start = time.perf_counter()
    DBSCOUT(eps=eps, min_pts=MIN_PTS).fit(points)
    return time.perf_counter() - start


def time_rp_dbscan(points, eps: float) -> float:
    start = time.perf_counter()
    RPDBSCAN(eps, MIN_PTS, rho=0.01, num_partitions=8).detect(points)
    return time.perf_counter() - start


def test_dbscout_eps_smallest(benchmark, osm):
    benchmark.pedantic(
        lambda: time_dbscout(osm, OSM_EPS_SWEEP[0]), rounds=2, iterations=1
    )


def test_dbscout_eps_largest(benchmark, osm):
    benchmark.pedantic(
        lambda: time_dbscout(osm, OSM_EPS_SWEEP[-1]), rounds=2, iterations=1
    )


def test_rp_dbscan_eps_smallest(benchmark, osm):
    benchmark.pedantic(
        lambda: time_rp_dbscan(osm, OSM_EPS_SWEEP[0]), rounds=1, iterations=1
    )


def test_dbscout_faster_than_rp_dbscan_at_low_eps(osm):
    """Fig. 12's key shape: DBSCOUT wins at the smallest eps."""
    eps = OSM_EPS_SWEEP[0]
    t_scout = min(time_dbscout(osm, eps) for _ in range(2))
    t_rp = time_rp_dbscan(osm, eps)
    assert t_scout < t_rp


def main() -> None:
    points = osm_dataset()
    series = {"DBSCOUT": {}, "RP-DBSCAN": {}}
    for eps in OSM_EPS_SWEEP:
        series["DBSCOUT"][eps] = time_dbscout(points, eps)
        series["RP-DBSCAN"][eps] = time_rp_dbscan(points, eps)
    print(
        format_series(
            "eps",
            series,
            title="Fig. 12: OpenStreetMap — running time (s) vs eps (minPts=10)",
        )
    )
    worst = OSM_EPS_SWEEP[0]
    ratio = series["RP-DBSCAN"][worst] / series["DBSCOUT"][worst]
    print(f"\nRP-DBSCAN / DBSCOUT at the lowest eps: {ratio:.1f}x (paper: 4.5x)")


if __name__ == "__main__":
    main()
