"""Fig. 13 — OpenStreetMap: scalability vs number of data partitions.

The paper's contrast: DBSCOUT benefits from splitting the data until a
plateau, while RP-DBSCAN's running time *increases* almost linearly
with the partition count (its per-partition cell dictionaries and
cluster-fragment merging duplicate work), so DBSCOUT suits horizontal
scaling better.

Reproduction caveat (documented in EXPERIMENTS.md): our executors are
threads inside one Python process, so the initial multi-machine
speedup of DBSCOUT cannot materialize (GIL); DBSCOUT shows the plateau
part of the curve (flat), while RP-DBSCAN's degradation — the figure's
actual argument — reproduces mechanically through its duplicated
per-partition work.
"""

from __future__ import annotations

import argparse
import time

from _common import MIN_PTS, OSM_EPS
from repro.baselines import RPDBSCAN
from repro.core.distributed import DistributedEngine
from repro.datasets import make_openstreetmap_like
from repro.experiments import format_series

PARTITION_SWEEP = (1, 2, 4, 8, 16, 32)
N_POINTS = 15_000

#: Published to ``run_all.py --json``; ``--net`` adds the wire-volume
#: counters (``sparklite.net.bytes_out`` / ``bytes_in``) of a real
#: loopback multi-process run.
BENCH_STATS: dict[str, object] = {}


def dataset(n_points: int = N_POINTS):
    return make_openstreetmap_like(n_points, seed=0)


def time_dbscout(points, num_partitions: int) -> float:
    engine = DistributedEngine(
        num_partitions=num_partitions, join_strategy="group"
    )
    start = time.perf_counter()
    engine.detect(points, OSM_EPS, MIN_PTS)
    return time.perf_counter() - start


def time_rp_dbscan(points, num_partitions: int) -> float:
    start = time.perf_counter()
    RPDBSCAN(
        OSM_EPS, MIN_PTS, rho=0.01, num_partitions=num_partitions
    ).detect(points)
    return time.perf_counter() - start


def test_dbscout_8_partitions(benchmark):
    points = dataset()
    benchmark.pedantic(
        lambda: time_dbscout(points, 8), rounds=1, iterations=1
    )


def test_rp_dbscan_8_partitions(benchmark):
    points = dataset()
    benchmark.pedantic(
        lambda: time_rp_dbscan(points, 8), rounds=1, iterations=1
    )


def test_rp_dbscan_degrades_with_partitions():
    """The figure's key claim: RP-DBSCAN slows down as partitions grow."""
    points = dataset()
    t_few = min(time_rp_dbscan(points, 1) for _ in range(2))
    t_many = min(time_rp_dbscan(points, 32) for _ in range(2))
    assert t_many > t_few


def test_dbscout_stays_flat_with_partitions():
    """DBSCOUT's plateau: no blow-up as the partition count grows."""
    points = dataset()
    t_few = min(time_dbscout(points, 1) for _ in range(2))
    t_many = min(time_dbscout(points, 32) for _ in range(2))
    assert t_many < 3.0 * t_few


def time_dbscout_net(points, num_partitions: int, n_workers: int):
    """One DBSCOUT fit over a real loopback worker cluster.

    Returns ``(elapsed_seconds, net_stats)`` where the stats carry the
    run's ``net.*`` wire counters (bytes, tasks, latency).
    """
    from repro.sparklite.netexec import LoopbackCluster

    with LoopbackCluster(
        n_workers=n_workers, default_parallelism=num_partitions
    ) as cluster:
        engine = DistributedEngine(
            num_partitions=num_partitions,
            context=cluster.context,
            join_strategy="group",
            partitioner="cells",
        )
        start = time.perf_counter()
        result = engine.detect(points, OSM_EPS, MIN_PTS)
        elapsed = time.perf_counter() - start
    net_stats = {
        f"sparklite.{key}": value
        for key, value in result.stats.items()
        if key.startswith("net.")
    }
    return elapsed, net_stats


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--net",
        action="store_true",
        help="also run DBSCOUT over a loopback TCP worker cluster",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for --net (default 2)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=N_POINTS,
        help=f"dataset size (default {N_POINTS})",
    )
    args = parser.parse_args(argv)
    points = dataset(args.n)
    series = {"DBSCOUT": {}, "RP-DBSCAN": {}}
    for num_partitions in PARTITION_SWEEP:
        series["DBSCOUT"][num_partitions] = time_dbscout(
            points, num_partitions
        )
        series["RP-DBSCAN"][num_partitions] = time_rp_dbscan(
            points, num_partitions
        )
    print(
        format_series(
            "partitions",
            series,
            title=(
                "Fig. 13: running time (s) vs number of partitions "
                f"(OSM-like, n={args.n}, eps={OSM_EPS:g}, minPts={MIN_PTS})"
            ),
        )
    )
    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_points": args.n,
            "partition_sweep": list(PARTITION_SWEEP),
            "dbscout_seconds": dict(series["DBSCOUT"]),
            "rp_dbscan_seconds": dict(series["RP-DBSCAN"]),
        }
    )
    if args.net:
        elapsed, net_stats = time_dbscout_net(points, 8, args.workers)
        print(
            f"\nDBSCOUT over {args.workers} TCP worker(s), 8 partitions: "
            f"{elapsed:.3f}s, "
            f"{net_stats.get('sparklite.net.bytes_out', 0)} bytes out, "
            f"{net_stats.get('sparklite.net.bytes_in', 0)} bytes in"
        )
        BENCH_STATS["net_workers"] = args.workers
        BENCH_STATS["net_seconds"] = elapsed
        BENCH_STATS.update(net_stats)


if __name__ == "__main__":
    main()
