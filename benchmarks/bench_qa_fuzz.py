"""QA fuzz throughput — differential cases per second, per engine family.

Not a paper table: this bench sizes the standing exactness oracle
(:mod:`repro.qa`).  It measures how many adversarial differential
cases per second the full engine matrix sustains (which bounds how
many seeds a time-boxed CI fuzz session covers) and breaks the cost
down per variant so a regression in one engine's throughput is
visible.  The run doubles as a smoke check: any divergence fails the
bench outright.
"""

from __future__ import annotations

import time

from repro.experiments import format_table
from repro.qa import DifferentialRunner, generate_dataset
from repro.qa.runner import VARIANT_NAMES

N_SEEDS = 150
FIRST_SEED = 0

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def _run_matrix(n_seeds: int) -> dict[str, float]:
    """Per-variant wall time over ``n_seeds`` differential cases."""
    datasets = [
        generate_dataset(seed)
        for seed in range(FIRST_SEED, FIRST_SEED + n_seeds)
    ]
    per_variant: dict[str, float] = {}
    for name in VARIANT_NAMES:
        runner = DifferentialRunner(variants=(name,), emit_records=False)
        start = time.perf_counter()
        for dataset in datasets:
            result = runner.run_case(dataset)
            assert result.ok, [str(d) for d in result.divergences]
        per_variant[name] = time.perf_counter() - start
    return per_variant


def main() -> None:
    start = time.perf_counter()
    per_variant = _run_matrix(N_SEEDS)
    total = time.perf_counter() - start
    rows = [
        [name, f"{wall:.2f}", f"{N_SEEDS / wall:.0f}"]
        for name, wall in sorted(
            per_variant.items(), key=lambda item: -item[1]
        )
    ]
    print(
        format_table(
            ["variant", "wall (s)", "cases/s"],
            rows,
            title=f"Differential fuzz throughput ({N_SEEDS} seeds/variant)",
        )
    )
    print(
        f"full matrix: {N_SEEDS} seeds x {len(per_variant)} variants "
        f"in {total:.1f}s ({N_SEEDS * len(per_variant) / total:.0f} "
        "variant-cases/s), zero divergences"
    )
    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_seeds": N_SEEDS,
            "n_variants": len(per_variant),
            "total_wall_s": total,
            "per_variant_wall_s": per_variant,
        }
    )


def test_differential_case_throughput(benchmark):
    """Time one full-matrix differential case (all variants, one seed)."""
    runner = DifferentialRunner(emit_records=False)
    dataset = generate_dataset(11)

    def one_case():
        result = runner.run_case(dataset)
        assert result.ok
        return result

    benchmark(one_case)


if __name__ == "__main__":
    main()
