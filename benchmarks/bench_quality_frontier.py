"""Quality-vs-latency frontier of the approximate tier.

Runs the exact engine and the ``balanced`` / ``fast`` presets
(``repro.core.approx``) on the clustered Table-II-style workload at the
paper's Section IV-B density, and reports one frontier row per preset:
wall time, speedup over exact, and precision/recall/F1 of the flagged
outlier set against the exact labels.  The scores are computed twice —
directly from the masks and from the engine's self-audit
(``approx.*`` stats) — and the bench asserts they agree, so the audit
the tier ships with is itself validated against ground truth.

The tier's guarantee makes the frontier one-sided: recall is 1.0 by
construction (approximate runs never miss an exact outlier), and the
presets trade precision for speed.

Every row pins ``kernel="numpy"`` so the frontier isolates the
approximation axis on the portable kernel tier: the sampling tier's
win is *fewer distances computed*, which the compiled C kernel (its
own ablation, ``bench_ablation_kernels``) would partially mask behind
the shared grid/planner overhead.  The tiers compose — C kernel plus
``fast`` is the fastest configuration of all.

Usage:
    python benchmarks/bench_quality_frontier.py [--smoke] [--check]

``--smoke`` shrinks the workload for CI; ``--check`` turns the frontier
into a hard gate (exit 1) on: balanced recall >= 0.95 vs exact, exact
labels reproduced bit-identically by every audit, and the superset
guarantee holding for every preset.  Exposes ``BENCH_STATS`` for
``run_all.py --json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.approx import ApproxEngine
from repro.core.vectorized import VectorizedEngine
from repro.datasets import make_geolife_like
from repro.experiments import format_table
from repro.metrics import f1_score, precision_score, recall_score

#: The bench_ablation_kernels workload: skewed GPS-like hotspots at
#: paper density, where the pair-count hot path dominates and the
#: sampling tier has real work to cut.
N_POINTS = 200_000
SMOKE_N_POINTS = 50_000
EPS = 200.0
MIN_PTS = 100

#: CI gate: balanced recall vs exact must stay above this floor.  The
#: tier's construction puts recall at exactly 1.0; the floor is the
#: regression tripwire for anything that breaks the one-sided error.
RECALL_FLOOR = 0.95

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def _scores_vs_exact(
    exact_mask: np.ndarray, approx_mask: np.ndarray
) -> dict[str, float]:
    if not exact_mask.any():
        # No exact outliers: recall has a zero denominator; by the
        # superset guarantee nothing can be missed, so gate-wise this
        # counts as perfect recall.
        return {
            "precision": precision_score(exact_mask, approx_mask),
            "recall": 1.0,
            "f1": f1_score(exact_mask, approx_mask),
        }
    return {
        "precision": precision_score(exact_mask, approx_mask),
        "recall": recall_score(exact_mask, approx_mask),
        "f1": f1_score(exact_mask, approx_mask),
    }


def run_frontier(n_points: int) -> dict[str, dict[str, object]]:
    """One frontier: exact plus both presets on the same workload."""
    points = make_geolife_like(n_points, seed=0)

    start = time.perf_counter()
    exact = VectorizedEngine(kernel="numpy").detect(points, EPS, MIN_PTS)
    exact_wall = time.perf_counter() - start

    frontier: dict[str, dict[str, object]] = {
        "exact": {
            "wall": exact_wall,
            "speedup": 1.0,
            "outliers": exact.n_outliers,
            "precision": 1.0,
            "recall": 1.0,
            "f1": 1.0,
            "superset": True,
            "audit_agrees": True,
        }
    }
    for quality in ("balanced", "fast"):
        engine = ApproxEngine(quality=quality, seed=0, kernel="numpy")
        start = time.perf_counter()
        result = engine.detect(points, EPS, MIN_PTS)
        wall = time.perf_counter() - start
        direct = _scores_vs_exact(exact.outlier_mask, result.outlier_mask)
        audit_agrees = bool(
            np.array_equal(engine.last_audit_mask_, exact.outlier_mask)
            and np.isclose(
                result.stats["approx.precision"], direct["precision"]
            )
            and np.isclose(result.stats["approx.f1"], direct["f1"])
        )
        frontier[quality] = {
            "wall": wall,
            "speedup": exact_wall / max(wall, 1e-9),
            "outliers": result.n_outliers,
            **direct,
            "superset": bool(
                np.all(result.outlier_mask >= exact.outlier_mask)
            ),
            "audit_agrees": audit_agrees,
            "sampled_points": int(result.stats["approx.sampled_points"]),
            "distance_computations": int(
                result.stats["distance_computations"]
            ),
        }
    frontier["exact"]["distance_computations"] = int(
        exact.stats["distance_computations"]
    )
    return frontier


def check_gates(frontier: dict[str, dict[str, object]]) -> list[str]:
    """The hard CI gates; returns the list of violations (empty = pass)."""
    failures = []
    balanced_recall = float(frontier["balanced"]["recall"])
    if balanced_recall < RECALL_FLOOR:
        failures.append(
            f"balanced recall {balanced_recall:.4f} < floor {RECALL_FLOOR}"
        )
    for quality in ("balanced", "fast"):
        if not frontier[quality]["superset"]:
            failures.append(
                f"{quality}: flagged set is not a superset of the exact "
                "outliers (one-sided guarantee broken)"
            )
        if not frontier[quality]["audit_agrees"]:
            failures.append(
                f"{quality}: self-audit disagrees with the directly "
                "computed exact labels"
            )
    return failures


def main(n_points: int = N_POINTS, check: bool = False) -> int:
    frontier = run_frontier(n_points)
    rows = [
        [
            quality,
            round(float(row["wall"]), 3),
            f"{float(row['speedup']):.2f}x",
            row["outliers"],
            round(float(row["precision"]), 4),
            round(float(row["recall"]), 4),
            round(float(row["f1"]), 4),
            row["distance_computations"],
        ]
        for quality, row in frontier.items()
    ]
    print(
        format_table(
            [
                "quality",
                "wall (s)",
                "speedup",
                "outliers",
                "precision",
                "recall",
                "f1",
                "distances",
            ],
            rows,
            title=(
                "Quality-vs-latency frontier "
                f"(geolife-like, n={n_points}, eps={EPS}, "
                f"min_pts={MIN_PTS}, seed=0, numpy kernel)"
            ),
        )
    )
    print(
        "recall vs exact is 1.0 by construction (one-sided error); "
        "audit scores cross-checked against directly computed masks"
    )

    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_points": n_points,
            "eps": EPS,
            "min_pts": MIN_PTS,
            "kernel": "numpy",
            "recall_floor": RECALL_FLOOR,
            "frontier": {
                quality: {
                    "wall_seconds": round(float(row["wall"]), 3),
                    "speedup_over_exact": round(float(row["speedup"]), 2),
                    "outliers": int(row["outliers"]),
                    "precision": round(float(row["precision"]), 6),
                    "recall": round(float(row["recall"]), 6),
                    "f1": round(float(row["f1"]), 6),
                    "distance_computations": int(
                        row["distance_computations"]
                    ),
                }
                for quality, row in frontier.items()
            },
        }
    )

    failures = check_gates(frontier)
    BENCH_STATS["gate_failures"] = list(failures)
    if check:
        for failure in failures:
            print(f"GATE FAILURE: {failure}")
        verdict = "PASS" if not failures else "FAIL"
        print(f"quality frontier gate: {verdict}")
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    import argparse
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"shrink the workload to n={SMOKE_N_POINTS} for CI",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the recall-floor and guarantee gates pass",
    )
    args = parser.parse_args()
    sys.exit(
        main(
            n_points=SMOKE_N_POINTS if args.smoke else N_POINTS,
            check=args.check,
        )
    )
