"""Serving benchmark — artifact load vs refit, latency, and batching.

Measures the three claims the serving layer (`repro.serve`) makes:

1. **Load beats refit.**  Fitting DBSCOUT on a 200k-point
   Table-II-style workload once and persisting the artifact, then
   answering queries via load + classify, must be at least ~5x faster
   than refitting — the artifact holds only the core structure, and
   classification touches only the query neighborhoods.
2. **Single-query latency.**  p50/p99 of small queries through the
   micro-batching :class:`~repro.serve.OutlierService` (queue, worker
   thread, future hop included).
3. **Batching throughput.**  Classified points/second as a function of
   the client batch size — micro-batching amortizes the per-request
   overhead, so throughput should climb steeply with batch size.

Every served query emits ``serve.*`` metrics, and batches emit
``repro.obs`` run records with ``serve.batch`` spans; a sample of both
lands in ``BENCH_STATS`` for ``run_all.py --json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import DBSCOUT, obs
from repro.datasets import make_geolife_like
from repro.experiments import format_table
from repro.serve import DetectorArtifact, OutlierService, load_artifact

from _common import MIN_PTS

N_POINTS = 200_000
EPS = 100.0

N_SINGLE_QUERIES = 200
SINGLE_QUERY_ROWS = 8
BATCH_SIZES = (1, 16, 256, 4096, 65536)
THROUGHPUT_ROWS = 65536

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def dataset() -> np.ndarray:
    return make_geolife_like(N_POINTS, seed=0)


def _queries(rng: np.random.Generator, n_rows: int) -> np.ndarray:
    """Query mix: mostly near the data's hotspots, some far scatter."""
    base = make_geolife_like(max(n_rows, 2), seed=7)[:n_rows]
    jitter = rng.normal(0.0, 5.0, size=base.shape)
    far = rng.uniform(-1e5, 1e5, size=base.shape)
    take_far = rng.random(n_rows) < 0.1
    return np.where(take_far[:, None], far, base + jitter)


def _quantile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def main() -> None:
    rng = np.random.default_rng(42)
    points = dataset()

    # -- 1: fit once, save, then load+classify vs refit ----------------
    fit_start = time.perf_counter()
    detector = DBSCOUT(eps=EPS, min_pts=MIN_PTS)
    result = detector.fit(points)
    fit_wall = time.perf_counter() - fit_start

    artifact_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "results",
        "serving_detector.npz",
    )
    artifact = DetectorArtifact.from_model(detector.core_model_, name="geo")
    save_start = time.perf_counter()
    saved_path = artifact.save(artifact_path)
    save_wall = time.perf_counter() - save_start

    queries = _queries(rng, THROUGHPUT_ROWS)

    load_start = time.perf_counter()
    loaded = load_artifact(saved_path)
    load_wall = time.perf_counter() - load_start

    classify_start = time.perf_counter()
    served_labels = loaded.classify(queries)
    classify_wall = time.perf_counter() - classify_start

    refit_start = time.perf_counter()
    refit_detector = DBSCOUT(eps=EPS, min_pts=MIN_PTS)
    refit_detector.fit(points)
    refit_labels = refit_detector.classify(queries)
    refit_wall = time.perf_counter() - refit_start

    assert np.array_equal(served_labels, refit_labels)
    np.testing.assert_array_equal(
        loaded.classify(points), result.labels()
    )
    speedup = refit_wall / max(load_wall + classify_wall, 1e-9)

    print(
        format_table(
            ["path", "wall (s)"],
            [
                ["fit (one-time)", round(fit_wall, 3)],
                ["artifact save", round(save_wall, 4)],
                ["artifact load", round(load_wall, 4)],
                [f"classify {THROUGHPUT_ROWS} queries",
                 round(classify_wall, 4)],
                ["refit + classify (no artifact)", round(refit_wall, 3)],
            ],
            title=(
                "Serving S1: load+classify vs refit "
                f"(geolife-like, n={N_POINTS}, eps={EPS}, "
                f"min_pts={MIN_PTS})"
            ),
        )
    )
    print(
        f"load+classify speedup over refit: {speedup:.1f}x "
        f"(artifact: {loaded.model.n_core_points} core points, "
        f"{loaded.model.nbytes() / 1e6:.1f} MB)\n"
    )
    assert speedup >= 5.0, f"expected >= 5x, measured {speedup:.1f}x"

    # -- 2: single-query latency through the service -------------------
    with obs.recording() as sink:
        with OutlierService() as service:
            service.register("geo", loaded)
            latencies = []
            for i in range(N_SINGLE_QUERIES):
                chunk = _queries(rng, SINGLE_QUERY_ROWS)
                start = time.perf_counter()
                service.query("geo", chunk)
                latencies.append(time.perf_counter() - start)
            service_stats = service.stats()
    assert sink.records, "served batches must emit run records"
    sample_record = sink.records[-1]
    assert sample_record.engine == "serve"
    assert any(
        span["name"] == "serve.batch" for span in sample_record.spans
    )

    lat_ms = {
        "p50": _quantile(latencies, 0.50) * 1e3,
        "p90": _quantile(latencies, 0.90) * 1e3,
        "p99": _quantile(latencies, 0.99) * 1e3,
    }
    print(
        format_table(
            ["quantile", "latency (ms)"],
            [[name, round(value, 3)] for name, value in lat_ms.items()],
            title=(
                f"Serving S2: single-query latency "
                f"({N_SINGLE_QUERIES} x {SINGLE_QUERY_ROWS}-point "
                "queries, obs recording on)"
            ),
        )
    )
    print(
        f"service counters: requests={service_stats['serve.requests']}, "
        f"batches={service_stats['serve.batches']}, "
        f"rows={service_stats['serve.rows_classified']}\n"
    )

    # -- 3: throughput vs batch size ------------------------------------
    rows = []
    qps_by_batch: dict[str, float] = {}
    with OutlierService() as service:
        service.register("geo", loaded)
        for batch_size in BATCH_SIZES:
            n_batches = max(1, THROUGHPUT_ROWS // batch_size)
            n_batches = min(n_batches, 512)
            chunks = [
                _queries(rng, batch_size) for _ in range(n_batches)
            ]
            start = time.perf_counter()
            for chunk in chunks:
                service.query("geo", chunk)
            elapsed = time.perf_counter() - start
            total_rows = batch_size * n_batches
            qps = total_rows / max(elapsed, 1e-9)
            qps_by_batch[str(batch_size)] = qps
            rows.append(
                [
                    batch_size,
                    n_batches,
                    round(elapsed, 3),
                    int(qps),
                ]
            )
    print(
        format_table(
            ["batch size", "batches", "wall (s)", "points/s"],
            rows,
            title="Serving S3: classified points/second vs batch size",
        )
    )

    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_points": N_POINTS,
            "eps": EPS,
            "min_pts": MIN_PTS,
            "fit_wall_s": round(fit_wall, 3),
            "artifact_save_s": round(save_wall, 4),
            "artifact_load_s": round(load_wall, 4),
            "classify_wall_s": round(classify_wall, 4),
            "refit_wall_s": round(refit_wall, 3),
            "load_classify_speedup": round(speedup, 1),
            "artifact_core_points": int(loaded.model.n_core_points),
            "artifact_bytes": int(loaded.model.nbytes()),
            "single_query_latency_ms": {
                name: round(value, 3) for name, value in lat_ms.items()
            },
            "qps_by_batch_size": {
                name: int(value) for name, value in qps_by_batch.items()
            },
            "serve_counters": {
                key: value
                for key, value in service_stats.items()
                if isinstance(value, (int, float))
            },
            "sample_run_record": sample_record.to_dict(),
        }
    )


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    main()
