"""Streaming benchmark — live ingest, churn, snapshot/swap latency.

Exercises :mod:`repro.stream` on a Table-II-scale workload (200k-point
base + churn batches):

1. **Localized growth beats refit.**  New fixes arriving around an
   active area (the common case for tracking feeds) dirty only a few
   cells, so live ingest + exact labels must be much faster than
   refitting batch DBSCOUT over everything — the labels are asserted
   identical against sampled refits.
2. **Steady-state churn throughput.**  Once the count window is full,
   every batch also evicts the *oldest* fixes — which are scattered
   across the whole map, so the affected neighborhood is large.  The
   bench reports points/second and the honest ratio against refit
   (localized insert wins big; delocalized eviction does not).
3. **Snapshot + hot-swap latency.**  p50/p90/max of
   ``LiveDetector.snapshot()`` (exact CoreModel export) and
   ``OutlierService.swap`` (atomic install) — the pause-free path
   that keeps a served model fresh.

Results land in ``BENCH_STATS`` for ``run_all.py --json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro import DBSCOUT
from repro.datasets import make_geolife_like
from repro.experiments import format_table
from repro.serve import OutlierService
from repro.stream import CountWindow, LiveDetector

N_BASE = 200_000
EPS = 100.0
MIN_PTS = 10

N_GROWTH_BATCHES = 10
N_CHURN_BATCHES = 10
BATCH_ROWS = 2_000
REFIT_SAMPLES = 3
N_SNAPSHOTS = 8

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def _quantile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def _localized_batch(
    base: np.ndarray, rng: np.random.Generator, rows: int = BATCH_ROWS
) -> np.ndarray:
    """An update batch around one of the base map's hotspots."""
    anchor = base[rng.integers(0, base.shape[0])]
    return anchor + rng.normal(0.0, 5.0, size=(rows, base.shape[1]))


def _timed_phase(
    live: LiveDetector,
    base: np.ndarray,
    rng: np.random.Generator,
    n_batches: int,
) -> tuple[list[float], list[float], int]:
    """Ingest ``n_batches`` localized batches; sample refit checks."""
    ingest_walls: list[float] = []
    refit_walls: list[float] = []
    evicted = 0
    sample_every = max(1, n_batches // REFIT_SAMPLES)
    for step in range(n_batches):
        batch = _localized_batch(base, rng)
        start = time.perf_counter()
        outcome = live.ingest(batch)
        result_live = live.result()
        ingest_walls.append(time.perf_counter() - start)
        evicted += outcome.evicted
        if step % sample_every == 0:
            window = live.active_points()
            start = time.perf_counter()
            result_batch = DBSCOUT(eps=EPS, min_pts=MIN_PTS).fit(window)
            refit_walls.append(time.perf_counter() - start)
            assert np.array_equal(
                result_live.outlier_mask, result_batch.outlier_mask
            ), "live labels diverged from batch refit"
    return ingest_walls, refit_walls, evicted


def main() -> None:
    rng = np.random.default_rng(42)
    base = make_geolife_like(N_BASE, seed=0)

    # The window admits the growth phase, then churns: every batch
    # past the cap evicts the oldest (scattered) base fixes.
    cap = N_BASE + N_GROWTH_BATCHES * BATCH_ROWS
    live = LiveDetector(
        EPS, MIN_PTS, window=CountWindow(cap), name="geo"
    )
    load_start = time.perf_counter()
    live.ingest(base)
    live.result()
    load_wall = time.perf_counter() - load_start

    # -- 1: localized growth vs refit ----------------------------------
    grow_walls, grow_refits, _ = _timed_phase(
        live, base, rng, N_GROWTH_BATCHES
    )
    grow_mean = sum(grow_walls) / len(grow_walls)
    grow_refit_mean = sum(grow_refits) / len(grow_refits)
    grow_speedup = grow_refit_mean / max(grow_mean, 1e-9)

    # -- 2: steady-state churn -----------------------------------------
    churn_walls, churn_refits, evicted = _timed_phase(
        live, base, rng, N_CHURN_BATCHES
    )
    churn_mean = sum(churn_walls) / len(churn_walls)
    churn_refit_mean = sum(churn_refits) / len(churn_refits)
    churn_ratio = churn_refit_mean / max(churn_mean, 1e-9)
    churn_points = N_CHURN_BATCHES * BATCH_ROWS
    throughput = churn_points / max(sum(churn_walls), 1e-9)

    print(
        format_table(
            ["phase", "per batch (s)", "refit (s)", "ratio"],
            [
                [
                    "growth (insert only)",
                    round(grow_mean, 4),
                    round(grow_refit_mean, 4),
                    f"{grow_speedup:.1f}x",
                ],
                [
                    "churn (insert + evict oldest)",
                    round(churn_mean, 4),
                    round(churn_refit_mean, 4),
                    f"{churn_ratio:.1f}x",
                ],
            ],
            title=(
                f"Streaming S1: {BATCH_ROWS}-pt batches over a "
                f"{cap}-pt window (geolife-like, eps={EPS}, "
                f"min_pts={MIN_PTS}; labels asserted == refit)"
            ),
        )
    )
    print(
        f"churn throughput: {throughput:,.0f} points/s "
        f"({evicted} evicted across {N_CHURN_BATCHES} batches); "
        f"localized-growth speedup over refit: {grow_speedup:.1f}x\n"
    )
    assert grow_speedup >= 2.0, (
        f"expected >= 2x on localized growth, measured "
        f"{grow_speedup:.1f}x"
    )

    # -- 3: snapshot + hot-swap latency --------------------------------
    snapshot_walls: list[float] = []
    swap_walls: list[float] = []
    with OutlierService() as service:
        for _ in range(N_SNAPSHOTS):
            live.ingest(_localized_batch(base, rng, rows=200))
            start = time.perf_counter()
            snapshot = live.snapshot()
            snapshot_walls.append(time.perf_counter() - start)
            start = time.perf_counter()
            service.swap("geo", snapshot.model)
            swap_walls.append(time.perf_counter() - start)
        versions = service.swap_status("geo")["versions"]
        assert versions == {"geo": N_SNAPSHOTS}

    snap_ms = {
        "p50": _quantile(snapshot_walls, 0.50) * 1e3,
        "p90": _quantile(snapshot_walls, 0.90) * 1e3,
        "max": max(snapshot_walls) * 1e3,
    }
    swap_ms = {
        "p50": _quantile(swap_walls, 0.50) * 1e3,
        "p90": _quantile(swap_walls, 0.90) * 1e3,
        "max": max(swap_walls) * 1e3,
    }
    print(
        format_table(
            ["stage", "p50 (ms)", "p90 (ms)", "max (ms)"],
            [
                ["snapshot (exact CoreModel)"]
                + [round(snap_ms[k], 2) for k in ("p50", "p90", "max")],
                ["service.swap (atomic install)"]
                + [round(swap_ms[k], 2) for k in ("p50", "p90", "max")],
            ],
            title=(
                f"Streaming S2: snapshot + hot-swap latency "
                f"({N_SNAPSHOTS} swaps, {live.window_points}-pt window)"
            ),
        )
    )

    BENCH_STATS.clear()
    BENCH_STATS.update(
        {
            "n_base": N_BASE,
            "eps": EPS,
            "min_pts": MIN_PTS,
            "batch_rows": BATCH_ROWS,
            "initial_load_s": round(load_wall, 3),
            "growth_mean_ingest_s": round(grow_mean, 4),
            "growth_mean_refit_s": round(grow_refit_mean, 4),
            "growth_speedup": round(grow_speedup, 1),
            "churn_mean_ingest_s": round(churn_mean, 4),
            "churn_mean_refit_s": round(churn_refit_mean, 4),
            "churn_points_per_s": int(throughput),
            "points_evicted": int(evicted),
            "snapshot_latency_ms": {
                key: round(value, 2) for key, value in snap_ms.items()
            },
            "swap_latency_ms": {
                key: round(value, 2) for key, value in swap_ms.items()
            },
            "stream_counters": {
                key: value
                for key, value in live.telemetry().items()
                if isinstance(value, (int, float))
            },
        }
    )


if __name__ == "__main__":
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    main()
