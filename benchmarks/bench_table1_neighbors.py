"""Table I — neighbor-count upper bound vs actual k_d, d = 2..9.

Regenerates the exact table: ``kd_upper_bound`` is Lemma 3's
``(2*ceil(sqrt(d)) + 1)**d`` and ``count_neighbor_offsets`` is the
exact count; both must match the paper's numbers digit for digit.
The benchmark times the two computations (the counting DP and, for
low d, the enumeration actually used by the engines).
"""

from __future__ import annotations

from repro.core.neighbors import (
    count_neighbor_offsets,
    kd_upper_bound,
    neighbor_offsets,
)
from repro.experiments import format_table

PAPER_TABLE_I = {
    2: (25, 21),
    3: (125, 117),
    4: (625, 609),
    5: (16807, 3903),
    6: (117649, 28197),
    7: (823543, 197067),
    8: (5764801, 1278129),
    9: (40353607, 8077671),
}


def build_table() -> list[list[int]]:
    count_neighbor_offsets.cache_clear()  # time real work, not the cache
    rows = []
    for n_dims in sorted(PAPER_TABLE_I):
        upper = kd_upper_bound(n_dims)
        actual = count_neighbor_offsets(n_dims)
        paper_upper, paper_actual = PAPER_TABLE_I[n_dims]
        assert upper == paper_upper, (n_dims, upper, paper_upper)
        assert actual == paper_actual, (n_dims, actual, paper_actual)
        rows.append([n_dims, upper, actual])
    return rows


def test_table1_counting(benchmark):
    """Time the exact k_d computation across all of Table I."""
    rows = benchmark(build_table)
    assert len(rows) == len(PAPER_TABLE_I)


def test_table1_enumeration(benchmark):
    """Time the stencil enumeration the engines actually use (d<=4)."""
    from repro.core.neighbors import _offsets_cached

    def enumerate_low_dims():
        _offsets_cached.cache_clear()  # measure real work, not the cache
        return {d: neighbor_offsets(d).shape[0] for d in (2, 3, 4)}

    counts = benchmark(enumerate_low_dims)
    assert counts == {2: 21, 3: 117, 4: 609}


def main() -> None:
    rows = build_table()
    print(
        format_table(
            ["d", "Upper bound", "Actual k_d"],
            rows,
            title="Table I: neighboring-cell counts (matches paper exactly)",
        )
    )


if __name__ == "__main__":
    main()
