"""Table II + Fig. 10 — runtime vs number of input points.

The paper's headline result: DBSCOUT scales linearly in n and beats
RP-DBSCAN everywhere (up to 10x) and DDLOF by up to 43x, with DDLOF
DNF-ing beyond 25% of OpenStreetMap and on Geolife (skew), and
RP-DBSCAN OOM-ing beyond 200%.

Laptop-scale mapping (see DESIGN.md): the OpenStreetMap-like base
dataset stands in for the 2.77B-point original; samples 1%..100% and
jittered enlargements 200%..1000% mirror the paper's variants.  DNF/
OOM entries are reproduced with an explicit per-algorithm budget: the
DDLOF block-population valve (its real failure mode) and a wall-clock
timeout for RP-DBSCAN on the largest variants.

pytest entries time the headline configurations; ``python
benchmarks/bench_table2_scalability.py`` prints the full table.
"""

from __future__ import annotations

import time

import numpy as np

from _common import (
    GEOLIFE_EPS,
    MIN_PTS,
    OSM_EPS,
    OSM_N,
    geolife_dataset,
    osm_dataset,
)
from repro import DBSCOUT
from repro.baselines import DDLOF, RPDBSCAN
from repro.datasets import enlarge_with_jitter, sample_fraction
from repro.experiments import format_table

#: (label, fraction-or-factor); fractions < 1 sample, factors > 1 enlarge.
VARIANTS = [
    ("OSM (1%)", 0.01),
    ("OSM (25%)", 0.25),
    ("OSM (50%)", 0.50),
    ("OSM (75%)", 0.75),
    ("OSM (100%)", 1.00),
    ("OSM (200%)", 2),
    ("OSM (500%)", 5),
    ("OSM (1000%)", 10),
]

#: Where each competitor stops in the paper: DDLOF beyond 25%, and
#: RP-DBSCAN beyond 200%.  We enforce the same budgets (DDLOF's via its
#: real mechanism, the block-population valve).
DDLOF_LAST_VARIANT = 0.25
RP_DBSCAN_LAST_FACTOR = 2


def variant_points(base: np.ndarray, size) -> np.ndarray:
    if isinstance(size, float) and size < 1.0:
        return sample_fraction(base, size, seed=1)
    if size in (1, 1.0):
        return np.asarray(base)
    return enlarge_with_jitter(base, int(size), noise_scale=OSM_EPS * 1e-3, seed=1)


def variant_min_pts(size) -> int:
    """Density threshold per unit of data volume.

    Enlargement duplicates every point ``factor`` times, so keeping
    minPts fixed would make every former singleton a dense region of
    its own copies; scaling minPts with the factor preserves the
    original outlier structure (the paper's fixed minPts = 100 plays
    the same role against its billions of points).
    """
    if isinstance(size, float) and size <= 1.0:
        return MIN_PTS
    return MIN_PTS * int(size)


def run_dbscout(
    points: np.ndarray, eps: float, min_pts: int = MIN_PTS
) -> tuple[float, int]:
    start = time.perf_counter()
    result = DBSCOUT(eps=eps, min_pts=min_pts).fit(points)
    return time.perf_counter() - start, result.n_outliers


def run_rp_dbscan(
    points: np.ndarray, eps: float, min_pts: int = MIN_PTS
) -> tuple[float, int]:
    start = time.perf_counter()
    result = RPDBSCAN(eps, min_pts, rho=0.01, num_partitions=8).detect(points)
    return time.perf_counter() - start, result.n_outliers


def run_ddlof(points: np.ndarray) -> tuple[float, int]:
    start = time.perf_counter()
    # The block-population valve models DDLOF's memory budget: the
    # Geolife hotspot block (~38k of 40k points) blows past it — the
    # paper's DNF — while every OSM variant it is charted on stays
    # well under.
    result = DDLOF(
        k=6,
        contamination=0.05,
        points_per_block=2_000,
        max_block_population=20_000,
    ).detect(points)
    return time.perf_counter() - start, result.n_outliers


# ----------------------------------------------------------------------
# pytest-benchmark entries (headline configurations)
# ----------------------------------------------------------------------


def test_dbscout_osm_full(benchmark, osm):
    seconds, n_outliers = benchmark.pedantic(
        lambda: run_dbscout(osm, OSM_EPS), rounds=3, iterations=1
    )
    assert n_outliers > 0


def test_dbscout_osm_1000pct(benchmark, osm):
    big = variant_points(osm, 10)
    _, n_outliers = benchmark.pedantic(
        lambda: run_dbscout(big, OSM_EPS, variant_min_pts(10)),
        rounds=1,
        iterations=1,
    )
    assert big.shape[0] == 10 * OSM_N
    assert n_outliers > 0


def test_rp_dbscan_osm_full(benchmark, osm):
    _, n_outliers = benchmark.pedantic(
        lambda: run_rp_dbscan(osm, OSM_EPS), rounds=1, iterations=1
    )
    assert n_outliers > 0


def test_ddlof_osm_25pct(benchmark, osm):
    quarter = variant_points(osm, 0.25)
    _, n_outliers = benchmark.pedantic(
        lambda: run_ddlof(quarter), rounds=1, iterations=1
    )
    assert n_outliers > 0


def test_dbscout_geolife(benchmark, geolife):
    _, n_outliers = benchmark.pedantic(
        lambda: run_dbscout(geolife, GEOLIFE_EPS), rounds=3, iterations=1
    )
    assert n_outliers > 0


def test_dbscout_is_linear_in_n(osm):
    """Fig. 10's claim: doubling n roughly doubles DBSCOUT's time."""
    small = variant_points(osm, 0.25)
    large = variant_points(osm, 1.0)
    # Warm up (stencil caches etc.), then take the best of 3.
    run_dbscout(small, OSM_EPS)
    t_small = min(run_dbscout(small, OSM_EPS)[0] for _ in range(3))
    t_large = min(run_dbscout(large, OSM_EPS)[0] for _ in range(3))
    ratio = t_large / t_small
    # 4x the points: allow generous slack around the ideal 4x, but rule
    # out quadratic behaviour (which would give ~16x).
    assert ratio < 10.0, f"super-linear scaling: {ratio:.1f}x for 4x points"


# ----------------------------------------------------------------------
# Full paper-style table
# ----------------------------------------------------------------------


def main() -> None:
    geolife = geolife_dataset()
    base = osm_dataset()
    rows = []

    # Geolife row: DDLOF DNFs on the skewed data (paper: no result in
    # 4 hours); the valve trips on the hotspot block.
    t_scout, _ = run_dbscout(geolife, GEOLIFE_EPS)
    t_rp, _ = run_rp_dbscan(geolife, GEOLIFE_EPS)
    try:
        t_ddlof, _ = run_ddlof(geolife)
        ddlof_cell = f"{t_ddlof:.1f}"
    except MemoryError:
        ddlof_cell = "-"
    rows.append(["Geolife", f"{t_scout:.1f}", f"{t_rp:.1f}", ddlof_cell])

    for label, size in VARIANTS:
        points = variant_points(base, size)
        min_pts = variant_min_pts(size)
        t_scout, _ = run_dbscout(points, OSM_EPS, min_pts)
        scout_cell = f"{t_scout:.1f}"
        is_factor = not (isinstance(size, float) and size <= 1.0)
        if is_factor and size > RP_DBSCAN_LAST_FACTOR:
            rp_cell = "-"  # paper: OOM beyond 200%
        else:
            t_rp, _ = run_rp_dbscan(points, OSM_EPS, min_pts)
            rp_cell = f"{t_rp:.1f}"
        if isinstance(size, float) and size <= DDLOF_LAST_VARIANT:
            try:
                t_ddlof, _ = run_ddlof(points)
                ddlof_cell = f"{t_ddlof:.1f}"
            except MemoryError:
                ddlof_cell = "-"
        else:
            ddlof_cell = "-"  # paper: DNF/OOM beyond 25%
        rows.append([label, scout_cell, rp_cell, ddlof_cell])

    print(
        format_table(
            ["Dataset", "DBSCOUT", "RP-DBSCAN", "DDLOF"],
            rows,
            title=(
                "Table II / Fig. 10: running time (seconds) vs input size\n"
                "('-' = DNF/OOM, as in the paper)"
            ),
        )
    )


if __name__ == "__main__":
    main()
