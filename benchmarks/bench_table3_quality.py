"""Table III — outlier F1 of DBSCOUT vs LOF / IF / OC-SVM.

Nine labelled 2-D datasets (Blobs, Blobs-vd, Circles, Moons, four
CLUTO-style and one CURE-style shape dataset).  DBSCOUT's eps comes
from the k-distance elbow (no contamination knowledge); the three
competitors receive the *true* contamination ``nu``, as in the paper.

Expected shape: DBSCOUT better or on par with LOF on most datasets and
consistently better than IF and OC-SVM.
"""

from __future__ import annotations

from _common import MIN_PTS  # noqa: F401  (documented parameter home)
from repro import DBSCOUT, estimate_eps
from repro.baselines import IsolationForest, LocalOutlierFactor, OneClassSVM
from repro.datasets import (
    make_blobs,
    make_blobs_varying_density,
    make_circles,
    make_cluto_t4,
    make_cluto_t5,
    make_cluto_t7,
    make_cluto_t8,
    make_cure_t2,
    make_moons,
)
from repro.experiments import format_table
from repro.metrics import f1_score

#: dataset factory -> the minPts the paper uses for that dataset.
DATASETS = [
    (make_blobs, 5),
    (make_blobs_varying_density, 5),
    (make_circles, 5),
    (make_moons, 5),
    (make_cluto_t4, 10),
    (make_cluto_t5, 10),
    (make_cluto_t7, 10),
    (make_cluto_t8, 10),
    (make_cure_t2, 10),
]


#: LOF's K is grid-searched per dataset (the paper: "for LOF, IF and
#: OC-SVM the parameters were chosen by applying a grid search and
#: selecting the ones yielding the best results").
LOF_K_GRID = (10, 16, 27, 45, 65, 80, 106, 150, 203)


def best_lof(points, labels, nu) -> tuple[int, float]:
    """Grid-search LOF's K by outlier-class F1 (paper protocol)."""
    best_k, best_f1 = LOF_K_GRID[0], -1.0
    for k in LOF_K_GRID:
        if k >= points.shape[0]:
            continue
        detected = LocalOutlierFactor(k=k, contamination=nu).detect(points)
        score = f1_score(labels, detected.outlier_mask)
        if score > best_f1:
            best_k, best_f1 = k, score
    return best_k, best_f1


def evaluate_dataset(maker, min_pts: int) -> list[list]:
    dataset = maker()
    points, labels = dataset.points, dataset.outlier_labels
    nu = max(dataset.contamination, 0.005)
    eps = estimate_eps(points, min_pts)
    rows = []

    result = DBSCOUT(eps=eps, min_pts=min_pts).fit(points)
    rows.append(
        [
            dataset.name,
            "DBSCOUT",
            f"eps={eps:.3g}, minPts={min_pts}",
            f1_score(labels, result.outlier_mask),
        ]
    )
    lof_k, lof_f1 = best_lof(points, labels, nu)
    rows.append([dataset.name, "LOF", f"K={lof_k}, nu={nu:.2g}", lof_f1])
    forest = IsolationForest(contamination=nu, seed=0).detect(points)
    rows.append(
        [dataset.name, "IF", f"nu={nu:.2g}", f1_score(labels, forest.outlier_mask)]
    )
    svm = OneClassSVM(nu=nu, seed=0).detect(points)
    rows.append(
        [dataset.name, "OC-SVM", f"nu={nu:.2g}", f1_score(labels, svm.outlier_mask)]
    )
    return rows


def test_dbscout_quality_on_blobs(benchmark):
    dataset = make_blobs()
    eps = estimate_eps(dataset.points, 5)

    def run():
        result = DBSCOUT(eps=eps, min_pts=5).fit(dataset.points)
        return f1_score(dataset.outlier_labels, result.outlier_mask)

    f1 = benchmark(run)
    assert f1 > 0.80


def test_lof_quality_on_blobs(benchmark):
    dataset = make_blobs()

    def run():
        result = LocalOutlierFactor(
            k=20, contamination=dataset.contamination
        ).detect(dataset.points)
        return f1_score(dataset.outlier_labels, result.outlier_mask)

    f1 = benchmark(run)
    assert f1 > 0.60


def test_table3_shape_small_datasets():
    """DBSCOUT beats IF and OC-SVM on the four sklearn-style datasets."""
    for maker, min_pts in DATASETS[:4]:
        rows = evaluate_dataset(maker, min_pts)
        scores = {row[1]: row[3] for row in rows}
        assert scores["DBSCOUT"] >= scores["IF"], rows[0][0]
        assert scores["DBSCOUT"] >= scores["OC-SVM"], rows[0][0]
        assert scores["DBSCOUT"] > 0.6, rows[0][0]


def evaluate_ranking(maker, min_pts: int) -> list:
    """ROC-AUC of each detector's score ranking (extension column).

    DBSCOUT's ranking uses the nearest-core-distance score (censored
    values beyond the stencil become a large constant).
    """
    import numpy as np

    from repro import estimate_eps as _estimate
    from repro.core.scoring import nearest_core_distance
    from repro.metrics import roc_auc_score

    dataset = maker()
    points, labels = dataset.points, dataset.outlier_labels
    nu = max(dataset.contamination, 0.005)
    eps = _estimate(points, min_pts)
    scout_scores = nearest_core_distance(points, eps, min_pts)
    scout_scores = np.where(np.isinf(scout_scores), 1e18, scout_scores)
    lof_k, _ = best_lof(points, labels, nu)
    lof_scores = LocalOutlierFactor(k=lof_k, contamination=nu).detect(
        points
    ).scores
    iforest_scores = IsolationForest(contamination=nu, seed=0).detect(
        points
    ).scores
    svm_scores = OneClassSVM(nu=nu, seed=0).detect(points).scores
    return [
        dataset.name,
        roc_auc_score(labels, scout_scores),
        roc_auc_score(labels, lof_scores),
        roc_auc_score(labels, iforest_scores),
        roc_auc_score(labels, svm_scores),
    ]


def main() -> None:
    all_rows = []
    for maker, min_pts in DATASETS:
        all_rows.extend(evaluate_dataset(maker, min_pts))
    print(
        format_table(
            ["Dataset", "Algorithm", "Parameters", "F1-score"],
            all_rows,
            title="Table III: outlier-class F1 comparison",
        )
    )
    print()
    ranking_rows = [
        evaluate_ranking(maker, min_pts) for maker, min_pts in DATASETS
    ]
    print(
        format_table(
            ["Dataset", "DBSCOUT", "LOF", "IF", "OC-SVM"],
            ranking_rows,
            title=(
                "Extension: threshold-free ranking quality (ROC-AUC; "
                "DBSCOUT ranked by nearest-core distance)"
            ),
        )
    )


if __name__ == "__main__":
    main()
