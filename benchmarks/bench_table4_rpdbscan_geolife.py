"""Table IV — RP-DBSCAN detection accuracy on Geolife (TP/FP/FN).

DBSCOUT's exact outlier set is the reference; RP-DBSCAN (rho = 0.01) is
scored against it for each eps of the paper's sweep.  Expected shape:
RP-DBSCAN finds a *superset* — a consistent share of false positives
and a tiny (often zero) number of false negatives.
"""

from __future__ import annotations

from _common import GEOLIFE_EPS_SWEEP, MIN_PTS, geolife_dataset
from repro import DBSCOUT
from repro.baselines import RPDBSCAN
from repro.experiments import format_table
from repro.metrics import compare_outlier_sets


def compare_at(points, eps: float):
    exact = DBSCOUT(eps=eps, min_pts=MIN_PTS).fit(points)
    approx = RPDBSCAN(eps, MIN_PTS, rho=0.01, num_partitions=8).detect(points)
    return compare_outlier_sets(exact.outlier_mask, approx.outlier_mask)


def test_accuracy_comparison_central_eps(benchmark, geolife):
    comparison = benchmark.pedantic(
        lambda: compare_at(geolife, GEOLIFE_EPS_SWEEP[2]),
        rounds=1,
        iterations=1,
    )
    # The approximation may only miss a negligible sliver of the exact
    # outliers (paper: ~0.01%; we allow 2% at laptop scale).
    assert comparison.false_negative_rate < 0.02
    assert comparison.n_approx >= comparison.true_positives


def test_superset_shape_across_eps(geolife):
    for eps in GEOLIFE_EPS_SWEEP:
        comparison = compare_at(geolife, eps)
        assert comparison.true_positives > 0, eps
        # Tables IV/V shape: FPs dominate FNs by a wide margin.
        assert comparison.false_positives >= comparison.false_negatives, eps
        assert comparison.false_negative_rate < 0.02, eps


def main() -> None:
    points = geolife_dataset()
    rows = []
    for eps in GEOLIFE_EPS_SWEEP:
        comparison = compare_at(points, eps)
        rows.append([eps, *comparison.as_row()])
    print(
        format_table(
            ["eps", "DBSCOUT", "RP-DBSCAN", "TP", "FP", "FN"],
            rows,
            title="Table IV: RP-DBSCAN detection accuracy on Geolife-like data",
        )
    )


if __name__ == "__main__":
    main()
