"""Table V — RP-DBSCAN detection accuracy on OpenStreetMap (TP/FP/FN).

Same protocol as Table IV, on the OpenStreetMap-like dataset with the
paper's eps sweep {2.5e5, 5e5, 1e6, 2e6}.
"""

from __future__ import annotations

from _common import MIN_PTS, OSM_EPS_SWEEP, osm_dataset
from repro import DBSCOUT
from repro.baselines import RPDBSCAN
from repro.experiments import format_table
from repro.metrics import compare_outlier_sets


def compare_at(points, eps: float):
    exact = DBSCOUT(eps=eps, min_pts=MIN_PTS).fit(points)
    approx = RPDBSCAN(eps, MIN_PTS, rho=0.01, num_partitions=8).detect(points)
    return compare_outlier_sets(exact.outlier_mask, approx.outlier_mask)


def test_accuracy_comparison_central_eps(benchmark, osm):
    comparison = benchmark.pedantic(
        lambda: compare_at(osm, OSM_EPS_SWEEP[2]), rounds=1, iterations=1
    )
    assert comparison.false_negative_rate < 0.02
    assert comparison.true_positives > 0


def test_superset_shape_across_eps(osm):
    for eps in OSM_EPS_SWEEP:
        comparison = compare_at(osm, eps)
        assert comparison.true_positives > 0, eps
        assert comparison.false_positives >= comparison.false_negatives, eps
        assert comparison.false_negative_rate < 0.02, eps


def main() -> None:
    points = osm_dataset()
    rows = []
    for eps in OSM_EPS_SWEEP:
        comparison = compare_at(points, eps)
        rows.append([eps, *comparison.as_row()])
    print(
        format_table(
            ["eps", "DBSCOUT", "RP-DBSCAN", "TP", "FP", "FN"],
            rows,
            title="Table V: RP-DBSCAN detection accuracy on OSM-like data",
        )
    )


if __name__ == "__main__":
    main()
