"""Telemetry overhead — span tracing, harvest, and the off-is-free gate.

The PR-8 telemetry layer promises two things about cost:

1. **Off means off.**  With tracing disabled, net task frames carry no
   trace field and workers ship no telemetry back — the bytes on the
   wire are *identical* to a build without the feature, run after run.
   This is deterministic, so ``--check`` asserts it hard.
2. **On is cheap.**  With tracing enabled, remote spans and counter
   deltas ride back inside the existing result frame.  The bench
   reports the wall-clock and wire-byte overhead of turning telemetry
   on, but does not hard-fail on wall time: loopback runs are noisy
   and the deterministic byte accounting is the real contract.

Modes measured over the same DBSCOUT workload:

========  ===========================================================
off       local distributed engine, tracing disabled (baseline)
spans     local distributed engine under an active tracer
net-off   loopback TCP cluster, tracing disabled (byte baseline)
net-on    loopback TCP cluster, spans + per-task counter harvest
========  ===========================================================

Run ``python benchmarks/bench_telemetry_overhead.py --check`` to
verify the invariants and exit non-zero on violation (used by CI).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import obs
from repro.core.distributed import DistributedEngine
from repro.experiments import format_table
from repro.net import HAVE_CLOUDPICKLE

N_POINTS = 6_000
EPS = 0.4
MIN_PTS = 8
NUM_PARTITIONS = 4
N_WORKERS = 2
REPEATS = 3

#: Machine-readable results for run_all.py --json, filled by main().
BENCH_STATS: dict[str, object] = {}


def dataset() -> np.ndarray:
    rng = np.random.default_rng(8)
    inliers = rng.normal(0.0, 0.4, size=(N_POINTS - N_POINTS // 20, 2))
    outliers = rng.uniform(-8.0, 8.0, size=(N_POINTS // 20, 2))
    return np.vstack([inliers, outliers])


def _detect(engine: DistributedEngine, points: np.ndarray) -> None:
    engine.detect(points, EPS, MIN_PTS)


def _record_spans(sink: obs.InMemorySink) -> int:
    """Spans captured across every run record in ``sink``."""
    return sum(len(record.spans) for record in sink.records)


def time_local(points: np.ndarray, traced: bool) -> tuple[float, int]:
    """Best-of-REPEATS wall for a local run; span count when traced."""
    walls, n_spans = [], 0
    for _ in range(REPEATS):
        engine = DistributedEngine(num_partitions=NUM_PARTITIONS)
        if traced:
            sink = obs.InMemorySink()
            start = time.perf_counter()
            with obs.recording(sink):
                _detect(engine, points)
            walls.append(time.perf_counter() - start)
            n_spans = _record_spans(sink)
        else:
            start = time.perf_counter()
            _detect(engine, points)
            walls.append(time.perf_counter() - start)
    return min(walls), n_spans


def run_net(points: np.ndarray, traced: bool) -> dict[str, object]:
    """One loopback-cluster run; wall, wire bytes, span count."""
    from repro.sparklite.netexec import LoopbackCluster

    with LoopbackCluster(n_workers=N_WORKERS) as cluster:
        engine = DistributedEngine(
            num_partitions=NUM_PARTITIONS, context=cluster.context
        )
        if traced:
            sink = obs.InMemorySink()
            start = time.perf_counter()
            with obs.recording(sink):
                _detect(engine, points)
            wall = time.perf_counter() - start
            n_spans = _record_spans(sink)
        else:
            start = time.perf_counter()
            _detect(engine, points)
            wall = time.perf_counter() - start
            n_spans = 0
        snapshot = cluster.context.metrics.snapshot()
    return {
        "wall_s": wall,
        "bytes_out": snapshot["net.bytes_out"],
        "bytes_in": snapshot["net.bytes_in"],
        "n_spans": n_spans,
    }


def main() -> int:
    check = "--check" in sys.argv[1:]
    points = dataset()
    BENCH_STATS.clear()

    obs.disable_tracing()
    wall_off, _ = time_local(points, traced=False)
    obs.enable_tracing()
    try:
        wall_spans, local_spans = time_local(points, traced=True)
    finally:
        obs.disable_tracing()

    rows = [
        ["off (local)", f"{wall_off * 1e3:.1f}", "-", "-", "0"],
        [
            "spans (local)",
            f"{wall_spans * 1e3:.1f}",
            f"{(wall_spans / wall_off - 1) * 100:+.1f}%",
            "-",
            str(local_spans),
        ],
    ]
    BENCH_STATS.update(
        {
            "local_wall_off_s": round(wall_off, 4),
            "local_wall_spans_s": round(wall_spans, 4),
            "local_n_spans": local_spans,
        }
    )

    violations: list[str] = []
    if HAVE_CLOUDPICKLE:
        off_a = run_net(points, traced=False)
        off_b = run_net(points, traced=False)
        obs.enable_tracing()
        try:
            on = run_net(points, traced=True)
        finally:
            obs.disable_tracing()

        # Deterministic contract: tracing off adds zero frame bytes,
        # so two identical off runs move identical bytes...
        for direction in ("bytes_out", "bytes_in"):
            if off_a[direction] != off_b[direction]:
                violations.append(
                    f"off-run {direction} not reproducible: "
                    f"{off_a[direction]} != {off_b[direction]}"
                )
            # ...and the traced run's extra bytes are real telemetry.
            if on[direction] <= off_a[direction]:
                violations.append(
                    f"traced run should move more {direction}: "
                    f"{on[direction]} <= {off_a[direction]}"
                )

        extra_bytes = (
            on["bytes_out"]
            + on["bytes_in"]
            - off_a["bytes_out"]
            - off_a["bytes_in"]
        )
        rows.append(
            [
                "net-off (loopback)",
                f"{off_a['wall_s'] * 1e3:.1f}",
                "-",
                str(off_a["bytes_out"] + off_a["bytes_in"]),
                "0",
            ]
        )
        rows.append(
            [
                "net-on (loopback)",
                f"{on['wall_s'] * 1e3:.1f}",
                f"{(on['wall_s'] / off_a['wall_s'] - 1) * 100:+.1f}%",
                str(on["bytes_out"] + on["bytes_in"]),
                str(on["n_spans"]),
            ]
        )
        BENCH_STATS.update(
            {
                "net_wall_off_s": round(off_a["wall_s"], 4),
                "net_wall_on_s": round(on["wall_s"], 4),
                "net_bytes_off": off_a["bytes_out"] + off_a["bytes_in"],
                "net_bytes_on": on["bytes_out"] + on["bytes_in"],
                "net_telemetry_bytes": extra_bytes,
                "net_off_reproducible": not violations,
                "net_n_spans": on["n_spans"],
            }
        )
    else:
        rows.append(["net (skipped)", "-", "-", "-", "-"])
        BENCH_STATS["net_skipped"] = "cloudpickle unavailable"

    print("Telemetry overhead (DBSCOUT distributed, "
          f"n={N_POINTS}, {NUM_PARTITIONS} partitions)")
    print(
        format_table(
            ["mode", "wall ms", "overhead", "wire bytes", "spans"], rows
        )
    )

    if check:
        if violations:
            for violation in violations:
                print(f"CHECK FAILED: {violation}")
            return 1
        if HAVE_CLOUDPICKLE:
            print("CHECK OK: telemetry-off byte parity holds; "
                  "traced runs carry real telemetry bytes")
        else:
            print("CHECK SKIPPED: cloudpickle unavailable, "
                  "no net executor to measure")
    return 0


if __name__ == "__main__":
    sys.exit(main())
