"""Compare two observability captures and fail on performance regressions.

Usage:
    python benchmarks/check_regression.py BASELINE CANDIDATE \
        [--max-wall-regression 0.25] [--max-counter-regression 0.10] \
        [--counters engine.distance_computations,...] [--show-all]

    # Or gate a fresh capture against the committed baselines:
    python benchmarks/check_regression.py CANDIDATE \
        [--baseline-dir benchmarks/baselines/c]

With a single positional path it is the *candidate* and the baseline
comes from ``--baseline-dir`` (default ``benchmarks/baselines/c``,
the committed compiled-kernel capture) — the one-argument CI form.

``BASELINE`` and ``CANDIDATE`` each name one of:

* a JSONL run-record file (written by ``python -m repro detect
  --record PATH`` or an ``obs.JsonlSink``);
* a single ``BENCH_<bench>.json`` file produced by
  ``benchmarks/run_all.py --json``;
* a results directory holding ``BENCH_*.json`` files.

Run records are paired by run signature (engine, parameters, dataset
shape, and engine configuration) in emission order, then diffed with
:func:`repro.obs.diff_records`.  Any phase or total wall time growing
by more than ``--max-wall-regression`` (fraction) or any counter
growing by more than ``--max-counter-regression`` flags a regression;
the exit code is the number of flagged entries (0 = pass), which makes
the script directly usable as a CI gate.

Counters are deterministic (distance computations, shuffle volumes,
pruning totals), so the counter threshold can be tight; wall-clock
thresholds should leave headroom for machine noise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import RunRecord, diff_records, format_diff  # noqa: E402


def _records_from_bench_payload(payload: dict) -> list[RunRecord]:
    return [
        RunRecord.from_dict(item)
        for item in payload.get("run_records", [])
    ]


def load_records(path: str | pathlib.Path) -> list[RunRecord]:
    """Load run records from a JSONL file, BENCH json, or results dir."""
    path = pathlib.Path(path)
    if path.is_dir():
        records: list[RunRecord] = []
        for bench_file in sorted(path.glob("BENCH_*.json")):
            with open(bench_file, "r", encoding="utf-8") as handle:
                records.extend(
                    _records_from_bench_payload(json.load(handle))
                )
        return records
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.read(1)
        handle.seek(0)
        if head == "{":
            text = handle.read()
            try:
                payload = json.loads(text)
            except json.JSONDecodeError:
                payload = None
            if isinstance(payload, dict) and "run_records" in payload:
                return _records_from_bench_payload(payload)
            # Fall through: JSONL where each line is a record dict.
            return [
                RunRecord.from_dict(json.loads(line))
                for line in text.splitlines()
                if line.strip()
            ]
    raise SystemExit(f"error: unrecognized record file {path}")


def run_signature(record: RunRecord) -> str:
    """Stable pairing key: what the run computed, not how fast."""
    config_keys = (
        "engine",
        "algorithm",
        "n_jobs",
        "join_strategy",
        "num_partitions",
        "pruning",
        "kernel",
        "cell_planner",
        "pair_budget",
        "quality",
        "sample_fraction",
        "sample_method",
        "seed",
    )
    config = {
        key: record.context[key]
        for key in config_keys
        if key in record.context
    }
    return json.dumps(
        [record.engine, record.params, record.dataset, config],
        sort_keys=True,
        default=str,
    )


def pair_records(
    baseline: list[RunRecord], candidate: list[RunRecord]
) -> tuple[list[tuple[RunRecord, RunRecord]], int]:
    """Pair records with equal signatures in emission order.

    Returns the pairs plus the number of unmatched records (present on
    only one side — a changed bench matrix, not a regression).
    """
    from collections import defaultdict

    base_groups: dict[str, list[RunRecord]] = defaultdict(list)
    for record in baseline:
        base_groups[run_signature(record)].append(record)
    pairs: list[tuple[RunRecord, RunRecord]] = []
    unmatched = 0
    for record in candidate:
        group = base_groups.get(run_signature(record))
        if group:
            pairs.append((group.pop(0), record))
        else:
            unmatched += 1
    unmatched += sum(len(group) for group in base_groups.values())
    return pairs, unmatched


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help=(
            "BASELINE CANDIDATE, or just CANDIDATE "
            "(baseline then comes from --baseline-dir)"
        ),
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(REPO_ROOT / "benchmarks" / "baselines" / "c"),
        help=(
            "baseline capture used in the one-argument form "
            "(default: benchmarks/baselines/c)"
        ),
    )
    parser.add_argument(
        "--max-wall-regression",
        type=float,
        default=0.25,
        help="allowed fractional wall-time growth per phase (default 0.25)",
    )
    parser.add_argument(
        "--max-counter-regression",
        type=float,
        default=0.10,
        help="allowed fractional counter growth (default 0.10)",
    )
    parser.add_argument(
        "--min-wall-seconds",
        type=float,
        default=0.05,
        help=(
            "ignore wall regressions where both sides are below this "
            "many seconds — micro-phase scheduler jitter, not a "
            "slowdown (default 0.05; counters are never filtered)"
        ),
    )
    parser.add_argument(
        "--counters",
        help="comma list restricting which counters are compared",
    )
    parser.add_argument(
        "--show-all",
        action="store_true",
        help="print the full diff table for every pair, not just failures",
    )
    args = parser.parse_args(argv)
    if len(args.paths) == 1:
        baseline_path, candidate_path = args.baseline_dir, args.paths[0]
    elif len(args.paths) == 2:
        baseline_path, candidate_path = args.paths
    else:
        parser.error(
            f"expected 1 or 2 positional paths, got {len(args.paths)}"
        )

    baseline = load_records(baseline_path)
    candidate = load_records(candidate_path)
    if not baseline or not candidate:
        print(
            f"error: no run records found "
            f"(baseline={len(baseline)}, candidate={len(candidate)})",
            file=sys.stderr,
        )
        return 2
    pairs, unmatched = pair_records(baseline, candidate)
    if unmatched:
        print(
            f"note: {unmatched} record(s) without a counterpart "
            f"were skipped",
            file=sys.stderr,
        )
    if not pairs:
        print("error: no comparable record pairs", file=sys.stderr)
        return 2

    counters = (
        [name.strip() for name in args.counters.split(",") if name.strip()]
        if args.counters
        else None
    )
    n_flagged = 0
    for base_record, cand_record in pairs:
        diff = diff_records(base_record, cand_record, counters=counters)
        flagged = [
            entry
            for entry in diff.regressions(
                max_wall_fraction=args.max_wall_regression,
                max_counter_fraction=args.max_counter_regression,
            )
            if entry.kind == "counter"
            or max(entry.baseline, entry.candidate)
            >= args.min_wall_seconds
        ]
        label = (
            f"{base_record.engine} "
            f"n={base_record.dataset.get('n_points', '?')} "
            f"({base_record.run_id} -> {cand_record.run_id})"
        )
        if flagged:
            n_flagged += len(flagged)
            print(f"REGRESSION {label}")
            for entry in flagged:
                growth = entry.regression_fraction()
                growth_text = (
                    "new" if growth == float("inf") else f"+{growth:.1%}"
                )
                print(
                    f"  {entry.kind} {entry.name}: "
                    f"{entry.baseline:g} -> {entry.candidate:g} "
                    f"({growth_text})"
                )
            if args.show_all:
                print(format_diff(diff))
        elif args.show_all:
            print(f"ok {label}")
            print(format_diff(diff))
    verdict = "PASS" if n_flagged == 0 else "FAIL"
    print(
        f"check_regression: {verdict} — {len(pairs)} pair(s) compared, "
        f"{n_flagged} regression(s) flagged, {unmatched} unmatched "
        f"record(s) skipped"
    )
    return min(n_flagged, 125)


if __name__ == "__main__":
    sys.exit(main())
