"""Pytest fixtures for the benchmark suite (data cached per session)."""

from __future__ import annotations

import numpy as np
import pytest

from _common import geolife_dataset, osm_dataset


@pytest.fixture(scope="session")
def geolife() -> np.ndarray:
    """Session-cached Geolife-like dataset."""
    return geolife_dataset()


@pytest.fixture(scope="session")
def osm() -> np.ndarray:
    """Session-cached OpenStreetMap-like dataset."""
    return osm_dataset()
