"""Run every benchmark's paper-style report and archive the outputs.

Usage:
    python benchmarks/run_all.py [--results-dir results] [--quick] [--json]

Executes each ``bench_*.py`` module's ``main()`` in order, echoes the
tables to stdout, and writes each module's captured output to
``<results-dir>/<bench>.txt`` plus a combined ``report.txt``.  With
``--quick``, only the fast benches run (skips the large scalability
sweeps).  With ``--json``, additionally writes one machine-readable
``<results-dir>/BENCH_<bench>.json`` per bench containing the wall time
plus whatever the module published in its ``BENCH_STATS`` dict
(distance-computation counters, per-``n_jobs`` timings, ...) and, under
``run_records``, the structured :mod:`repro.obs` run record of every
detector fit the bench performed — the input
``benchmarks/check_regression.py`` compares between two runs.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import json
import pathlib
import sys
import time

FAST_BENCHES = [
    "bench_table1_neighbors",
    "bench_ablation_join_strategies",
    "bench_ablation_engines",
    "bench_ablation_incremental",
    "bench_ablation_clustering_cost",
    "bench_ablation_dimensionality",
    "bench_ablation_pruning",
    "bench_ablation_kernels",
    "bench_quality_frontier",
    "bench_extension_geospatial_quality",
    "bench_serving_throughput",
    "bench_qa_fuzz",
]

SLOW_BENCHES = [
    "bench_streaming_ingest",
    "bench_telemetry_overhead",
    "bench_table2_scalability",
    "bench_fig11_geolife_eps",
    "bench_fig12_osm_eps",
    "bench_fig13_partitions",
    "bench_table3_quality",
    "bench_table4_rpdbscan_geolife",
    "bench_table5_rpdbscan_osm",
]


def run_bench(
    module_name: str, collect_records: bool = False
) -> tuple[str, float, dict, list[dict]]:
    """Import and run one bench module's main().

    Returns ``(output, secs, stats, records)`` where ``stats`` is the
    module's ``BENCH_STATS`` dict (empty for modules that do not
    publish one) and ``records`` holds the dict form of every
    :class:`repro.obs.RunRecord` emitted during the bench (empty unless
    ``collect_records``).
    """
    from repro import obs

    module = importlib.import_module(module_name)
    buffer = io.StringIO()
    sink = obs.InMemorySink() if collect_records else None
    if sink is not None:
        obs.add_sink(sink)
    try:
        start = time.perf_counter()
        with contextlib.redirect_stdout(buffer):
            module.main()
        elapsed = time.perf_counter() - start
    finally:
        if sink is not None:
            obs.remove_sink(sink)
    stats = dict(getattr(module, "BENCH_STATS", {}))
    records = (
        [record.to_dict() for record in sink.records] if sink else []
    )
    return buffer.getvalue(), elapsed, stats, records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", default="results")
    parser.add_argument(
        "--quick", action="store_true", help="fast benches only"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write BENCH_<bench>.json machine-readable results",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    benches = FAST_BENCHES + ([] if args.quick else SLOW_BENCHES)
    results_dir = pathlib.Path(args.results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)

    combined: list[str] = []
    for name in benches:
        print(f"===== {name} =====", flush=True)
        output, elapsed, stats, records = run_bench(
            name, collect_records=args.json
        )
        print(output)
        print(f"({elapsed:.1f}s)\n", flush=True)
        (results_dir / f"{name}.txt").write_text(output)
        combined.append(f"===== {name} =====\n{output}\n")
        if args.json:
            payload = {
                "bench": name,
                "wall_seconds": round(elapsed, 3),
                "stats": stats,
                "run_records": records,
            }
            (results_dir / f"BENCH_{name}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
    (results_dir / "report.txt").write_text("".join(combined))
    print(f"wrote {len(benches)} reports to {results_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
