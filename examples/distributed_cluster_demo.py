"""Running DBSCOUT as a distributed job on the SparkLite engine.

This walks through what the paper's cluster deployment looks like:
the dataset becomes an RDD, the cell maps are broadcast, core points
and outliers are found with shuffle joins — and the engine's metrics
expose the communication volume of each join strategy of Section
III-G, plus the partition-count behaviour of Fig. 13.

Run with:  python examples/distributed_cluster_demo.py
"""

import time

import numpy as np

from repro.core.distributed import JOIN_STRATEGIES, DistributedEngine
from repro.experiments import format_table
from repro.sparklite import Context


def make_workload(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.vstack(
        [
            rng.normal(0.0, 1.0, size=(4_000, 2)),
            rng.normal((12.0, 5.0), 1.5, size=(3_000, 2)),
            rng.uniform(-25.0, 35.0, size=(600, 2)),
        ]
    )


def main() -> None:
    points = make_workload()
    eps, min_pts = 1.0, 10

    print("= Join strategies (Section III-G) =")
    rows = []
    for strategy in JOIN_STRATEGIES:
        context = Context(default_parallelism=8)
        engine = DistributedEngine(
            num_partitions=8, join_strategy=strategy, context=context
        )
        start = time.perf_counter()
        result = engine.detect(points, eps, min_pts)
        elapsed = time.perf_counter() - start
        metrics = context.metrics.snapshot()
        rows.append(
            [
                strategy,
                round(elapsed, 3),
                result.n_outliers,
                metrics["shuffles"],
                metrics["records_shuffled"],
                metrics["broadcasts"],
            ]
        )
    print(
        format_table(
            ["strategy", "seconds", "outliers", "shuffles", "records", "bcasts"],
            rows,
        )
    )
    print()

    print("= Scaling the number of partitions (Fig. 13) =")
    rows = []
    for num_partitions in (1, 2, 4, 8, 16, 32):
        engine = DistributedEngine(num_partitions=num_partitions)
        start = time.perf_counter()
        result = engine.detect(points, eps, min_pts)
        rows.append(
            [num_partitions, round(time.perf_counter() - start, 3), result.n_outliers]
        )
    print(format_table(["partitions", "seconds", "outliers"], rows))
    print()
    print(
        "All configurations return the identical exact outlier set; "
        "only time and shuffle volume change."
    )


if __name__ == "__main__":
    main()
