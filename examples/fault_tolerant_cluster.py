"""Fault-tolerant, memory-bounded cluster run of distributed DBSCOUT.

Two production concerns the paper's Spark deployment handles
implicitly, demonstrated on SparkLite:

1. **Task failures** — every first task attempt is made to fail; the
   engine retries from lineage and the result stays exact.
2. **Executor memory** — the same job runs under per-executor memory
   budgets modeled after the paper's two cluster layouts (Section
   IV-A3, scaled 1:1000).  The broadcast join strategy, which the
   paper warns "may generate out-of-memory errors" (Section III-G1),
   OOMs under a budget where the grouped join sails through.

Run with:  python examples/fault_tolerant_cluster.py
"""

import numpy as np

from repro.core.distributed import DistributedEngine
from repro.core.vectorized import detect as batch_detect
from repro.datasets import make_openstreetmap_like
from repro.exceptions import ExecutorMemoryError
from repro.experiments import format_table
from repro.sparklite import ClusterConfig, Context, FailFirstAttempts


def main() -> None:
    points = make_openstreetmap_like(5_000, seed=3)
    eps, min_pts = 1.0e6, 10
    expected = batch_detect(points, eps, min_pts)

    print("= Task failures: every task fails once, result stays exact =")
    injector = FailFirstAttempts(1)
    context = Context(
        default_parallelism=8, failure_injector=injector, max_task_retries=3
    )
    engine = DistributedEngine(num_partitions=8, context=context)
    result = engine.detect(points, eps, min_pts)
    assert np.array_equal(result.outlier_mask, expected.outlier_mask)
    print(
        f"injected failures: {injector.injected}, "
        f"task retries: {context.metrics.task_retries}, "
        f"outliers: {result.n_outliers} (exact)"
    )
    print()

    print("= Executor memory budgets vs join strategy (Sec. III-G1) =")
    rows = []
    for budget_mb in (96, 32, 8):
        cluster = ClusterConfig(
            n_executors=8,
            cores_per_executor=1,
            memory_per_executor=budget_mb * 1024 * 1024,
            name=f"{budget_mb}MB-executors",
        )
        row = [f"{budget_mb} MB"]
        for strategy in ("group", "broadcast"):
            context = Context(default_parallelism=8, cluster=cluster)
            engine = DistributedEngine(
                num_partitions=8, join_strategy=strategy, context=context
            )
            try:
                engine.detect(points, eps, min_pts)
                peak = context.memory_model.peak_executor_bytes
                row.append(f"ok ({peak / 1e6:.1f} MB peak)")
            except ExecutorMemoryError:
                row.append("OOM")
        rows.append(row)
    print(
        format_table(
            ["budget/executor", "group join", "broadcast join"],
            rows,
        )
    )
    print()
    print(
        "The grouped join needs less executor memory than the broadcast "
        "join; tight budgets kill the broadcast strategy first, exactly "
        "as Section III-G1 warns."
    )


if __name__ == "__main__":
    main()
