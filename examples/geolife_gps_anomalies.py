"""GPS anomaly detection on skewed trajectory data (Geolife-style).

The paper's motivating workload: a huge, heavily skewed collection of
GPS fixes where most points concentrate around one city and the
interesting records are isolated fixes far from any travelled area
(sensor glitches, spoofed positions, rare excursions).

This example runs DBSCOUT on the Geolife-like simulator, compares the
exact result against the approximated RP-DBSCAN baseline, and prints
the Table IV-style TP/FP/FN breakdown.

Run with:  python examples/geolife_gps_anomalies.py
"""

from repro import DBSCOUT
from repro.baselines import RPDBSCAN
from repro.datasets import make_geolife_like
from repro.experiments import format_table
from repro.metrics import compare_outlier_sets


def main() -> None:
    points = make_geolife_like(30_000, seed=7)
    min_pts = 10

    rows = []
    for eps in (25.0, 50.0, 100.0, 200.0):
        exact = DBSCOUT(eps=eps, min_pts=min_pts).fit(points)
        approx = RPDBSCAN(
            eps, min_pts, rho=0.01, num_partitions=8, seed=7
        ).detect(points)
        comparison = compare_outlier_sets(
            exact.outlier_mask, approx.outlier_mask
        )
        rows.append(
            [
                eps,
                comparison.n_exact,
                comparison.n_approx,
                comparison.true_positives,
                comparison.false_positives,
                comparison.false_negatives,
            ]
        )

    print(
        format_table(
            ["eps", "DBSCOUT", "RP-DBSCAN", "TP", "FP", "FN"],
            rows,
            title="GPS anomalies: exact (DBSCOUT) vs approximated (RP-DBSCAN)",
        )
    )
    print()
    print(
        "DBSCOUT is exact per Definition 3; RP-DBSCAN's approximation "
        "flags a superset (the FP column) and occasionally absorbs a "
        "true outlier into a cluster (the FN column)."
    )


if __name__ == "__main__":
    main()
