"""Choosing eps with the k-distance elbow (Section IV-C1 methodology).

The paper selects DBSCOUT's eps the way DBSCAN users do: fix minPts,
plot the distance to each point's minPts-th neighbor in descending
order, and take eps at the top of the elbow.  This example renders the
curve as ASCII art, marks the automatically selected elbow, and shows
how detection quality varies across the curve.

Run with:  python examples/parameter_selection.py
"""

import numpy as np

from repro import DBSCOUT, estimate_eps, k_distance_graph
from repro.datasets import make_moons
from repro.experiments import ascii_curve, format_table
from repro.metrics import f1_score


def main() -> None:
    dataset = make_moons(n_inliers=1500, n_outliers=15, seed=11)
    min_pts = 5

    curve = k_distance_graph(dataset.points, min_pts)
    eps = estimate_eps(dataset.points, min_pts)
    print(f"k-distance curve (k = minPts = {min_pts}); elbow pick eps = {eps:.4f}")
    # The interesting structure is at the outlier end: log-scale the
    # distances so the elbow is visible.
    print(ascii_curve(np.log10(curve + 1e-12), mark_value=np.log10(eps)))
    print("(y axis: log10 of the k-distance)")
    print()

    # Sweep eps around the elbow to show the quality landscape.
    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        candidate = eps * factor
        result = DBSCOUT(eps=candidate, min_pts=min_pts).fit(dataset.points)
        rows.append(
            [
                f"{factor:.2f} x elbow",
                round(candidate, 4),
                result.n_outliers,
                f1_score(dataset.outlier_labels, result.outlier_mask),
            ]
        )
    print(
        format_table(
            ["setting", "eps", "outliers", "F1"],
            rows,
            title="Detection quality around the elbow (true outliers: 15)",
        )
    )


if __name__ == "__main__":
    main()
