"""Mapping the (eps, minPts) landscape before committing to parameters.

The k-distance elbow gives one candidate eps; this example maps the
whole neighborhood of that candidate: a sweep over the (eps, minPts)
grid, the resulting outlier-count surface, and the *stability report*
that surfaces plateau cells — settings whose verdicts barely move when
the parameters are nudged, which is what a practitioner should deploy.

Run with:  python examples/parameter_sweep_analysis.py
"""

import numpy as np

from repro import estimate_eps
from repro.datasets import make_cluto_t8
from repro.experiments import format_table
from repro.experiments.sweeps import stability_report, sweep_grid
from repro.metrics import f1_score


def main() -> None:
    dataset = make_cluto_t8(n_points=3000, seed=8)
    elbow = estimate_eps(dataset.points, 10)
    print(
        f"dataset: {dataset.name} (n={dataset.n_points}, "
        f"true outliers={dataset.n_outliers}); elbow eps = {elbow:.3g}"
    )
    print()

    eps_values = [round(elbow * f, 3) for f in (0.5, 0.75, 1.0, 1.5, 2.0)]
    min_pts_values = [5, 10, 20]
    sweep = sweep_grid(dataset.points, eps_values, min_pts_values)

    eps_axis, min_pts_axis, matrix = sweep.outlier_matrix()
    rows = [
        [min_pts] + matrix[row].tolist()
        for row, min_pts in enumerate(min_pts_axis)
    ]
    print(
        format_table(
            ["minPts \\ eps"] + [str(e) for e in eps_axis],
            rows,
            title="Outlier counts over the parameter grid",
        )
    )
    print()

    stable = stability_report(sweep, tolerance=0.25)
    if not stable:
        print("no stable plateau at this tolerance")
        return
    rows = []
    for cell in stable[:5]:
        from repro import DBSCOUT

        result = DBSCOUT(eps=cell.eps, min_pts=cell.min_pts).fit(
            dataset.points
        )
        rows.append(
            [
                cell.eps,
                cell.min_pts,
                cell.n_outliers,
                f1_score(dataset.outlier_labels, result.outlier_mask),
            ]
        )
    print(
        format_table(
            ["eps", "minPts", "outliers", "F1 vs ground truth"],
            rows,
            title="Most stable plateau cells (best deployment candidates)",
        )
    )


if __name__ == "__main__":
    main()
