"""Quickstart: detect outliers in a 2-D point cloud with DBSCOUT.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import DBSCOUT, estimate_eps


def main() -> None:
    rng = np.random.default_rng(0)

    # Two dense clusters plus a handful of scattered anomalies.
    cluster_a = rng.normal(loc=(0.0, 0.0), scale=0.4, size=(500, 2))
    cluster_b = rng.normal(loc=(5.0, 3.0), scale=0.6, size=(400, 2))
    anomalies = rng.uniform(low=-6.0, high=12.0, size=(12, 2))
    points = np.vstack([cluster_a, cluster_b, anomalies])

    # Pick eps with the paper's k-distance elbow heuristic, then run.
    min_pts = 10
    eps = estimate_eps(points, min_pts)
    detector = DBSCOUT(eps=eps, min_pts=min_pts)
    result = detector.fit(points)

    print(f"eps (elbow-estimated): {eps:.3f}")
    print(f"points:    {result.n_points}")
    print(f"core:      {result.n_core_points}")
    print(f"outliers:  {result.n_outliers}")
    print(f"phases:    {result.timings}")
    print("first outliers:", result.outlier_indices[:10].tolist())

    # The 12 planted anomalies sit far from both clusters, so almost
    # all of them should be flagged.
    planted = result.outlier_mask[-12:]
    print(f"planted anomalies flagged: {int(planted.sum())}/12")


if __name__ == "__main__":
    main()
