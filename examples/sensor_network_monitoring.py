"""Sensor-network fault detection: DBSCOUT vs LOF / IF / OC-SVM.

A classic outlier-detection deployment: a field of environmental
sensors reports (temperature, humidity) pairs.  Healthy sensors follow
one of a few operating regimes (day/night, sun/shade); faulty sensors
drift off to readings unlike any regime.  We know which sensors we
broke, so every detector can be scored with the outlier-class F1 —
the same protocol as the paper's Table III.

Run with:  python examples/sensor_network_monitoring.py
"""

import numpy as np

from repro import DBSCOUT, estimate_eps
from repro.baselines import IsolationForest, LocalOutlierFactor, OneClassSVM
from repro.datasets.synthetic import scatter_outliers
from repro.experiments import format_table
from repro.metrics import f1_score


def make_sensor_readings(seed: int = 3):
    """Three operating regimes plus 2% faulty sensors."""
    rng = np.random.default_rng(seed)
    regimes = [
        ((21.0, 45.0), (1.2, 4.0), 700),  # daytime, shaded
        ((29.0, 30.0), (1.5, 3.0), 500),  # daytime, direct sun
        ((12.0, 70.0), (0.8, 5.0), 800),  # night
    ]
    readings = np.vstack(
        [
            np.column_stack(
                [
                    rng.normal(center[0], std[0], count),
                    rng.normal(center[1], std[1], count),
                ]
            )
            for center, std, count in regimes
        ]
    )
    n_faulty = int(0.02 * readings.shape[0])
    faults = scatter_outliers(readings, n_faulty, rng, clearance=6.0)
    points = np.vstack([readings, faults])
    labels = np.concatenate(
        [np.zeros(readings.shape[0], dtype=int), np.ones(n_faulty, dtype=int)]
    )
    order = rng.permutation(points.shape[0])
    return points[order], labels[order]


def main() -> None:
    points, labels = make_sensor_readings()
    contamination = labels.mean()
    min_pts = 8
    eps = estimate_eps(points, min_pts)

    detectors = {
        f"DBSCOUT (eps={eps:.2f}, minPts={min_pts})": lambda: DBSCOUT(
            eps=eps, min_pts=min_pts
        ).fit(points),
        "LOF (k=20)": lambda: LocalOutlierFactor(
            k=20, contamination=contamination
        ).detect(points),
        "IsolationForest": lambda: IsolationForest(
            contamination=contamination, seed=0
        ).detect(points),
        "OneClassSVM": lambda: OneClassSVM(nu=contamination, seed=0).detect(
            points
        ),
    }

    rows = []
    for name, run in detectors.items():
        result = run()
        rows.append(
            [name, result.n_outliers, f1_score(labels, result.outlier_mask)]
        )

    print(f"{points.shape[0]} sensor readings, {int(labels.sum())} faulty")
    print()
    print(
        format_table(
            ["detector", "flagged", "F1 (fault class)"],
            rows,
            title="Sensor fault detection quality",
        )
    )
    print()
    print(
        "Note: DBSCOUT needs no contamination estimate — only the "
        "k-distance elbow — while LOF/IF/OC-SVM were handed the true "
        "fault rate."
    )


if __name__ == "__main__":
    main()
