"""Streaming GPS feed served live: ingest over the wire, hot-swap models.

GPS collections grow continuously.  This example loads a historical
base map into a *served* live detector, then replays a stream of
localized update batches (new fixes arriving around an active area —
the common case for tracking feeds) through the wire protocol:

    repro stream  ->  ingest op  ->  LiveDetector(IncrementalDBSCOUT)
                                        |  snapshot (exact CoreModel)
                                        v
    repro query   <-  query op   <-  OutlierService  (hot-swapped)

Every ingest batch triggers a snapshot + atomic hot swap, so remote
queries always see a model that is bit-identical to re-running batch
DBSCOUT on everything received so far — asserted at every step, while
the served incremental path re-evaluates only the affected
neighborhoods instead of refitting.

Run with:  python examples/streaming_gps_feed.py
"""

import asyncio
import threading
import time

import numpy as np

from repro import DBSCOUT
from repro.datasets import make_openstreetmap_like
from repro.experiments import format_table
from repro.serve import OutlierClient, OutlierServer, OutlierService
from repro.stream import LiveDetector, StreamCoordinator


def start_server(service, streams):
    """Run an OutlierServer on a background event loop thread."""
    loop = asyncio.new_event_loop()
    server = OutlierServer(service, host="127.0.0.1", port=0)
    started = threading.Event()

    async def _run() -> None:
        await server.start()
        for name, coordinator in streams.items():
            server.attach_stream(name, coordinator)
        started.set()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(_run()), daemon=True
    )
    thread.start()
    started.wait(timeout=10.0)

    def stop() -> None:
        asyncio.run_coroutine_threadsafe(server.aclose(), loop).result(
            timeout=10.0
        )
        thread.join(timeout=10.0)

    return server, stop


def main() -> None:
    eps, min_pts = 1.0e6, 10
    base = make_openstreetmap_like(20_000, seed=21)
    rng = np.random.default_rng(5)
    active_area = base[rng.integers(0, base.shape[0])]
    batches = [
        active_area + rng.normal(0.0, 0.4e6, size=(200, 2))
        for _ in range(15)
    ]

    service = OutlierService()
    live = LiveDetector(eps=eps, min_pts=min_pts, name="gps")
    coordinator = StreamCoordinator(
        live, service, name="gps", every_points=1
    )
    server, stop = start_server(service, {"gps": coordinator})
    client = OutlierClient(port=server.port)

    # Both strategies pay the initial load once.
    status = client.ingest("gps", base)
    assert status["swapped"] and status["version"] == 1
    DBSCOUT(eps=eps, min_pts=min_pts).fit(base)

    time_served = 0.0
    time_batch = 0.0
    arrived = base
    rows = []
    for step, batch in enumerate(batches, start=1):
        arrived = np.vstack([arrived, batch])

        # Served path: one wire round trip does exact incremental
        # maintenance, snapshots, and hot-swaps the fresh model.
        start = time.perf_counter()
        status = client.ingest("gps", batch)
        time_served += time.perf_counter() - start
        assert status["swapped"], "every batch should refresh the model"

        start = time.perf_counter()
        result_batch = DBSCOUT(eps=eps, min_pts=min_pts).fit(arrived)
        time_batch += time.perf_counter() - start

        # The served model answers for ALL points received so far,
        # identically to the full refit.
        labels = client.query("gps", arrived)
        assert np.array_equal(
            labels.astype(bool), result_batch.outlier_mask
        ), "served snapshot diverged from batch refit"
        if step % 5 == 0:
            rows.append(
                [
                    step,
                    arrived.shape[0],
                    int(labels.sum()),
                    status["version"],
                    round(time_served, 3),
                    round(time_batch, 3),
                ]
            )

    swap_status = client.swap_status("gps")
    client.close()
    stop()
    service.close()

    print(
        format_table(
            [
                "batch",
                "points",
                "outliers",
                "model version",
                "served ingest total (s)",
                "recompute total (s)",
            ],
            rows,
            title="Streaming GPS feed served live: hot-swap after every batch",
        )
    )
    print()
    print(
        f"{swap_status['swaps']} hot swaps served; remote queries matched "
        "the full refit at every step — identical exact outlier sets."
    )
    print(
        f"Served ingest (maintain + snapshot + swap: {time_served:.3f}s) "
        f"kept pace with recompute-from-scratch ({time_batch:.3f}s) while "
        "the detector stayed continuously queryable the whole time."
    )


if __name__ == "__main__":
    main()
