"""Streaming GPS feed: incremental DBSCOUT vs recompute-from-scratch.

GPS collections grow continuously.  This example loads a historical
base map, then replays a stream of *localized* update batches (new
fixes arriving around an active area — the common case for tracking
feeds).  ``IncrementalDBSCOUT`` maintains the exact outlier set by
re-evaluating only the affected neighborhoods, and is compared at
every step against re-running batch DBSCOUT on everything received so
far: the outputs are asserted identical, the costs are not.

Run with:  python examples/streaming_gps_feed.py
"""

import time

import numpy as np

from repro import DBSCOUT, IncrementalDBSCOUT
from repro.datasets import make_openstreetmap_like
from repro.experiments import format_table


def main() -> None:
    eps, min_pts = 1.0e6, 10
    base = make_openstreetmap_like(20_000, seed=21)
    rng = np.random.default_rng(5)
    active_area = base[rng.integers(0, base.shape[0])]
    batches = [
        active_area + rng.normal(0.0, 0.4e6, size=(200, 2))
        for _ in range(15)
    ]

    incremental = IncrementalDBSCOUT(eps=eps, min_pts=min_pts)
    incremental.insert(base)
    incremental.detect()  # both strategies pay the initial load once
    DBSCOUT(eps=eps, min_pts=min_pts).fit(base)

    time_incremental = 0.0
    time_batch = 0.0
    arrived = base
    rows = []
    for step, batch in enumerate(batches, start=1):
        arrived = np.vstack([arrived, batch])

        start = time.perf_counter()
        incremental.insert(batch)
        result_inc = incremental.detect()
        time_incremental += time.perf_counter() - start

        start = time.perf_counter()
        result_batch = DBSCOUT(eps=eps, min_pts=min_pts).fit(arrived)
        time_batch += time.perf_counter() - start

        assert np.array_equal(
            result_inc.outlier_mask, result_batch.outlier_mask
        ), "incremental result diverged from batch"
        if step % 5 == 0:
            rows.append(
                [
                    step,
                    arrived.shape[0],
                    result_inc.n_outliers,
                    result_inc.stats.get("outlier_cells_recomputed", 0),
                    round(time_incremental, 3),
                    round(time_batch, 3),
                ]
            )

    print(
        format_table(
            [
                "batch",
                "points",
                "outliers",
                "cells touched",
                "incremental total (s)",
                "recompute total (s)",
            ],
            rows,
            title="Streaming GPS feed: exact outliers after every batch",
        )
    )
    print()
    print(
        f"Incremental maintenance was "
        f"{time_batch / max(time_incremental, 1e-9):.0f}x faster on the "
        "update stream, with identical exact outlier sets at every step."
    )


if __name__ == "__main__":
    main()
