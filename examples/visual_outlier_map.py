"""Visual outlier map: render DBSCOUT's verdicts in the terminal.

Draws the dataset as an ASCII scatter plot with detected outliers
highlighted (``X``), side by side with the paper-style pipeline stats:
cells, dense cells, core points, and where the distance computations
went.  No plotting library needed.

Run with:  python examples/visual_outlier_map.py
"""

import numpy as np

from repro import DBSCOUT, estimate_eps
from repro.datasets import make_cluto_t7
from repro.experiments import ascii_scatter


def main() -> None:
    dataset = make_cluto_t7(n_points=3000, seed=7)
    min_pts = 10
    eps = estimate_eps(dataset.points, min_pts)
    result = DBSCOUT(eps=eps, min_pts=min_pts).fit(dataset.points)

    print(
        f"dataset: {dataset.name} (n={dataset.n_points}, "
        f"true outliers={dataset.n_outliers})"
    )
    print(f"parameters: eps={eps:.3g} (elbow), minPts={min_pts}")
    print()
    print(ascii_scatter(dataset.points, result.outlier_mask, height=28))
    print("X = detected outlier, . = inlier")
    print()
    stats = result.stats
    print(
        f"grid: {stats['n_cells']} cells "
        f"({stats['n_dense_cells']} dense, {stats['n_core_cells']} core), "
        f"k_d = {stats['k_d']}"
    )
    print(
        f"work: {stats['distance_computations']} pairwise distances, "
        f"{stats['pruned_cells']} cells pruned without any"
    )
    print(
        f"found {result.n_outliers} outliers / "
        f"{result.n_core_points} core points"
    )
    hits = int(
        (result.outlier_mask & (dataset.outlier_labels == 1)).sum()
    )
    print(f"true outliers recovered: {hits}/{dataset.n_outliers}")


if __name__ == "__main__":
    main()
