"""DBSCOUT reproduction: scalable exact density-based outlier detection.

Reproduction of *DBSCOUT: A Density-based Method for Scalable Outlier
Detection in Very Large Datasets* (Corain, Garza, Asudeh — ICDE 2021),
including the DBSCOUT algorithm itself (vectorized and distributed
engines), a from-scratch mini-Spark substrate (``repro.sparklite``),
the paper's baselines (DBSCAN, RP-DBSCAN, LOF, DDLOF, Isolation Forest,
One-Class SVM), dataset generators, quality metrics, and the experiment
harness that regenerates every table and figure of the evaluation.

Quickstart:
    >>> import numpy as np
    >>> from repro import DBSCOUT
    >>> X = np.vstack([np.random.default_rng(0).normal(size=(500, 2)),
    ...                [[25.0, 25.0]]])
    >>> result = DBSCOUT(eps=0.8, min_pts=10).fit(X)
    >>> result.n_outliers >= 1
    True
"""

from repro.core.classify import CoreModel, classify
from repro.core.dbscout import DBSCOUT, detect_outliers
from repro.core.distance_based import DistanceBasedDetector
from repro.core.geographic import detect_geographic
from repro.core.incremental import IncrementalDBSCOUT
from repro.core.parameters import estimate_eps, k_distance_graph
from repro.core.scoring import detect_with_scores, nearest_core_distance
from repro.exceptions import (
    ArtifactError,
    DataValidationError,
    DeadlineExceededError,
    EngineError,
    NotFittedError,
    ParameterError,
    ReproError,
    ServeError,
    ServiceOverloadedError,
    SparkLiteError,
    UnknownDetectorError,
)
from repro.types import DetectionResult, TimingBreakdown

__version__ = "1.0.0"

__all__ = [
    "DBSCOUT",
    "CoreModel",
    "DistanceBasedDetector",
    "IncrementalDBSCOUT",
    "classify",
    "detect_outliers",
    "detect_with_scores",
    "detect_geographic",
    "nearest_core_distance",
    "estimate_eps",
    "k_distance_graph",
    "DetectionResult",
    "TimingBreakdown",
    "ReproError",
    "ParameterError",
    "DataValidationError",
    "EngineError",
    "NotFittedError",
    "SparkLiteError",
    "ArtifactError",
    "ServeError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "UnknownDetectorError",
    "__version__",
]
