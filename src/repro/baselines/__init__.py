"""Baseline algorithms the paper compares against, built from scratch.

* :mod:`repro.baselines.dbscan` — exact DBSCAN (KD-tree and brute);
  its noise set equals DBSCOUT's outlier set by construction.
* :mod:`repro.baselines.grid_dbscan` — exact grid-based DBSCAN
  (Gunawan-style), the "naive clustering alternative" whose extra
  cluster-construction cost the paper argues against.
* :mod:`repro.baselines.rp_dbscan` — simplified RP-DBSCAN: the
  rho-approximate parallel DBSCAN used as the scalable competitor.
* :mod:`repro.baselines.lof` — exact Local Outlier Factor.
* :mod:`repro.baselines.ddlof` — distributed LOF (DDLOF-style) on
  SparkLite with grid partitioning and support areas.
* :mod:`repro.baselines.isolation_forest` — Isolation Forest.
* :mod:`repro.baselines.ocsvm` — One-Class SVM via random Fourier
  features and SGD.
* :mod:`repro.baselines.knn_outlier` — top-n kNN-distance outliers
  (Ramaswamy et al., cited in the paper's related work).
* :mod:`repro.baselines.hbos` — histogram-based outlier score, a
  linear-time statistical baseline.
"""

from repro.baselines.dbscan import DBSCAN, dbscan_labels
from repro.baselines.grid_dbscan import GridDBSCAN
from repro.baselines.hbos import HBOS
from repro.baselines.ddlof import DDLOF
from repro.baselines.isolation_forest import IsolationForest
from repro.baselines.knn_outlier import KNNOutlierDetector
from repro.baselines.lof import LocalOutlierFactor
from repro.baselines.ocsvm import OneClassSVM
from repro.baselines.rp_dbscan import RPDBSCAN

__all__ = [
    "DBSCAN",
    "GridDBSCAN",
    "HBOS",
    "dbscan_labels",
    "DDLOF",
    "IsolationForest",
    "KNNOutlierDetector",
    "LocalOutlierFactor",
    "OneClassSVM",
    "RPDBSCAN",
]
