"""Exact DBSCAN (Ester et al., KDD 1996), built from scratch.

Provided both as a correctness oracle — DBSCAN's *noise* points are by
definition exactly DBSCOUT's outliers (Definition 3) — and as the
conceptual "naive baseline" the paper argues against: clustering does
strictly more work than outlier extraction.

Two neighbor-query backends:

* ``algorithm="kdtree"`` (default) — scipy cKDTree radius queries;
* ``algorithm="brute"`` — full pairwise distances, O(n^2) memory, for
  tiny inputs and tests.

Neighborhoods use ``dist <= eps`` (inclusive), matching Definition 2.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy.spatial import cKDTree

from repro.core.grid import validate_points
from repro.core.validation import validate_parameters
from repro.exceptions import ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["DBSCAN", "dbscan_labels"]

NOISE = -1
_UNVISITED = -2


class DBSCAN:
    """Exact density-based clustering with noise.

    Args:
        eps: Neighborhood radius.
        min_pts: Minimum neighborhood size (self included) of a core
            point.
        algorithm: ``"kdtree"`` or ``"brute"``.
    """

    def __init__(
        self, eps: float, min_pts: int, algorithm: str = "kdtree"
    ) -> None:
        self.eps, self.min_pts = validate_parameters(eps, min_pts)
        if algorithm not in ("kdtree", "brute"):
            raise ParameterError(
                f"algorithm must be 'kdtree' or 'brute', got {algorithm!r}"
            )
        self.algorithm = algorithm

    def _neighbor_lists(self, array: np.ndarray) -> list[np.ndarray]:
        """Per-point arrays of neighbor indices (self included)."""
        if self.algorithm == "brute":
            sq_norms = np.einsum("ij,ij->i", array, array)
            sq = sq_norms[:, None] + sq_norms[None, :] - 2.0 * array @ array.T
            np.maximum(sq, 0.0, out=sq)
            within = sq <= self.eps * self.eps
            return [np.flatnonzero(row) for row in within]
        tree = cKDTree(array)
        pairs = tree.query_ball_point(array, r=self.eps)
        return [np.asarray(lst, dtype=np.int64) for lst in pairs]

    def fit(self, points: np.ndarray) -> "DBSCANResult":
        """Cluster ``points``; returns labels, core mask, and outliers."""
        array = validate_points(points)
        n_points = array.shape[0]
        if n_points == 0:
            return DBSCANResult(
                labels=np.zeros(0, dtype=np.int64),
                core_mask=np.zeros(0, dtype=bool),
                n_clusters=0,
            )
        neighbors = self._neighbor_lists(array)
        core_mask = np.array(
            [len(lst) >= self.min_pts for lst in neighbors], dtype=bool
        )
        labels = np.full(n_points, _UNVISITED, dtype=np.int64)
        cluster_id = 0
        for seed in range(n_points):
            if labels[seed] != _UNVISITED or not core_mask[seed]:
                continue
            # Breadth-first expansion from a fresh core point.
            labels[seed] = cluster_id
            queue = deque([seed])
            while queue:
                current = queue.popleft()
                if not core_mask[current]:
                    continue
                for neighbor in neighbors[current]:
                    if labels[neighbor] == _UNVISITED or (
                        labels[neighbor] == NOISE and core_mask[neighbor]
                    ):
                        labels[neighbor] = cluster_id
                        if core_mask[neighbor]:
                            queue.append(neighbor)
                    elif labels[neighbor] == NOISE:
                        labels[neighbor] = cluster_id
            cluster_id += 1
        labels[labels == _UNVISITED] = NOISE
        return DBSCANResult(
            labels=labels, core_mask=core_mask, n_clusters=cluster_id
        )

    def detect(
        self, points: np.ndarray, eps: float | None = None, min_pts: int | None = None
    ) -> DetectionResult:
        """Detector facade: DBSCAN noise as a :class:`DetectionResult`.

        ``eps``/``min_pts`` overrides allow this baseline to plug into
        harnesses that pass parameters per call.
        """
        if eps is not None or min_pts is not None:
            clusterer = DBSCAN(
                eps if eps is not None else self.eps,
                min_pts if min_pts is not None else self.min_pts,
                algorithm=self.algorithm,
            )
        else:
            clusterer = self
        recorder = RunRecorder(
            engine="dbscan",
            params={"eps": clusterer.eps, "min_pts": clusterer.min_pts},
            context={"algorithm": "dbscan"},
        )
        with recorder.activate(), recorder.span(
            "fit", algorithm=clusterer.algorithm
        ):
            result = clusterer.fit(points)
        recorder.add_context(n_clusters=result.n_clusters)
        record = recorder.finish(result.labels.shape[0])
        return DetectionResult(
            n_points=result.labels.shape[0],
            outlier_mask=result.labels == NOISE,
            core_mask=result.core_mask,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )


class DBSCANResult:
    """Clustering output: labels (``-1`` = noise), core mask, #clusters."""

    def __init__(
        self, labels: np.ndarray, core_mask: np.ndarray, n_clusters: int
    ) -> None:
        self.labels = labels
        self.core_mask = core_mask
        self.n_clusters = n_clusters

    @property
    def noise_mask(self) -> np.ndarray:
        """Boolean mask of noise points (DBSCOUT's outliers)."""
        return self.labels == NOISE

    def __repr__(self) -> str:
        return (
            f"DBSCANResult(n_points={self.labels.shape[0]}, "
            f"n_clusters={self.n_clusters}, "
            f"n_noise={int(self.noise_mask.sum())})"
        )


def dbscan_labels(
    points: np.ndarray, eps: float, min_pts: int, algorithm: str = "kdtree"
) -> np.ndarray:
    """One-shot helper returning DBSCAN cluster labels (-1 for noise)."""
    return DBSCAN(eps, min_pts, algorithm=algorithm).fit(points).labels
