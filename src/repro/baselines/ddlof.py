"""DDLOF-style distributed Local Outlier Factor (Yan et al., KDD 2017).

A from-scratch reproduction of the paper's scalability competitor: LOF
evaluated as a sequence of MapReduce-style jobs over a spatial grid of
*blocks*, each extended with a *support area* so that k-nearest-neighbor
computations stay block-local:

1. **Partition** — points are assigned to square blocks; every point is
   additionally duplicated into each neighboring block whose boundary
   lies within the support margin (the MapReduce "supporting area").
2. **k-distance job** — each block computes, for every point it *owns*,
   the k nearest neighbors among owned + support points, with
   **brute-force pairwise distances** (as in DDLOF's implementation —
   this is precisely what blows up on skewed data, where one block can
   own a large fraction of the dataset).
3. **Multi-round support expansion** — a point whose locally computed
   k-distance exceeds the support margin may have true neighbors
   outside the block; such *unresolved* points are retried in further
   rounds with the margin doubled each time (the supporting area then
   reaches into blocks further away), and whatever survives
   ``max_rounds`` is resolved exactly against the full dataset.
4. **LRD job** — reachability distances need the k-distance of each
   neighbor: a shuffle joins neighbor lists with k-distances by point
   id, then reduces to each point's local reachability density.
5. **LOF job** — a second join gathers neighbors' LRDs and averages
   the ratio, yielding the exact LOF score.

Scores equal the centralized :func:`repro.baselines.lof.lof_scores`
up to nearest-neighbor ties; outliers are the top ``contamination``
fraction by score.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict

import numpy as np
from scipy.spatial import cKDTree

from repro.core.grid import validate_points
from repro.exceptions import ParameterError
from repro.sparklite import Context
from repro.types import DetectionResult, TimingBreakdown

__all__ = ["DDLOF"]

Block = tuple[int, ...]


class DDLOF:
    """Distributed LOF over a block grid with support areas.

    Args:
        k: Neighborhood size (the paper uses ``k = 6``).
        contamination: Fraction of points flagged as outliers.
        top_n: Alternatively flag exactly the ``top_n`` highest-LOF
            points (the DTOLF formulation of the paper's ref [38]);
            overrides ``contamination`` when set.
        points_per_block: Target average block population; the block
            side is derived from the data's bounding box.
        support_factor: Support margin as a fraction of the block side.
        num_partitions: SparkLite partitions for the block jobs.
        max_workers: Executor threads.
        max_block_population: Safety valve — a block (with support)
            whose population exceeds this bound aborts the run with
            :class:`MemoryError`-like failure, emulating the paper's
            DDLOF out-of-memory / timeout behaviour on skewed data.
            ``None`` disables the check.
        max_rounds: Support-expansion rounds.  A point whose local
            k-distance exceeds the current margin is retried in the
            next round with the margin doubled (DDLOF's multi-round
            supporting-area refinement); whatever remains after the
            last round is resolved against the full dataset.
        context: Optional externally managed SparkLite context.
    """

    name = "ddlof"

    def __init__(
        self,
        k: int = 6,
        contamination: float = 0.05,
        top_n: int | None = None,
        points_per_block: int = 512,
        support_factor: float = 0.3,
        num_partitions: int = 8,
        max_workers: int = 1,
        max_block_population: int | None = None,
        max_rounds: int = 3,
        context: Context | None = None,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if not 0.0 < contamination <= 0.5:
            raise ParameterError(
                f"contamination must be in (0, 0.5], got {contamination}"
            )
        if top_n is not None and top_n < 1:
            raise ParameterError(f"top_n must be >= 1, got {top_n}")
        if points_per_block < 1:
            raise ParameterError(
                f"points_per_block must be >= 1, got {points_per_block}"
            )
        if support_factor <= 0:
            raise ParameterError(
                f"support_factor must be positive, got {support_factor}"
            )
        if max_rounds < 1:
            raise ParameterError(f"max_rounds must be >= 1, got {max_rounds}")
        self.k = int(k)
        self.contamination = float(contamination)
        self.top_n = top_n
        self.points_per_block = int(points_per_block)
        self.support_factor = float(support_factor)
        self.num_partitions = int(num_partitions)
        self.max_block_population = max_block_population
        self.max_rounds = int(max_rounds)
        self.context = context or Context(
            default_parallelism=num_partitions, max_workers=max_workers
        )

    # ------------------------------------------------------------------

    def _block_side(self, array: np.ndarray) -> float:
        """Block side giving ~points_per_block points per non-empty block
        under a uniformity assumption (skew breaks it — by design)."""
        spans = array.max(axis=0) - array.min(axis=0)
        volume = float(np.prod(np.maximum(spans, np.finfo(float).eps)))
        n_blocks = max(1.0, array.shape[0] / self.points_per_block)
        return (volume / n_blocks) ** (1.0 / array.shape[1])

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Run the DDLOF pipeline and flag the top-contamination points."""
        array = validate_points(points)
        n_points = array.shape[0]
        if n_points <= self.k:
            raise ParameterError(
                f"need more than k={self.k} points, got {n_points}"
            )
        timings: dict[str, float] = {}

        start = time.perf_counter()
        side = self._block_side(array)
        margin = side * self.support_factor
        owned = self._assign_blocks(array, side)
        timings["partition"] = time.perf_counter() - start

        # Multi-round support expansion: start with every point as a
        # target; whoever cannot resolve its kNN within the current
        # margin is retried next round with the margin doubled.
        start = time.perf_counter()
        k_dist = np.zeros(n_points, dtype=np.float64)
        neighbor_idx = np.zeros((n_points, self.k), dtype=np.int64)
        neighbor_dist = np.zeros((n_points, self.k), dtype=np.float64)
        targets = dict(owned)
        rounds_log: list[dict[str, float]] = []
        max_pool = 0
        for round_no in range(self.max_rounds):
            if not targets:
                break
            supported = self._support(
                array, owned, side, margin, set(targets)
            )
            max_pool = max(
                max_pool,
                max(
                    (
                        len(owned[b]) + len(supported.get(b, ()))
                        for b in targets
                    ),
                    default=0,
                ),
            )
            n_targets = sum(len(v) for v in targets.values())
            targets = self._kdistance_round(
                array,
                owned,
                targets,
                supported,
                margin,
                k_dist,
                neighbor_idx,
                neighbor_dist,
            )
            rounds_log.append(
                {
                    "round": round_no,
                    "margin": margin,
                    "targets": n_targets,
                    "unresolved": sum(len(v) for v in targets.values()),
                }
            )
            margin *= 2.0
        timings["k_distance"] = time.perf_counter() - start

        start = time.perf_counter()
        n_unresolved = sum(len(v) for v in targets.values())
        if n_unresolved:
            remaining = np.concatenate(list(targets.values()))
            self._global_fallback(
                array, remaining, k_dist, neighbor_idx, neighbor_dist
            )
        timings["correction"] = time.perf_counter() - start

        start = time.perf_counter()
        lrd = self._lrd_job(k_dist, neighbor_idx, neighbor_dist)
        timings["lrd"] = time.perf_counter() - start

        start = time.perf_counter()
        scores = self._lof_job(lrd, neighbor_idx)
        timings["lof"] = time.perf_counter() - start

        if self.top_n is not None:
            n_outliers = min(self.top_n, n_points)
        else:
            n_outliers = max(1, int(round(self.contamination * n_points)))
        threshold = np.partition(scores, n_points - n_outliers)[
            n_points - n_outliers
        ]
        return DetectionResult(
            n_points=n_points,
            outlier_mask=scores >= threshold,
            scores=scores,
            timings=TimingBreakdown(timings),
            stats={
                "algorithm": self.name,
                "k": self.k,
                "block_side": side,
                "n_blocks": len(owned),
                "n_unresolved": n_unresolved,
                "rounds": rounds_log,
                "max_block_population": max_pool,
                **self.context.metrics.snapshot(),
            },
        )

    # ------------------------------------------------------------------
    # Phase 1 — block assignment and support areas
    # ------------------------------------------------------------------

    def _assign_blocks(
        self, array: np.ndarray, side: float
    ) -> dict[Block, np.ndarray]:
        """Owned point indices per block."""
        coords = np.floor(array / side).astype(np.int64)
        owned: dict[Block, list[int]] = defaultdict(list)
        for index, row in enumerate(coords):
            owned[tuple(row.tolist())].append(index)
        return {
            block: np.array(indices, dtype=np.int64)
            for block, indices in owned.items()
        }

    def _support(
        self,
        array: np.ndarray,
        owned: dict[Block, np.ndarray],
        side: float,
        margin: float,
        needed_blocks: set[Block],
    ) -> dict[Block, np.ndarray]:
        """Support duplicates (points within ``margin`` of the block
        boundary) for each block in ``needed_blocks``.

        The reach grows with the margin: a round with ``margin > side``
        pulls support from blocks further away, which is exactly
        DDLOF's expanding supporting area.
        """
        import math

        reach = max(1, math.ceil(margin / side))
        offsets = _unit_offsets(array.shape[1], reach)
        supported: dict[Block, list[int]] = defaultdict(list)
        for block, indices in owned.items():
            block_points = array[indices]
            lo = np.array(block, dtype=np.float64) * side
            for offset in offsets:
                neighbor = tuple(int(b + o) for b, o in zip(block, offset))
                if neighbor not in needed_blocks:
                    continue
                # Distance from each point to the neighbor block's box.
                n_lo = lo + np.array(offset, dtype=np.float64) * side
                n_hi = n_lo + side
                below = n_lo - block_points
                above = block_points - n_hi
                gap = np.maximum(np.maximum(below, above), 0.0)
                dist = np.sqrt(np.einsum("pd,pd->p", gap, gap))
                close = dist <= margin
                if close.any():
                    supported[neighbor].extend(indices[close].tolist())
        return {
            block: np.array(indices, dtype=np.int64)
            for block, indices in supported.items()
        }

    # ------------------------------------------------------------------
    # Phase 2 — per-block brute-force k-distance (one round)
    # ------------------------------------------------------------------

    def _kdistance_round(
        self,
        array: np.ndarray,
        owned: dict[Block, np.ndarray],
        targets: dict[Block, np.ndarray],
        supported: dict[Block, np.ndarray],
        margin: float,
        k_dist: np.ndarray,
        neighbor_idx: np.ndarray,
        neighbor_dist: np.ndarray,
    ) -> dict[Block, np.ndarray]:
        """Resolve kNN for the target points of each block.

        A target resolves when its block-local k-distance is at most
        ``margin`` (then all true neighbors were inside the pool, so
        the local answer is exact).  Returns the still-unresolved
        targets per block.
        """
        k = self.k
        cap = self.max_block_population

        def process_block(item):
            _block, (target_idx, own_idx, support_idx) = item
            pool_idx = (
                np.concatenate([own_idx, support_idx])
                if support_idx.size
                else own_idx
            )
            if cap is not None and pool_idx.size > cap:
                raise MemoryError(
                    f"DDLOF block population {pool_idx.size} exceeds the "
                    f"configured limit {cap} (skew-induced blow-up)"
                )
            pool = array[pool_idx]
            own = array[target_idx]
            local_k = min(k, pool_idx.size - 1)
            if local_k < 1:
                # A lone point with no support: retry with wider margin.
                return (
                    target_idx,
                    np.full(target_idx.size, np.inf),
                    np.zeros((target_idx.size, k), dtype=np.int64),
                    np.full((target_idx.size, k), np.inf),
                    np.ones(target_idx.size, dtype=bool),
                )
            # Brute-force pairwise distances, chunked over target rows.
            rows_kdist = np.empty(target_idx.size, dtype=np.float64)
            rows_nidx = np.zeros((target_idx.size, k), dtype=np.int64)
            rows_ndist = np.full((target_idx.size, k), np.inf, dtype=np.float64)
            chunk = max(1, 2_000_000 // max(pool_idx.size, 1))
            for begin in range(0, target_idx.size, chunk):
                end = min(begin + chunk, target_idx.size)
                diffs = own[begin:end, None, :] - pool[None, :, :]
                dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
                # Exclude self: targets also appear in the pool.
                dists[pool_idx[None, :] == target_idx[begin:end, None]] = np.inf
                nearest = np.argpartition(dists, local_k - 1, axis=1)[
                    :, :local_k
                ]
                nearest_d = np.take_along_axis(dists, nearest, axis=1)
                order = np.argsort(nearest_d, axis=1)
                nearest = np.take_along_axis(nearest, order, axis=1)
                nearest_d = np.take_along_axis(nearest_d, order, axis=1)
                rows_nidx[begin:end, :local_k] = pool_idx[nearest]
                rows_ndist[begin:end, :local_k] = nearest_d
                rows_kdist[begin:end] = nearest_d[:, local_k - 1]
            short = local_k < k
            flagged = (rows_kdist > margin) | short
            return target_idx, rows_kdist, rows_nidx, rows_ndist, flagged

        items = [
            (
                block,
                (
                    target_idx,
                    owned[block],
                    supported.get(block, np.empty(0, dtype=np.int64)),
                ),
            )
            for block, target_idx in targets.items()
        ]
        rdd = self.context.parallelize(items, self.num_partitions)
        still_unresolved: dict[Block, np.ndarray] = {}
        for (block, _), result in zip(items, rdd.map(process_block).collect()):
            target_idx, rows_kdist, rows_nidx, rows_ndist, flagged = result
            k_dist[target_idx] = rows_kdist
            neighbor_idx[target_idx] = rows_nidx
            neighbor_dist[target_idx] = rows_ndist
            if flagged.any():
                still_unresolved[block] = target_idx[flagged]
        return still_unresolved

    # ------------------------------------------------------------------
    # Phase 3 — exact global fallback for whatever rounds left over
    # ------------------------------------------------------------------

    def _global_fallback(
        self,
        array: np.ndarray,
        targets: np.ndarray,
        k_dist: np.ndarray,
        neighbor_idx: np.ndarray,
        neighbor_dist: np.ndarray,
    ) -> None:
        """Resolve the leftover targets exactly against everything."""
        tree = cKDTree(array)
        distances, indices = tree.query(array[targets], k=self.k + 1)
        k_dist[targets] = distances[:, self.k]
        neighbor_idx[targets] = indices[:, 1:]
        neighbor_dist[targets] = distances[:, 1:]

    # ------------------------------------------------------------------
    # Phases 4 & 5 — join-based LRD and LOF jobs
    # ------------------------------------------------------------------

    def _lrd_job(
        self,
        k_dist: np.ndarray,
        neighbor_idx: np.ndarray,
        neighbor_dist: np.ndarray,
    ) -> np.ndarray:
        """Shuffle-join neighbor lists with k-distances, reduce to LRD."""
        n_points = k_dist.shape[0]
        # (neighbor, (point, distance)) pairs joined with (neighbor, k_dist).
        pairs = [
            (int(neighbor), (int(point), float(dist)))
            for point in range(n_points)
            for neighbor, dist in zip(neighbor_idx[point], neighbor_dist[point])
        ]
        pair_rdd = self.context.parallelize(pairs, self.num_partitions)
        kdist_rdd = self.context.parallelize(
            [(int(i), float(k_dist[i])) for i in range(n_points)],
            self.num_partitions,
        )
        reach_sums = (
            pair_rdd.join(kdist_rdd)
            .map(
                lambda rec: (
                    rec[1][0][0],  # the point whose LRD we accumulate
                    max(rec[1][1], rec[1][0][1]),  # reach-dist component
                )
            )
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        lrd = np.zeros(n_points, dtype=np.float64)
        floor = np.finfo(np.float64).eps
        for point, total in reach_sums:
            lrd[point] = 1.0 / max(total / self.k, floor)
        return lrd

    def _lof_job(self, lrd: np.ndarray, neighbor_idx: np.ndarray) -> np.ndarray:
        """Shuffle-join neighbor lists with LRDs, average the ratios."""
        n_points = lrd.shape[0]
        pairs = [
            (int(neighbor), int(point))
            for point in range(n_points)
            for neighbor in neighbor_idx[point]
        ]
        pair_rdd = self.context.parallelize(pairs, self.num_partitions)
        lrd_rdd = self.context.parallelize(
            [(int(i), float(lrd[i])) for i in range(n_points)],
            self.num_partitions,
        )
        sums = (
            pair_rdd.join(lrd_rdd)
            .map(lambda rec: (rec[1][0], rec[1][1]))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        scores = np.zeros(n_points, dtype=np.float64)
        floor = np.finfo(np.float64).eps
        for point, total in sums:
            scores[point] = (total / self.k) / max(lrd[point], floor)
        return scores


def _unit_offsets(n_dims: int, reach: int = 1) -> list[tuple[int, ...]]:
    """All non-zero offsets within Chebyshev distance ``reach``."""
    import itertools

    return [
        offset
        for offset in itertools.product(
            range(-reach, reach + 1), repeat=n_dims
        )
        if any(offset)
    ]
