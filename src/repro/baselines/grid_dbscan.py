"""Exact grid-based DBSCAN (Gunawan & de Berg style), generalized to d >= 2.

This is the "naive alternative" the paper argues against: one *could*
extract DBSCOUT's outliers by running a full DBSCAN and keeping the
noise points, but clustering does strictly more work — after the
core-point phase (identical to DBSCOUT's), it must also build the
cluster structure:

1. grid partitioning, dense-cell map, core points — shared with
   DBSCOUT (literally the same code);
2. **cluster graph** — two neighboring core cells belong to the same
   cluster iff some pair of their core points is within ``eps``;
   deciding each edge takes real distance computations (this is the
   extra, non-linear work);
3. connected components over core cells give the cluster ids (all
   core points of one cell are mutually within ``eps``, so cell
   granularity is exact);
4. border points join the cluster of a covering core point; the rest
   is noise.

The noise set equals DBSCOUT's outlier set *exactly* (asserted in the
tests), which is the paper's starting observation.  The ablation bench
``bench_ablation_clustering_cost.py`` measures how much the cluster
construction adds on top of outlier extraction.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.dbscan import NOISE, DBSCANResult
from repro.baselines.rp_dbscan import DisjointSet
from repro.core.grid import Grid, validate_points
from repro.core.neighbors import NeighborStencil
from repro.core.validation import validate_parameters
from repro.core.vectorized import VectorizedEngine, _CellAdjacency
from repro.types import DetectionResult, TimingBreakdown

__all__ = ["GridDBSCAN"]


class GridDBSCAN:
    """Exact DBSCAN accelerated by the epsilon-cell grid.

    Args:
        eps: Neighborhood radius.
        min_pts: Core-point density threshold (self included).
    """

    def __init__(self, eps: float, min_pts: int) -> None:
        self.eps, self.min_pts = validate_parameters(eps, min_pts)

    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster ``points``; noise equals DBSCOUT's outliers."""
        result, _timings = self._fit_with_timings(points)
        return result

    def _fit_with_timings(
        self, points: np.ndarray
    ) -> tuple[DBSCANResult, TimingBreakdown]:
        array = validate_points(points)
        n_points = array.shape[0]
        if n_points == 0:
            return (
                DBSCANResult(
                    labels=np.zeros(0, dtype=np.int64),
                    core_mask=np.zeros(0, dtype=bool),
                    n_clusters=0,
                ),
                TimingBreakdown({}),
            )
        eps_sq = self.eps * self.eps
        timings: dict[str, float] = {}

        # Phases 1-3: shared with DBSCOUT.
        start = time.perf_counter()
        grid = Grid(array, self.eps)
        stencil = NeighborStencil(grid.n_dims)
        adjacency = _CellAdjacency(grid, stencil)
        dense_cells = grid.counts >= self.min_pts
        counters = {"distance_computations": 0, "pruned_cells": 0}
        core_mask = VectorizedEngine._find_core_points(
            array, grid, adjacency, dense_cells, self.eps, self.min_pts,
            counters,
        )
        timings["core_points"] = time.perf_counter() - start

        # Phase 4 (the extra work): exact cluster graph over core cells.
        start = time.perf_counter()
        core_members: dict[int, np.ndarray] = {}
        for cell_index in range(grid.n_cells):
            members = grid.cell_members(cell_index)
            cores = members[core_mask[members]]
            if cores.size:
                core_members[cell_index] = cores
        forest = DisjointSet()
        for cell_index in core_members:
            forest.find(cell_index)
        for cell_index, cores in core_members.items():
            for neighbor_index in adjacency.neighbors(cell_index):
                neighbor_index = int(neighbor_index)
                if neighbor_index <= cell_index:
                    continue  # each unordered pair once
                other = core_members.get(neighbor_index)
                if other is None:
                    continue
                if forest.find(cell_index) == forest.find(neighbor_index):
                    continue  # already connected through another path
                diffs = (
                    array[cores][:, None, :] - array[other][None, :, :]
                )
                sq = np.einsum("ijk,ijk->ij", diffs, diffs)
                if (sq <= eps_sq).any():
                    forest.union(cell_index, neighbor_index)
        timings["cluster_graph"] = time.perf_counter() - start

        # Phase 5: label cores, attach borders, mark noise.
        start = time.perf_counter()
        labels = np.full(n_points, NOISE, dtype=np.int64)
        root_to_cluster: dict[object, int] = {}
        for cell_index, cores in core_members.items():
            root = forest.find(cell_index)
            cluster = root_to_cluster.setdefault(root, len(root_to_cluster))
            labels[cores] = cluster
        for cell_index in range(grid.n_cells):
            members = grid.cell_members(cell_index)
            border = members[~core_mask[members]]
            if border.size == 0:
                continue
            if cell_index in core_members:
                # Lemma 2: everything in a core cell is within eps of a
                # core point of that very cell.
                cluster = labels[core_members[cell_index][0]]
                labels[border] = cluster
                continue
            undecided = border
            for neighbor_index in adjacency.neighbors(cell_index):
                cores = core_members.get(int(neighbor_index))
                if cores is None or undecided.size == 0:
                    continue
                diffs = (
                    array[undecided][:, None, :] - array[cores][None, :, :]
                )
                sq = np.einsum("ijk,ijk->ij", diffs, diffs)
                covered = (sq <= eps_sq).any(axis=1)
                labels[undecided[covered]] = labels[cores[0]]
                undecided = undecided[~covered]
        timings["labelling"] = time.perf_counter() - start

        return (
            DBSCANResult(
                labels=labels,
                core_mask=core_mask,
                n_clusters=len(root_to_cluster),
            ),
            TimingBreakdown(timings),
        )

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Detector facade: DBSCAN noise as a DetectionResult."""
        result, timings = self._fit_with_timings(points)
        return DetectionResult(
            n_points=result.labels.shape[0],
            outlier_mask=result.labels == NOISE,
            core_mask=result.core_mask,
            timings=timings,
            stats={
                "algorithm": "grid_dbscan",
                "n_clusters": result.n_clusters,
            },
        )
