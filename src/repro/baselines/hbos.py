"""HBOS: Histogram-Based Outlier Score (Goldstein & Dengel, 2012).

A lightweight, linear-time statistical baseline that complements the
density/model detectors: each dimension gets an equal-width histogram;
a point's score is the sum of negative log densities of its bins
(features treated as independent).  Fast, coarse, and — like the
paper's IF/OC-SVM competitors — blind to non-axis-aligned structure,
which is exactly the contrast the density-based DBSCOUT wins on.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import validate_points
from repro.exceptions import NotFittedError, ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["HBOS"]


class HBOS:
    """Histogram-based outlier detector.

    Args:
        n_bins: Bins per dimension; ``"auto"`` uses ``sqrt(n)`` capped
            to [10, 200] (the original paper's recommendation).
        contamination: Fraction of points to flag.
    """

    name = "hbos"

    def __init__(
        self,
        n_bins: int | str = "auto",
        contamination: float = 0.05,
    ) -> None:
        if isinstance(n_bins, str):
            if n_bins != "auto":
                raise ParameterError(
                    f"n_bins must be an integer or 'auto', got {n_bins!r}"
                )
        elif n_bins < 2:
            raise ParameterError(f"n_bins must be >= 2, got {n_bins}")
        if not 0.0 < contamination <= 0.5:
            raise ParameterError(
                f"contamination must be in (0, 0.5], got {contamination}"
            )
        self.n_bins = n_bins
        self.contamination = float(contamination)
        self._edges: list[np.ndarray] | None = None
        self._log_density: list[np.ndarray] | None = None

    def _resolve_bins(self, n_points: int) -> int:
        if self.n_bins == "auto":
            return int(np.clip(np.sqrt(n_points), 10, 200))
        return int(self.n_bins)

    def fit(self, points: np.ndarray) -> "HBOS":
        """Build the per-dimension histograms."""
        array = validate_points(points)
        if array.shape[0] < 2:
            raise ParameterError("HBOS needs at least 2 points")
        bins = self._resolve_bins(array.shape[0])
        self._edges = []
        self._log_density = []
        tiny = 1.0 / (array.shape[0] * bins)
        for dim in range(array.shape[1]):
            counts, edges = np.histogram(array[:, dim], bins=bins)
            density = counts / counts.sum()
            self._edges.append(edges)
            self._log_density.append(np.log(np.maximum(density, tiny)))
        return self

    def score(self, points: np.ndarray) -> np.ndarray:
        """Sum of negative log bin densities (higher = more anomalous).

        Values outside the fitted range fall into the nearest edge bin.
        """
        if self._edges is None or self._log_density is None:
            raise NotFittedError("call fit() before score()")
        array = validate_points(points)
        if array.shape[1] != len(self._edges):
            raise ParameterError(
                f"expected {len(self._edges)} dimensions, "
                f"got {array.shape[1]}"
            )
        scores = np.zeros(array.shape[0], dtype=np.float64)
        for dim, (edges, log_density) in enumerate(
            zip(self._edges, self._log_density)
        ):
            positions = np.searchsorted(edges, array[:, dim], side="right") - 1
            positions = np.clip(positions, 0, log_density.shape[0] - 1)
            scores -= log_density[positions]
        return scores

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Fit, score, and flag the top-contamination fraction."""
        array = validate_points(points)
        n_points = array.shape[0]
        recorder = RunRecorder(
            engine=self.name,
            params={"contamination": self.contamination},
            context={
                "algorithm": self.name,
                "n_bins": self._resolve_bins(n_points),
                "contamination": self.contamination,
            },
        )
        with recorder.activate():
            with recorder.span("fit"):
                self.fit(array)
            with recorder.span("score"):
                scores = self.score(array)
            with recorder.span("threshold"):
                n_outliers = max(
                    1, int(round(self.contamination * n_points))
                )
                threshold = np.partition(scores, n_points - n_outliers)[
                    n_points - n_outliers
                ]
        record = recorder.finish(n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=scores >= threshold,
            scores=scores,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )
