"""Isolation Forest (Liu, Ting, Zhou — ICDM 2008), from scratch.

An ensemble of random isolation trees built on subsamples; anomalies
isolate in few random splits, so short average path lengths mean high
anomaly scores: ``s(x) = 2 ** (-E[h(x)] / c(psi))`` with ``c`` the
average unsuccessful-search path length of a BST.

Trees are stored in flat arrays and evaluated vectorized, so scoring
is fast enough for the Table III datasets (4k-10k points).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.grid import validate_points
from repro.exceptions import NotFittedError, ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["IsolationForest"]


def average_path_length(n_samples: np.ndarray | float) -> np.ndarray:
    """``c(n)``: expected path length of unsuccessful BST search."""
    n = np.asarray(n_samples, dtype=np.float64)
    result = np.zeros_like(n)
    big = n > 2
    result[big] = 2.0 * (np.log(n[big] - 1.0) + np.euler_gamma) - 2.0 * (
        n[big] - 1.0
    ) / n[big]
    result[n == 2] = 1.0
    return result


class _IsolationTree:
    """One isolation tree in flat-array form.

    Arrays indexed by node id: ``feature`` (-1 for leaves),
    ``threshold``, ``left``/``right`` child ids, and ``depth_adjust``
    (leaf depth plus ``c(leaf_size)`` correction).
    """

    def __init__(self, data: np.ndarray, max_depth: int, rng: np.random.Generator):
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.path_length: list[float] = []
        self._build(data, 0, max_depth, rng)

    def _new_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.path_length.append(0.0)
        return len(self.feature) - 1

    def _build(
        self,
        data: np.ndarray,
        depth: int,
        max_depth: int,
        rng: np.random.Generator,
    ) -> int:
        node = self._new_node()
        n_samples = data.shape[0]
        if depth >= max_depth or n_samples <= 1:
            correction = float(average_path_length(np.array([n_samples]))[0])
            self.path_length[node] = depth + correction
            return node
        spans = data.max(axis=0) - data.min(axis=0)
        candidates = np.flatnonzero(spans > 0)
        if candidates.size == 0:  # all duplicates: isolate as a leaf
            correction = float(average_path_length(np.array([n_samples]))[0])
            self.path_length[node] = depth + correction
            return node
        feature = int(rng.choice(candidates))
        low = data[:, feature].min()
        high = data[:, feature].max()
        threshold = float(rng.uniform(low, high))
        goes_left = data[:, feature] < threshold
        if not goes_left.any() or goes_left.all():
            # Degenerate draw (can happen with repeated values): leaf.
            correction = float(average_path_length(np.array([n_samples]))[0])
            self.path_length[node] = depth + correction
            return node
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = self._build(data[goes_left], depth + 1, max_depth, rng)
        self.right[node] = self._build(data[~goes_left], depth + 1, max_depth, rng)
        return node

    def finalize(self) -> None:
        """Freeze the tree into NumPy arrays for vectorized traversal."""
        self.feature_arr = np.array(self.feature, dtype=np.int64)
        self.threshold_arr = np.array(self.threshold, dtype=np.float64)
        self.left_arr = np.array(self.left, dtype=np.int64)
        self.right_arr = np.array(self.right, dtype=np.int64)
        self.path_arr = np.array(self.path_length, dtype=np.float64)

    def path_lengths(self, data: np.ndarray) -> np.ndarray:
        """Vectorized path length of every row in ``data``."""
        nodes = np.zeros(data.shape[0], dtype=np.int64)
        active = self.feature_arr[nodes] >= 0
        while active.any():
            idx = np.flatnonzero(active)
            current = nodes[idx]
            feats = self.feature_arr[current]
            go_left = data[idx, feats] < self.threshold_arr[current]
            nodes[idx[go_left]] = self.left_arr[current[go_left]]
            nodes[idx[~go_left]] = self.right_arr[current[~go_left]]
            active = self.feature_arr[nodes] >= 0
        return self.path_arr[nodes]


class IsolationForest:
    """Isolation Forest anomaly detector.

    Args:
        n_trees: Ensemble size (paper default 100).
        subsample_size: Per-tree sample size ``psi`` (paper default 256).
        contamination: Fraction of points to flag as outliers.
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        n_trees: int = 100,
        subsample_size: int = 256,
        contamination: float = 0.05,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ParameterError(f"n_trees must be >= 1, got {n_trees}")
        if subsample_size < 2:
            raise ParameterError(
                f"subsample_size must be >= 2, got {subsample_size}"
            )
        if not 0.0 < contamination <= 0.5:
            raise ParameterError(
                f"contamination must be in (0, 0.5], got {contamination}"
            )
        self.n_trees = int(n_trees)
        self.subsample_size = int(subsample_size)
        self.contamination = float(contamination)
        self.seed = seed
        self._trees: list[_IsolationTree] | None = None
        self._psi: int = subsample_size

    def fit(self, points: np.ndarray) -> "IsolationForest":
        """Grow the ensemble on ``points``."""
        array = validate_points(points)
        n_points = array.shape[0]
        rng = np.random.default_rng(self.seed)
        psi = min(self.subsample_size, n_points)
        max_depth = max(1, math.ceil(math.log2(max(psi, 2))))
        trees = []
        for _ in range(self.n_trees):
            sample = array[rng.choice(n_points, size=psi, replace=False)]
            tree = _IsolationTree(sample, max_depth, rng)
            tree.finalize()
            trees.append(tree)
        self._trees = trees
        self._psi = psi
        return self

    def score(self, points: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); higher = more anomalous."""
        if self._trees is None:
            raise NotFittedError("call fit() before score()")
        array = validate_points(points)
        depths = np.zeros(array.shape[0], dtype=np.float64)
        for tree in self._trees:
            depths += tree.path_lengths(array)
        mean_depth = depths / self.n_trees
        c_psi = float(average_path_length(np.array([self._psi]))[0])
        c_psi = max(c_psi, np.finfo(np.float64).tiny)
        return np.power(2.0, -mean_depth / c_psi)

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Fit, score, and flag the top-contamination fraction."""
        array = validate_points(points)
        n_points = array.shape[0]
        recorder = RunRecorder(
            engine="isolation_forest",
            params={
                "n_trees": self.n_trees,
                "contamination": self.contamination,
            },
            context={
                "algorithm": "isolation_forest",
                "n_trees": self.n_trees,
                "contamination": self.contamination,
            },
        )
        with recorder.activate():
            with recorder.span("fit"):
                self.fit(array)
            with recorder.span("score"):
                scores = self.score(array)
            with recorder.span("threshold"):
                n_outliers = max(
                    1, int(round(self.contamination * n_points))
                )
                threshold = np.partition(scores, n_points - n_outliers)[
                    n_points - n_outliers
                ]
        recorder.add_context(subsample_size=self._psi)
        record = recorder.finish(n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=scores >= threshold,
            scores=scores,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )
