"""Top-n kNN-distance outliers (Ramaswamy, Rastogi, Shim — SIGMOD 2000).

The paper cites this classic distance-based formulation among the
related work: rank points by the distance to their k-th nearest
neighbor and report the top n as outliers.  It complements the
density-based notions in this repository — a point deep inside a
*sparse but uniform* region gets a large k-distance (kNN outlier)
while having enough eps-neighbors to avoid being a DBSCOUT outlier,
and vice versa.

Exact, KD-tree backed; scores are the k-distances themselves.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.grid import validate_points
from repro.exceptions import ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["KNNOutlierDetector"]


class KNNOutlierDetector:
    """Rank by k-th-nearest-neighbor distance; flag the top n.

    Args:
        k: Neighbor rank (the point itself not counted).
        n_outliers: How many points to report; mutually exclusive with
            ``contamination``.
        contamination: Alternatively, the fraction of points to report.
    """

    name = "knn_outlier"

    def __init__(
        self,
        k: int = 5,
        n_outliers: int | None = None,
        contamination: float | None = None,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if (n_outliers is None) == (contamination is None):
            raise ParameterError(
                "provide exactly one of n_outliers or contamination"
            )
        if n_outliers is not None and n_outliers < 1:
            raise ParameterError(
                f"n_outliers must be >= 1, got {n_outliers}"
            )
        if contamination is not None and not 0.0 < contamination <= 0.5:
            raise ParameterError(
                f"contamination must be in (0, 0.5], got {contamination}"
            )
        self.k = int(k)
        self.n_outliers = n_outliers
        self.contamination = contamination

    def _resolve_n(self, n_points: int) -> int:
        if self.n_outliers is not None:
            if self.n_outliers > n_points:
                raise ParameterError(
                    f"n_outliers={self.n_outliers} exceeds the dataset "
                    f"size {n_points}"
                )
            return self.n_outliers
        return max(1, int(round(self.contamination * n_points)))

    def scores(self, points: np.ndarray) -> np.ndarray:
        """k-distance of every point (higher = more anomalous)."""
        array = validate_points(points)
        if array.shape[0] <= self.k:
            raise ParameterError(
                f"need more than k={self.k} points, got {array.shape[0]}"
            )
        tree = cKDTree(array)
        distances, _ = tree.query(array, k=self.k + 1)
        return distances[:, self.k]

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Flag the top-n points by k-distance."""
        array = validate_points(points)
        n_points = array.shape[0]
        recorder = RunRecorder(
            engine=self.name,
            params={"k": self.k},
            context={"algorithm": self.name, "k": self.k},
        )
        with recorder.activate():
            with recorder.span("score"):
                values = self.scores(array)
            with recorder.span("threshold"):
                n_flag = self._resolve_n(n_points)
                threshold = np.partition(values, n_points - n_flag)[
                    n_points - n_flag
                ]
        recorder.add_context(
            n_requested=n_flag, threshold=float(threshold)
        )
        record = recorder.finish(n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=values >= threshold,
            scores=values,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )
