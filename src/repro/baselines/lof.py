"""Local Outlier Factor (Breunig et al., SIGMOD 2000), from scratch.

Exact LOF with scipy cKDTree nearest-neighbor queries:

* ``k_dist(p)`` — distance to the k-th nearest neighbor (ties included
  in the neighborhood, as in the original definition);
* ``reach_dist_k(p, o) = max(k_dist(o), d(p, o))``;
* ``lrd(p) = 1 / mean(reach_dist_k(p, o) for o in N_k(p))``;
* ``LOF(p) = mean(lrd(o) / lrd(p) for o in N_k(p))``.

Outliers are the top ``contamination`` fraction by LOF score, matching
how the paper configures scikit-learn's LOF with a known contamination
factor ``nu`` for Table III.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.grid import validate_points
from repro.exceptions import ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["LocalOutlierFactor", "lof_scores"]


def _validate_k(k: int, n_points: int) -> int:
    if not isinstance(k, (int, np.integer)) or isinstance(k, bool) or k < 1:
        raise ParameterError(f"k must be a positive integer, got {k!r}")
    if k >= n_points:
        raise ParameterError(
            f"k={k} must be smaller than the number of points ({n_points})"
        )
    return int(k)


def lof_scores(points: np.ndarray, k: int) -> np.ndarray:
    """Exact LOF scores (higher = more anomalous, ~1 for inliers)."""
    array = validate_points(points)
    n_points = array.shape[0]
    k = _validate_k(k, n_points)
    tree = cKDTree(array)
    # Column 0 is the point itself (distance 0); columns 1..k are the
    # k nearest true neighbors.
    distances, indices = tree.query(array, k=k + 1)
    neighbor_dists = distances[:, 1:]
    neighbor_idx = indices[:, 1:]
    k_dist = neighbor_dists[:, -1]
    # reach_dist(p, o) = max(k_dist(o), d(p, o)) for each neighbor o.
    reach = np.maximum(k_dist[neighbor_idx], neighbor_dists)
    mean_reach = reach.mean(axis=1)
    # Duplicated points can give a zero mean reachability; floor it so
    # their density is "very high" yet LOF ratios against neighbors of
    # ordinary density still stay finite.
    mean_reach = np.maximum(mean_reach, np.finfo(np.float64).eps)
    lrd = 1.0 / mean_reach
    return lrd[neighbor_idx].mean(axis=1) / lrd


class LocalOutlierFactor:
    """LOF-based outlier detector with a contamination cutoff.

    Args:
        k: Neighborhood size (the paper's ``K``).
        contamination: Expected outlier fraction ``nu`` in (0, 0.5];
            the top-``nu`` scored points are flagged.
    """

    def __init__(self, k: int = 20, contamination: float = 0.05) -> None:
        if not 0.0 < contamination <= 0.5:
            raise ParameterError(
                f"contamination must be in (0, 0.5], got {contamination}"
            )
        self.k = k
        self.contamination = float(contamination)

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Score all points and flag the top-contamination fraction."""
        array = validate_points(points)
        n_points = array.shape[0]
        recorder = RunRecorder(
            engine="lof",
            params={"k": self.k, "contamination": self.contamination},
            context={
                "algorithm": "lof",
                "k": self.k,
                "contamination": self.contamination,
            },
        )
        with recorder.activate():
            with recorder.span("score"):
                scores = lof_scores(array, self.k)
            with recorder.span("threshold"):
                n_outliers = max(
                    1, int(round(self.contamination * n_points))
                )
                threshold = np.partition(scores, n_points - n_outliers)[
                    n_points - n_outliers
                ]
        outlier_mask = scores >= threshold
        recorder.add_context(threshold=float(threshold))
        record = recorder.finish(n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=outlier_mask,
            scores=scores,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )

    def __repr__(self) -> str:
        return (
            f"LocalOutlierFactor(k={self.k}, "
            f"contamination={self.contamination})"
        )
