"""One-Class SVM via random Fourier features + SGD, from scratch.

scikit-learn is unavailable offline, so the kernel One-Class SVM of
Schoelkopf et al. (NIPS 1999) is approximated the same way sklearn's
``SGDOneClassSVM`` does: map inputs through a random Fourier feature
approximation of the RBF kernel (Rahimi & Recht, NIPS 2007), then solve
the *linear* one-class objective with stochastic gradient descent::

    min_{w, rho}  0.5 ||w||^2 + (1 / (nu * n)) * sum_i max(0, rho - <w, phi(x_i)>) - rho

The decision function is ``<w, phi(x)> - rho``; negative values are
outliers.  As in the paper's Table III setup, the final cutoff flags
exactly the ``nu`` fraction with the lowest decision values, so the
contamination factor is honored exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import validate_points
from repro.exceptions import NotFittedError, ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["OneClassSVM"]


class OneClassSVM:
    """Approximate RBF One-Class SVM.

    Args:
        nu: Expected outlier fraction in (0, 0.5]; also the SGD
            regularization trade-off.
        gamma: RBF bandwidth; ``"scale"`` uses ``1 / (d * var(X))``
            like scikit-learn.
        n_features: Number of random Fourier features.
        n_epochs: SGD passes over the data.
        learning_rate: Initial SGD step size (decays as 1/sqrt(t)).
        seed: RNG seed for the feature map and shuffling.
    """

    def __init__(
        self,
        nu: float = 0.05,
        gamma: float | str = "scale",
        n_features: int = 400,
        n_epochs: int = 30,
        learning_rate: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 < nu <= 0.5:
            raise ParameterError(f"nu must be in (0, 0.5], got {nu}")
        if isinstance(gamma, str):
            if gamma != "scale":
                raise ParameterError(
                    f"gamma must be positive or 'scale', got {gamma!r}"
                )
        elif gamma <= 0:
            raise ParameterError(f"gamma must be positive, got {gamma}")
        if n_features < 1:
            raise ParameterError(f"n_features must be >= 1, got {n_features}")
        self.nu = float(nu)
        self.gamma = gamma
        self.n_features = int(n_features)
        self.n_epochs = int(n_epochs)
        self.learning_rate = float(learning_rate)
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._rho: float = 0.0
        self._omega: np.ndarray | None = None
        self._phase: np.ndarray | None = None

    def _resolve_gamma(self, array: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = float(array.var())
            if variance <= 0:
                variance = 1.0
            return 1.0 / (array.shape[1] * variance)
        return float(self.gamma)

    def _feature_map(self, array: np.ndarray) -> np.ndarray:
        """Random Fourier features: sqrt(2/D) * cos(omega x + b)."""
        if self._omega is None or self._phase is None:
            raise NotFittedError("feature map requested before fit()")
        projected = array @ self._omega + self._phase
        return np.sqrt(2.0 / self.n_features) * np.cos(projected)

    def fit(self, points: np.ndarray) -> "OneClassSVM":
        """Fit the linear one-class SVM in feature space with SGD."""
        array = validate_points(points)
        n_points = array.shape[0]
        if n_points < 2:
            raise ParameterError("OneClassSVM needs at least 2 points")
        rng = np.random.default_rng(self.seed)
        gamma = self._resolve_gamma(array)
        self._omega = rng.normal(
            0.0, np.sqrt(2.0 * gamma), size=(array.shape[1], self.n_features)
        )
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=self.n_features)
        features = self._feature_map(array)

        weights = np.zeros(self.n_features)
        rho = 0.0
        inv_nu_n = 1.0 / (self.nu * n_points)
        step_count = 0
        for _epoch in range(self.n_epochs):
            order = rng.permutation(n_points)
            for index in order:
                step_count += 1
                lr = self.learning_rate / np.sqrt(step_count)
                x = features[index]
                margin = weights @ x - rho
                # Subgradients of the one-class objective.
                grad_w = weights.copy()
                grad_rho = -1.0
                if margin < 0:
                    grad_w -= inv_nu_n * n_points * x
                    grad_rho += inv_nu_n * n_points
                weights -= lr * grad_w
                rho -= lr * grad_rho
        self._weights = weights
        self._rho = float(rho)
        return self

    def decision_function(self, points: np.ndarray) -> np.ndarray:
        """Signed distance to the separating hyperplane (neg = outlier)."""
        if self._weights is None:
            raise NotFittedError("call fit() before decision_function()")
        array = validate_points(points)
        return self._feature_map(array) @ self._weights - self._rho

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Fit and flag the lowest-``nu`` fraction of decision values."""
        array = validate_points(points)
        n_points = array.shape[0]
        recorder = RunRecorder(
            engine="ocsvm",
            params={"nu": self.nu},
            context={
                "algorithm": "ocsvm",
                "nu": self.nu,
                "n_features": self.n_features,
            },
        )
        with recorder.activate():
            with recorder.span("fit"):
                self.fit(array)
            with recorder.span("score"):
                decision = self.decision_function(array)
            with recorder.span("threshold"):
                n_outliers = max(1, int(round(self.nu * n_points)))
                threshold = np.partition(decision, n_outliers - 1)[
                    n_outliers - 1
                ]
        record = recorder.finish(n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=decision <= threshold,
            scores=-decision,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )
