"""RP-DBSCAN-style approximated parallel DBSCAN (Song & Lee, SIGMOD 2018).

A from-scratch, simplified reproduction of the paper's scalable
competitor, preserving the three traits DBSCOUT is evaluated against:

1. **Random partitioning + cell dictionaries.**  Points are randomly
   (not spatially) partitioned; every partition summarizes its points
   into a two-level dictionary: epsilon-cell -> sub-cell -> count,
   where sub-cells have diagonal ``rho * eps``.  Local dictionaries are
   merged and broadcast, like RP-DBSCAN's pseudo-random broadcast.

2. **rho-approximate neighborhoods.**  Core tests count whole sub-cells
   instead of points: a sub-cell contributes iff it is *guaranteed*
   inside the query ball (max box distance ``<= eps``).  This
   conservative undercount means approximate core points are a subset
   of the exact ones, so the extracted outliers form a **superset** of
   the exact outliers — the false-positive behaviour of Tables IV/V.
   Conversely, border coverage is tested liberally (min box distance
   ``<= eps`` to a core sub-cell), which can absorb a true outlier into
   a cluster — the paper's rare false negatives.  Both errors are
   bounded by the sub-cell diagonal ``rho * eps``.

3. **Cluster construction.**  Unlike DBSCOUT, a DBSCAN-style algorithm
   must build the clusters: every partition runs a local union-find
   over the core cells its points touch (edges decided at sub-cell
   granularity), and the driver merges the per-partition fragments.
   The duplicated fragment work grows with the partition count,
   reproducing the Fig. 13 degradation.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.grid import cell_side_length, validate_points
from repro.core.neighbors import NeighborStencil
from repro.core.validation import validate_parameters
from repro.core.vectorized import build_cell_adjacency
from repro.exceptions import ParameterError
from repro.sparklite import Context
from repro.types import DetectionResult, TimingBreakdown

__all__ = ["RPDBSCAN", "DisjointSet"]

Cell = tuple[int, ...]


class DisjointSet:
    """Union-find with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._size: dict = {}

    def find(self, item) -> object:
        """Return the representative of ``item``'s set (inserting it)."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def groups(self) -> dict:
        """Mapping root -> list of members."""
        out: dict = defaultdict(list)
        for item in self._parent:
            out[self.find(item)].append(item)
        return dict(out)

    def __len__(self) -> int:
        return len(self._parent)


class _CellIndex:
    """Merged cell dictionary in id-indexed array form.

    Cells get integer ids; neighbor relations are a CSR adjacency; the
    sub-cell summaries of cell ``i`` are ``sub_coords[i]`` (``(s, d)``)
    with point counts ``sub_counts[i]``.
    """

    def __init__(
        self,
        cells: np.ndarray,
        stencil: NeighborStencil,
        sub_coords: list[np.ndarray],
        sub_counts: list[np.ndarray],
    ) -> None:
        self.cells = cells
        self.sub_coords = sub_coords
        self.sub_counts = sub_counts
        self.totals = np.array(
            [int(counts.sum()) for counts in sub_counts], dtype=np.int64
        )
        self._targets, self._starts = build_cell_adjacency(cells, stencil)

    def neighbors(self, cell_id: int) -> np.ndarray:
        """Ids of the non-empty neighbor cells (self included)."""
        return self._targets[
            self._starts[cell_id] : self._starts[cell_id + 1]
        ]

    def __len__(self) -> int:
        return int(self.cells.shape[0])


@dataclass
class RPDBSCANResult:
    """Clustering + outlier output of RP-DBSCAN."""

    labels: np.ndarray
    core_mask: np.ndarray
    outlier_mask: np.ndarray
    n_clusters: int
    timings: TimingBreakdown | None = None
    stats: Mapping[str, object] = field(default_factory=dict)


class RPDBSCAN:
    """Approximated parallel DBSCAN used as DBSCOUT's main competitor.

    Args:
        eps: Neighborhood radius.
        min_pts: Core-point density threshold.
        rho: Approximation granularity (sub-cell diagonal is
            ``rho * eps``); the paper fixes ``rho = 0.01``.
        num_partitions: Random data partitions (the Fig. 13 x-axis).
        max_workers: Executor threads for the SparkLite context.
        seed: RNG seed for the random partitioning.
        context: Optional externally managed SparkLite context.
    """

    name = "rp_dbscan"

    def __init__(
        self,
        eps: float,
        min_pts: int,
        rho: float = 0.01,
        num_partitions: int = 8,
        max_workers: int = 1,
        seed: int = 0,
        context: Context | None = None,
    ) -> None:
        self.eps, self.min_pts = validate_parameters(eps, min_pts)
        if not 0.0 < rho <= 1.0:
            raise ParameterError(f"rho must be in (0, 1], got {rho}")
        if num_partitions < 1:
            raise ParameterError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.rho = float(rho)
        self.num_partitions = int(num_partitions)
        self.seed = seed
        self.context = context or Context(
            default_parallelism=num_partitions, max_workers=max_workers
        )

    # ------------------------------------------------------------------

    def fit(self, points: np.ndarray) -> RPDBSCANResult:
        """Run the three RP-DBSCAN phases and return clusters + outliers."""
        array = validate_points(points)
        n_points = array.shape[0]
        if n_points == 0:
            empty = np.zeros(0, dtype=bool)
            return RPDBSCANResult(
                labels=np.zeros(0, dtype=np.int64),
                core_mask=empty,
                outlier_mask=empty.copy(),
                n_clusters=0,
            )
        n_dims = array.shape[1]
        cell_side = cell_side_length(self.eps, n_dims)
        sub_side = cell_side * self.rho
        stencil = NeighborStencil(n_dims)
        timings: dict[str, float] = {}

        # Phase 1: random partitioning + merged cell dictionary.
        start = time.perf_counter()
        partitions = self._random_partitions(n_points)
        cell_ids, index = self._build_dictionary(
            array, cell_side, sub_side, stencil, partitions
        )
        timings["partition_dictionary"] = time.perf_counter() - start

        # Phase 2: approximate core marking (per partition).
        start = time.perf_counter()
        core_mask = self._mark_cores(
            array, cell_ids, sub_side, index, partitions
        )
        timings["core_marking"] = time.perf_counter() - start

        # Core sub-cell index: cell id -> array of sub-cells with cores.
        start = time.perf_counter()
        core_subcells = self._core_subcell_index(
            array, cell_ids, core_mask, sub_side
        )
        # Phase 3a: coverage (border/noise decision).
        covered_by = self._cover_points(
            array, cell_ids, core_mask, sub_side, index, core_subcells
        )
        timings["coverage"] = time.perf_counter() - start

        # Phase 3b: per-partition local clustering + driver merge.
        start = time.perf_counter()
        labels, n_clusters = self._build_clusters(
            cell_ids, core_mask, covered_by, sub_side, index,
            core_subcells, partitions,
        )
        timings["cluster_merge"] = time.perf_counter() - start

        outlier_mask = labels < 0
        return RPDBSCANResult(
            labels=labels,
            core_mask=core_mask,
            outlier_mask=outlier_mask,
            n_clusters=n_clusters,
            timings=TimingBreakdown(timings),
            stats={
                "algorithm": self.name,
                "rho": self.rho,
                "num_partitions": self.num_partitions,
                "n_cells": len(index),
                **self.context.metrics.snapshot(),
            },
        )

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Detector facade returning outliers (noise points)."""
        result = self.fit(points)
        return DetectionResult(
            n_points=result.labels.shape[0],
            outlier_mask=result.outlier_mask,
            core_mask=result.core_mask,
            timings=result.timings,
            stats={**result.stats, "n_clusters": result.n_clusters},
        )

    # ------------------------------------------------------------------
    # Phase 1 helpers
    # ------------------------------------------------------------------

    def _random_partitions(self, n_points: int) -> list[np.ndarray]:
        """Random (non-spatial) split of point indices into partitions."""
        rng = np.random.default_rng(self.seed)
        permuted = rng.permutation(n_points)
        return list(np.array_split(permuted, self.num_partitions))

    def _build_dictionary(
        self,
        array: np.ndarray,
        cell_side: float,
        sub_side: float,
        stencil: NeighborStencil,
        partitions: list[np.ndarray],
    ) -> tuple[np.ndarray, _CellIndex]:
        """Per-partition local dictionaries, merged into a cell index.

        Returns the per-point cell ids and the merged index.  The
        partition-level pass mirrors the engine's dataflow (each
        partition summarizes its own points); the merge then assigns
        global ids via a vectorized unique over cell coordinates.
        """

        def local_summary(indices: np.ndarray) -> np.ndarray:
            # Emit each point's (cell, sub-cell) pair; the driver-side
            # merge deduplicates.  Kept as arrays for speed.
            local = array[indices]
            return np.hstack(
                [
                    np.floor(local / cell_side).astype(np.int64),
                    np.floor(local / sub_side).astype(np.int64),
                ]
            )

        rdd = self.context.parallelize(partitions, len(partitions))
        summaries = rdd.map(local_summary).collect()
        stacked = np.vstack(summaries)
        n_dims = array.shape[1]
        cell_rows = stacked[:, :n_dims]
        sub_rows = stacked[:, n_dims:]

        # Global ids per cell (order of first appearance is irrelevant).
        cells, inverse = np.unique(cell_rows, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        # The stacked order is partition-permuted; recover per-point ids
        # by inverting the permutation.
        permutation = np.concatenate(partitions)
        cell_ids = np.empty(array.shape[0], dtype=np.int64)
        cell_ids[permutation] = inverse

        # Sub-cell summaries per cell id.
        sub_coords: list[np.ndarray] = []
        sub_counts: list[np.ndarray] = []
        order = np.argsort(inverse, kind="stable")
        sorted_cells = inverse[order]
        boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            subs, counts = np.unique(sub_rows[group], axis=0, return_counts=True)
            sub_coords.append(subs)
            sub_counts.append(counts)
        index = _CellIndex(cells, stencil, sub_coords, sub_counts)
        return cell_ids, index

    # ------------------------------------------------------------------
    # Phase 2 helpers
    # ------------------------------------------------------------------

    def _mark_cores(
        self,
        array: np.ndarray,
        cell_ids: np.ndarray,
        sub_side: float,
        index: _CellIndex,
        partitions: list[np.ndarray],
    ) -> np.ndarray:
        """Approximate core test, run partition-by-partition."""
        eps = self.eps
        min_pts = self.min_pts
        index_broadcast = self.context.broadcast(index)

        def mark_partition(indices: np.ndarray) -> np.ndarray:
            cell_index = index_broadcast.value
            core_hits: list[np.ndarray] = []
            local_cells = cell_ids[indices]
            order = np.argsort(local_cells, kind="stable")
            sorted_cells = local_cells[order]
            boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
            for group in np.split(order, boundaries):
                cell_id = int(local_cells[group[0]])
                members = indices[group]
                if cell_index.totals[cell_id] >= min_pts:
                    core_hits.append(members)  # dense cell: exact
                    continue
                neighbor_ids = cell_index.neighbors(cell_id)
                if cell_index.totals[neighbor_ids].sum() < min_pts:
                    continue  # cannot possibly be core
                counts = np.zeros(len(members), dtype=np.int64)
                member_points = array[members]
                for neighbor_id in neighbor_ids:
                    guaranteed = _max_box_dist_le(
                        member_points,
                        cell_index.sub_coords[neighbor_id],
                        sub_side,
                        eps,
                    )
                    counts += guaranteed @ cell_index.sub_counts[neighbor_id]
                core_hits.append(members[counts >= min_pts])
            if not core_hits:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(core_hits)

        rdd = self.context.parallelize(partitions, len(partitions))
        core_mask = np.zeros(array.shape[0], dtype=bool)
        for hits in rdd.map(mark_partition).collect():
            core_mask[hits] = True
        return core_mask

    # ------------------------------------------------------------------
    # Phase 3 helpers
    # ------------------------------------------------------------------

    def _core_subcell_index(
        self,
        array: np.ndarray,
        cell_ids: np.ndarray,
        core_mask: np.ndarray,
        sub_side: float,
    ) -> dict[int, np.ndarray]:
        """cell id -> (s, d) array of sub-cells containing core points."""
        core_idx = np.flatnonzero(core_mask)
        result: dict[int, np.ndarray] = {}
        if core_idx.size == 0:
            return result
        core_cells = cell_ids[core_idx]
        subs = np.floor(array[core_idx] / sub_side).astype(np.int64)
        order = np.argsort(core_cells, kind="stable")
        sorted_cells = core_cells[order]
        boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
        for group in np.split(order, boundaries):
            cell_id = int(core_cells[group[0]])
            result[cell_id] = np.unique(subs[group], axis=0)
        return result

    def _cover_points(
        self,
        array: np.ndarray,
        cell_ids: np.ndarray,
        core_mask: np.ndarray,
        sub_side: float,
        index: _CellIndex,
        core_subcells: dict[int, np.ndarray],
    ) -> dict[int, int]:
        """For each covered non-core point, a covering core cell id.

        Coverage is liberal (min box distance <= eps to a core
        sub-cell): the rare false negatives of Tables IV/V come from
        here.
        """
        eps = self.eps
        covered: dict[int, int] = {}
        non_core = np.flatnonzero(~core_mask)
        if non_core.size == 0:
            return covered
        local_cells = cell_ids[non_core]
        order = np.argsort(local_cells, kind="stable")
        sorted_cells = local_cells[order]
        boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
        for group in np.split(order, boundaries):
            cell_id = int(local_cells[group[0]])
            members = non_core[group]
            member_points = array[members]
            undecided = np.ones(len(members), dtype=bool)
            for neighbor_id in index.neighbors(cell_id):
                subs = core_subcells.get(int(neighbor_id))
                if subs is None or not undecided.any():
                    continue
                reach = _min_box_dist_le(
                    member_points[undecided], subs, sub_side, eps
                )
                hit_rows = reach.any(axis=1)
                if not hit_rows.any():
                    continue
                undecided_idx = np.flatnonzero(undecided)
                for row in np.flatnonzero(hit_rows):
                    covered[int(members[undecided_idx[row]])] = int(neighbor_id)
                undecided[undecided_idx[hit_rows]] = False
        return covered

    def _build_clusters(
        self,
        cell_ids: np.ndarray,
        core_mask: np.ndarray,
        covered_by: dict[int, int],
        sub_side: float,
        index: _CellIndex,
        core_subcells: dict[int, np.ndarray],
        partitions: list[np.ndarray],
    ) -> tuple[np.ndarray, int]:
        """Local per-partition cluster fragments merged on the driver.

        The union-find runs over *core cells* (any two core points of
        one cell are within eps by construction); whether two
        neighboring core cells connect is decided from the bounding
        boxes of their core sub-cells — a slightly liberal stand-in
        for RP-DBSCAN's pairwise sub-cell merge test that only affects
        cluster granularity, never the outlier set.  Every partition
        re-derives the edges for the cells its own points touch — this
        duplicated fragment work is what grows with the partition
        count (Fig. 13).
        """
        eps = self.eps
        eps_sq = eps * eps
        n_cells = len(index)
        n_dims = index.cells.shape[1]
        # Bounding box of each cell's core sub-cells (inf = no cores).
        core_lo = np.full((n_cells, n_dims), np.inf)
        core_hi = np.full((n_cells, n_dims), -np.inf)
        for cell_id, subs in core_subcells.items():
            core_lo[cell_id] = subs.min(axis=0) * sub_side
            core_hi[cell_id] = subs.max(axis=0) * sub_side + sub_side
        boxes_broadcast = self.context.broadcast((core_lo, core_hi))

        def local_edges(indices: np.ndarray) -> list[tuple[int, int]]:
            lo, hi = boxes_broadcast.value
            local_core = indices[core_mask[indices]]
            if local_core.size == 0:
                return []
            seen = np.unique(cell_ids[local_core])
            edges: list[tuple[int, int]] = []
            for cell_id in seen:
                cell_id = int(cell_id)
                neighbor_ids = index.neighbors(cell_id)
                neighbor_ids = neighbor_ids[neighbor_ids > cell_id]
                neighbor_ids = neighbor_ids[
                    np.isfinite(lo[neighbor_ids, 0])
                ]
                if neighbor_ids.size == 0:
                    continue
                gap = np.maximum(
                    np.maximum(
                        lo[neighbor_ids] - hi[cell_id],
                        lo[cell_id] - hi[neighbor_ids],
                    ),
                    0.0,
                )
                close = np.einsum("nd,nd->n", gap, gap) <= eps_sq
                edges.extend(
                    (cell_id, int(nid)) for nid in neighbor_ids[close]
                )
            return edges

        rdd = self.context.parallelize(partitions, len(partitions))
        forest = DisjointSet()
        for edges in rdd.map(local_edges).collect():
            for a, b in edges:
                forest.union(a, b)
        # Every core cell belongs to some cluster even if edge-less.
        for cell_id in core_subcells:
            forest.find(cell_id)
        root_to_cluster: dict[object, int] = {}
        labels = np.full(cell_ids.shape[0], -1, dtype=np.int64)
        for point_index in np.flatnonzero(core_mask):
            root = forest.find(int(cell_ids[point_index]))
            cluster = root_to_cluster.setdefault(root, len(root_to_cluster))
            labels[point_index] = cluster
        for point_index, covering_cell in covered_by.items():
            root = forest.find(covering_cell)
            cluster = root_to_cluster.setdefault(root, len(root_to_cluster))
            labels[point_index] = cluster
        return labels, len(root_to_cluster)


# ----------------------------------------------------------------------
# Box-distance predicates (vectorized over sub-cell arrays)
# ----------------------------------------------------------------------


def _min_box_dist_le(
    points: np.ndarray, sub_coords: np.ndarray, sub_side: float, eps: float
) -> np.ndarray:
    """Boolean (n_points, n_subs): min distance point-to-box <= eps."""
    lo = sub_coords * sub_side  # (s, d)
    hi = lo + sub_side
    below = lo[None, :, :] - points[:, None, :]
    above = points[:, None, :] - hi[None, :, :]
    gap = np.maximum(np.maximum(below, above), 0.0)
    return np.einsum("psd,psd->ps", gap, gap) <= eps * eps


def _max_box_dist_le(
    points: np.ndarray, sub_coords: np.ndarray, sub_side: float, eps: float
) -> np.ndarray:
    """Boolean (n_points, n_subs): max distance point-to-box <= eps."""
    lo = sub_coords * sub_side
    hi = lo + sub_side
    far = np.maximum(
        np.abs(points[:, None, :] - lo[None, :, :]),
        np.abs(points[:, None, :] - hi[None, :, :]),
    )
    return np.einsum("psd,psd->ps", far, far) <= eps * eps


def _box_box_dist_le(
    subs_a: np.ndarray, subs_b: np.ndarray, sub_side: float, eps: float
) -> np.ndarray:
    """Boolean (a, b): min distance between two sub-cell boxes <= eps."""
    lo_a = subs_a * sub_side
    hi_a = lo_a + sub_side
    lo_b = subs_b * sub_side
    hi_b = lo_b + sub_side
    below = lo_b[None, :, :] - hi_a[:, None, :]
    above = lo_a[:, None, :] - hi_b[None, :, :]
    gap = np.maximum(np.maximum(below, above), 0.0)
    return np.einsum("abd,abd->ab", gap, gap) <= eps * eps


def subcell_side(eps: float, rho: float, n_dims: int) -> float:
    """Side of a sub-cell with diagonal ``rho * eps``."""
    return rho * eps / math.sqrt(n_dims)
