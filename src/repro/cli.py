"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``detect`` — run DBSCOUT on a CSV/NPY point file and print (or save)
  the outlier indices.
* ``estimate-eps`` — print the k-distance elbow eps for a dataset.
* ``generate`` — write one of the built-in synthetic datasets to disk.

* ``fit`` — fit a detector and save it as a servable artifact.
* ``serve`` — load artifacts and answer queries over TCP; with
  ``--live`` also host a live streaming detector whose snapshots are
  hot-swapped into the registry as data arrives.
* ``query`` — classify points against a running server.
* ``stream`` — feed a file or stdin into a served live detector.
* ``top`` — live telemetry dashboard for a running server or driver.

Examples:
    python -m repro detect points.csv --eps 0.5 --min-pts 10
    python -m repro detect points.npy --min-pts 10 --auto-eps
    python -m repro estimate-eps points.csv --min-pts 10
    python -m repro generate osm --n 100000 --output osm.npy
    python -m repro fit points.npy --eps 0.5 --min-pts 10 \\
        --save-artifact geo.npz --name geo
    python -m repro serve geo.npz --port 7227 --metrics-port 9090
    python -m repro serve --live gps --live-eps 0.5 --live-min-pts 10 \\
        --window 100000 --refresh-points 4096 --port 7227
    python -m repro query queries.csv --detector geo --port 7227
    python -m repro stream fixes.csv --connect 127.0.0.1:7227 \\
        --stream gps --batch-size 512
    python -m repro top --connect 127.0.0.1:7227
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import DBSCOUT, __version__, estimate_eps
from repro.datasets import (
    make_blobs,
    make_circles,
    make_geolife_like,
    make_moons,
    make_openstreetmap_like,
)
from repro.datasets.io import load_points, save_outliers, save_points
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]

GENERATORS = {
    "blobs": lambda n, seed: make_blobs(
        n_inliers=max(n - n // 100, 1), n_outliers=n // 100, seed=seed
    ).points,
    "circles": lambda n, seed: make_circles(
        n_inliers=max(n - n // 100, 1), n_outliers=n // 100, seed=seed
    ).points,
    "moons": lambda n, seed: make_moons(
        n_inliers=max(n - n // 100, 1), n_outliers=n // 100, seed=seed
    ).points,
    "geolife": lambda n, seed: make_geolife_like(n, seed=seed),
    "osm": lambda n, seed: make_openstreetmap_like(n, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DBSCOUT: scalable exact density-based outlier detection",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    detect = commands.add_parser(
        "detect", help="detect outliers in a CSV/NPY point file"
    )
    detect.add_argument("input", help="points file (.csv or .npy)")
    detect.add_argument("--eps", type=float, help="neighborhood radius")
    detect.add_argument(
        "--min-pts", type=int, required=True, help="density threshold"
    )
    detect.add_argument(
        "--auto-eps",
        action="store_true",
        help="estimate eps with the k-distance elbow (ignores --eps)",
    )
    detect.add_argument(
        "--engine",
        choices=("vectorized", "distributed"),
        default="vectorized",
    )
    detect.add_argument(
        "--num-partitions",
        type=int,
        default=8,
        help="partitions for the distributed engine",
    )
    detect.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker processes for the vectorized engine "
        "(1 = serial, -1 = all cores; results are identical)",
    )
    detect.add_argument(
        "--kernel",
        choices=("auto", "numpy", "c"),
        default="auto",
        help="distance-kernel tier (auto picks the compiled C kernel "
        "when a compiler is available; labels are identical)",
    )
    detect.add_argument(
        "--pair-budget",
        type=int,
        metavar="PAIRS",
        help="kernel batch size in point pairs for the vectorized "
        "engine (bounds peak memory; labels are identical)",
    )
    detect.add_argument(
        "--cell-planner",
        choices=("auto", "stencil", "tree"),
        default="auto",
        help="neighbor-cell adjacency builder for the vectorized "
        "engine (auto uses the grid tree in high dimensions)",
    )
    detect.add_argument(
        "--quality",
        choices=("exact", "balanced", "fast"),
        default="exact",
        help="quality preset: exact (default) or the approximate tier "
        "(never misses an exact outlier; self-reports approx.* "
        "precision/recall stats; vectorized engine only)",
    )
    detect.add_argument(
        "--sample-fraction",
        type=float,
        metavar="F",
        help="override the approximate preset's core-sample fraction "
        "in (0, 1] (rejected with --quality exact)",
    )
    detect.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the approximate tier (recorded in the run "
        "signature; exact runs are deterministic regardless)",
    )
    detect.add_argument(
        "--output", help="write outlier indices here instead of stdout"
    )
    detect.add_argument(
        "--stats", action="store_true", help="print phase timings and stats"
    )
    detect.add_argument(
        "--trace",
        action="store_true",
        help="enable fine-grained span tracing and print the span tree",
    )
    detect.add_argument(
        "--profile",
        action="store_true",
        help="with --trace, also track per-span memory (tracemalloc)",
    )
    detect.add_argument(
        "--record",
        metavar="PATH",
        help="append the structured run record to this JSONL file",
    )

    estimate = commands.add_parser(
        "estimate-eps", help="print the k-distance elbow eps"
    )
    estimate.add_argument("input", help="points file (.csv or .npy)")
    estimate.add_argument("--min-pts", type=int, required=True)

    generate = commands.add_parser(
        "generate", help="write a built-in synthetic dataset"
    )
    generate.add_argument("dataset", choices=sorted(GENERATORS))
    generate.add_argument("--n", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)

    fit = commands.add_parser(
        "fit",
        help="fit a detector and save it as a servable artifact",
    )
    fit.add_argument("input", help="points file (.csv or .npy)")
    fit.add_argument("--eps", type=float, help="neighborhood radius")
    fit.add_argument(
        "--min-pts", type=int, required=True, help="density threshold"
    )
    fit.add_argument(
        "--auto-eps",
        action="store_true",
        help="estimate eps with the k-distance elbow (ignores --eps)",
    )
    fit.add_argument(
        "--engine",
        choices=("vectorized", "distributed"),
        default="vectorized",
    )
    fit.add_argument(
        "--kernel",
        choices=("auto", "numpy", "c"),
        default="auto",
        help="distance-kernel tier (labels are identical)",
    )
    fit.add_argument(
        "--quality",
        choices=("exact", "balanced", "fast"),
        default="exact",
        help="quality preset for the fit (the artifact records the "
        "quality config; vectorized engine only)",
    )
    fit.add_argument(
        "--sample-fraction",
        type=float,
        metavar="F",
        help="override the approximate preset's core-sample fraction "
        "in (0, 1] (rejected with --quality exact)",
    )
    fit.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the approximate tier",
    )
    fit.add_argument(
        "--save-artifact",
        required=True,
        metavar="PATH",
        help="write the fitted detector artifact (.npz) here",
    )
    fit.add_argument(
        "--name",
        help="detector name stored in the artifact "
        "(defaults to the artifact file stem)",
    )

    serve = commands.add_parser(
        "serve", help="serve detector artifacts over TCP (JSON lines)"
    )
    serve.add_argument(
        "artifacts",
        nargs="*",
        metavar="ARTIFACT",
        help="artifact files (.npz) to load and register",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7227)
    serve.add_argument(
        "--max-batch-rows",
        type=int,
        default=65536,
        help="largest coalesced micro-batch, in points",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="pending requests before the service sheds load",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve GET /metrics (Prometheus text) and "
        "GET /telemetry (JSON) over HTTP on this port",
    )
    serve.add_argument(
        "--live",
        metavar="NAME",
        help="also host a live streaming detector under this name "
        "(enables the ingest/evict/swap_status ops)",
    )
    serve.add_argument(
        "--live-eps",
        type=float,
        metavar="EPS",
        help="neighborhood radius for the live detector",
    )
    serve.add_argument(
        "--live-min-pts",
        type=int,
        metavar="N",
        help="density threshold for the live detector",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="sliding count window for the live detector "
        "(omit to keep every ingested point)",
    )
    serve.add_argument(
        "--refresh-points",
        type=int,
        default=1024,
        metavar="N",
        help="hot-swap a fresh snapshot every N ingested points",
    )
    serve.add_argument(
        "--refresh-s",
        type=float,
        default=None,
        metavar="T",
        help="also hot-swap when the served snapshot is older than "
        "T seconds",
    )

    query = commands.add_parser(
        "query", help="classify points against a running server"
    )
    query.add_argument("input", help="points file (.csv or .npy)")
    query.add_argument(
        "--detector", required=True, help="registered detector name"
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7227)
    query.add_argument(
        "--timeout",
        type=float,
        help="server-side deadline in seconds for this query",
    )
    query.add_argument(
        "--output", help="write outlier indices here instead of stdout"
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="also print the server's serve.* stats snapshot",
    )

    stream = commands.add_parser(
        "stream",
        help="feed a file or stdin into a served live detector",
    )
    stream.add_argument(
        "input",
        nargs="?",
        default="-",
        help="points file (.csv or .npy), or '-' to read CSV rows "
        "from stdin (default)",
    )
    stream.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of a running 'repro serve' with --live",
    )
    stream.add_argument(
        "--stream",
        default="live",
        dest="stream_name",
        metavar="NAME",
        help="attached stream name on the server",
    )
    stream.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="points per ingest request",
    )
    stream.add_argument(
        "--status",
        action="store_true",
        help="print the server's swap_status after the feed",
    )

    workers = commands.add_parser(
        "workers",
        help="run SparkLite worker process(es) against a net driver",
    )
    workers.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the driver (a Context with executor='net')",
    )
    workers.add_argument(
        "--n",
        type=int,
        default=1,
        help="number of worker processes (1 runs inline in this process)",
    )
    workers.add_argument(
        "--name",
        default=None,
        help="worker name prefix reported to the driver",
    )

    top = commands.add_parser(
        "top",
        help="live telemetry dashboard for a server or net driver",
    )
    top.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of a running 'repro serve' server or a "
        "Context(executor='net') driver listener",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )

    compare = commands.add_parser(
        "compare",
        help="run DBSCOUT and the baselines on a file, print a summary",
    )
    compare.add_argument("input", help="points file (.csv or .npy)")
    compare.add_argument("--min-pts", type=int, required=True)
    compare.add_argument(
        "--eps", type=float, help="defaults to the k-distance elbow"
    )
    compare.add_argument(
        "--contamination",
        type=float,
        default=0.05,
        help="fraction handed to the score-based baselines",
    )
    compare.add_argument(
        "--detectors",
        default="dbscout,lof,iforest,knn",
        help="comma list from: dbscout,lof,iforest,ocsvm,knn,dbscan",
    )
    return parser


def _run_detect(args: argparse.Namespace) -> int:
    from repro import obs

    points = load_points(args.input)
    if args.auto_eps:
        eps = estimate_eps(points, args.min_pts)
        print(f"estimated eps: {eps:.6g}", file=sys.stderr)
    elif args.eps is not None:
        eps = args.eps
    else:
        print(
            "error: provide --eps or --auto-eps",
            file=sys.stderr,
        )
        return 2
    if args.engine == "distributed":
        engine_options = {
            "num_partitions": args.num_partitions,
            "kernel": args.kernel,
        }
    else:
        engine_options = {
            "n_jobs": args.n_jobs,
            "kernel": args.kernel,
            "pair_budget": args.pair_budget,
            "cell_planner": args.cell_planner,
        }
    detector = DBSCOUT(
        eps=eps,
        min_pts=args.min_pts,
        engine=args.engine,
        quality=args.quality,
        sample_fraction=args.sample_fraction,
        seed=args.seed,
        **engine_options,
    )
    sink = obs.JsonlSink(args.record) if args.record else None
    if args.trace:
        obs.enable_tracing()
    if args.profile:
        obs.enable_profiling()
    try:
        if sink is not None:
            obs.add_sink(sink)
        result = detector.fit(points)
    finally:
        if sink is not None:
            obs.remove_sink(sink)
        if args.profile:
            obs.disable_profiling()
        if args.trace:
            obs.disable_tracing()
    if args.trace and result.record is not None:
        print(obs.format_span_tree(result.record), file=sys.stderr)
    if args.record:
        print(f"run record appended to {args.record}", file=sys.stderr)
    if args.stats:
        print(f"points:   {result.n_points}", file=sys.stderr)
        print(f"core:     {result.n_core_points}", file=sys.stderr)
        print(f"outliers: {result.n_outliers}", file=sys.stderr)
        if result.timings is not None:
            print(f"timings:  {result.timings}", file=sys.stderr)
        for key in sorted(result.stats):
            print(f"stats.{key}: {result.stats[key]}", file=sys.stderr)
    if args.output:
        save_outliers(result.outlier_indices, args.output)
        print(
            f"{result.n_outliers} outlier indices written to {args.output}",
            file=sys.stderr,
        )
    else:
        for index in result.outlier_indices:
            print(int(index))
    return 0


def _run_estimate(args: argparse.Namespace) -> int:
    points = load_points(args.input)
    print(f"{estimate_eps(points, args.min_pts):.6g}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    import time

    from repro.baselines import (
        DBSCAN,
        IsolationForest,
        KNNOutlierDetector,
        LocalOutlierFactor,
        OneClassSVM,
    )
    from repro.experiments import format_table

    points = load_points(args.input)
    eps = args.eps if args.eps is not None else estimate_eps(
        points, args.min_pts
    )
    nu = args.contamination
    registry = {
        "dbscout": lambda: DBSCOUT(eps=eps, min_pts=args.min_pts).fit(points),
        "dbscan": lambda: DBSCAN(eps, args.min_pts).detect(points),
        "lof": lambda: LocalOutlierFactor(
            k=max(args.min_pts, 2), contamination=nu
        ).detect(points),
        "iforest": lambda: IsolationForest(contamination=nu, seed=0).detect(
            points
        ),
        "ocsvm": lambda: OneClassSVM(nu=nu, seed=0).detect(points),
        "knn": lambda: KNNOutlierDetector(
            k=max(args.min_pts, 1), contamination=nu
        ).detect(points),
    }
    names = [name.strip() for name in args.detectors.split(",") if name.strip()]
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(
            f"error: unknown detectors {unknown}; "
            f"choose from {sorted(registry)}",
            file=sys.stderr,
        )
        return 2
    rows = []
    for name in names:
        start = time.perf_counter()
        result = registry[name]()
        elapsed = time.perf_counter() - start
        rows.append([name, result.n_outliers, round(elapsed, 3)])
    print(
        format_table(
            ["detector", "outliers", "seconds"],
            rows,
            title=(
                f"{points.shape[0]} points, eps={eps:.6g}, "
                f"minPts={args.min_pts}, contamination={nu}"
            ),
        )
    )
    return 0


def _run_fit(args: argparse.Namespace) -> int:
    import pathlib

    from repro.serve import DetectorArtifact

    points = load_points(args.input)
    if args.auto_eps:
        eps = estimate_eps(points, args.min_pts)
        print(f"estimated eps: {eps:.6g}", file=sys.stderr)
    elif args.eps is not None:
        eps = args.eps
    else:
        print("error: provide --eps or --auto-eps", file=sys.stderr)
        return 2
    detector = DBSCOUT(
        eps=eps,
        min_pts=args.min_pts,
        engine=args.engine,
        kernel=args.kernel,
        quality=args.quality,
        sample_fraction=args.sample_fraction,
        seed=args.seed,
    )
    result = detector.fit(points)
    name = args.name or pathlib.Path(args.save_artifact).stem
    artifact = DetectorArtifact.from_model(
        detector.core_model_, name=name, source=str(args.input)
    )
    written = artifact.save(args.save_artifact)
    print(
        f"fitted {result.n_points} points "
        f"({result.n_core_points} core, {result.n_outliers} outliers); "
        f"artifact {name!r} written to {written}",
        file=sys.stderr,
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.serve import OutlierService, load_artifact, run_server

    if not args.artifacts and not args.live:
        print(
            "error: provide artifact files and/or --live NAME",
            file=sys.stderr,
        )
        return 2
    service = OutlierService(
        max_queue=args.max_queue, max_batch_rows=args.max_batch_rows
    )
    for path in args.artifacts:
        artifact = load_artifact(path)
        service.register(artifact.name, artifact)
        print(
            f"loaded {artifact.name!r} from {path} "
            f"(eps={artifact.model.eps:.6g}, "
            f"min_pts={artifact.model.min_pts}, "
            f"{artifact.model.n_core_points} core points)",
            file=sys.stderr,
        )
    streams = None
    if args.live:
        from repro.stream import LiveDetector, StreamCoordinator

        if args.live_eps is None or args.live_min_pts is None:
            print(
                "error: --live needs --live-eps and --live-min-pts",
                file=sys.stderr,
            )
            return 2
        live = LiveDetector(
            eps=args.live_eps,
            min_pts=args.live_min_pts,
            window=args.window,
            name=args.live,
        )
        coordinator = StreamCoordinator(
            live,
            service,
            name=args.live,
            every_points=args.refresh_points,
            every_s=args.refresh_s,
        )
        streams = {args.live: coordinator}
        print(
            f"live detector {args.live!r} "
            f"(eps={args.live_eps:.6g}, min_pts={args.live_min_pts}, "
            f"window={live.policy.describe()})",
            file=sys.stderr,
        )
    try:
        run_server(
            service,
            host=args.host,
            port=args.port,
            metrics_port=args.metrics_port,
            streams=streams,
        )
    finally:
        service.close()
    return 0


def _run_query(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.serve import OutlierClient

    points = load_points(args.input)
    with OutlierClient(args.host, args.port) as client:
        labels = client.query(args.detector, points, timeout=args.timeout)
        stats = client.stats() if args.stats else None
    outlier_indices = np.flatnonzero(labels == 1)
    if args.output:
        save_outliers(outlier_indices, args.output)
        print(
            f"{outlier_indices.size} outlier indices written to "
            f"{args.output}",
            file=sys.stderr,
        )
    else:
        for index in outlier_indices:
            print(int(index))
    print(
        f"{outlier_indices.size} outliers in {labels.size} points",
        file=sys.stderr,
    )
    if stats is not None:
        print(json.dumps(stats, indent=2, sort_keys=True), file=sys.stderr)
    return 0


def _run_generate(args: argparse.Namespace) -> int:
    points = GENERATORS[args.dataset](args.n, args.seed)
    save_points(points, args.output)
    print(
        f"wrote {points.shape[0]} x {points.shape[1]} points to {args.output}",
        file=sys.stderr,
    )
    return 0


def _run_stream(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.serve import OutlierClient

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --connect needs HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    if args.batch_size < 1:
        print(
            f"error: --batch-size must be >= 1, got {args.batch_size}",
            file=sys.stderr,
        )
        return 2

    def batches():
        if args.input == "-":
            rows: list[list[float]] = []
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                rows.append(
                    [float(field) for field in line.replace(",", " ").split()]
                )
                if len(rows) >= args.batch_size:
                    yield np.asarray(rows, dtype=np.float64)
                    rows = []
            if rows:
                yield np.asarray(rows, dtype=np.float64)
        else:
            points = load_points(args.input)
            for start in range(0, points.shape[0], args.batch_size):
                yield points[start : start + args.batch_size]

    sent = swaps = 0
    with OutlierClient(host, int(port_text)) as client:
        for batch in batches():
            status = client.ingest(args.stream_name, batch)
            sent += int(status.get("accepted", 0))
            if status.get("swapped"):
                swaps += 1
                print(
                    f"swap -> version {status.get('version')} "
                    f"({status.get('window_points')} window points)",
                    file=sys.stderr,
                )
        print(
            f"ingested {sent} points into {args.stream_name!r} "
            f"({swaps} hot-swaps)",
            file=sys.stderr,
        )
        if args.status:
            print(
                json.dumps(
                    client.swap_status(), indent=2, sort_keys=True
                )
            )
    return 0


def _run_workers(args: argparse.Namespace) -> int:
    from repro.sparklite.netexec import run_worker

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --connect needs HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    port = int(port_text)
    if args.n < 1:
        print(f"error: --n must be >= 1, got {args.n}", file=sys.stderr)
        return 2
    if args.n == 1:
        run_worker(host, port, args.name)
        return 0
    import subprocess

    prefix = args.name or "worker"
    children = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "workers",
                "--connect",
                args.connect,
                "--name",
                f"{prefix}-{index}",
            ]
        )
        for index in range(args.n)
    ]
    return max(child.wait() for child in children)


def _run_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.top import fetch_telemetry, render_dashboard

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --connect needs HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    port = int(port_text)
    previous = None
    try:
        while True:
            snapshot = fetch_telemetry(host, port)
            dashboard = render_dashboard(
                snapshot,
                previous=previous,
                interval=None if previous is None else args.interval,
            )
            if args.once:
                print(dashboard)
                return 0
            # Clear screen + home, like top(1).
            print(f"\x1b[2J\x1b[H{dashboard}", flush=True)
            previous = snapshot
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "detect": _run_detect,
        "estimate-eps": _run_estimate,
        "generate": _run_generate,
        "compare": _run_compare,
        "fit": _run_fit,
        "serve": _run_serve,
        "query": _run_query,
        "stream": _run_stream,
        "workers": _run_workers,
        "top": _run_top,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
