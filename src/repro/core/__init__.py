"""Core DBSCOUT algorithm: grid geometry, cell maps, and detection engines."""

from repro.core.cellmap import CellMap, CellType
from repro.core.classify import CoreModel, classify
from repro.core.dbscout import DBSCOUT, detect_outliers
from repro.core.distance_based import DistanceBasedDetector
from repro.core.grid import Grid, cell_coordinates, cell_side_length
from repro.core.incremental import IncrementalDBSCOUT
from repro.core.neighbors import (
    NeighborStencil,
    count_neighbor_offsets,
    kd_upper_bound,
    neighbor_offsets,
)
from repro.core.parameters import estimate_eps, k_distance_graph
from repro.core.scoring import detect_with_scores, nearest_core_distance

__all__ = [
    "CellMap",
    "CellType",
    "CoreModel",
    "classify",
    "DBSCOUT",
    "DistanceBasedDetector",
    "IncrementalDBSCOUT",
    "detect_outliers",
    "Grid",
    "cell_coordinates",
    "cell_side_length",
    "NeighborStencil",
    "count_neighbor_offsets",
    "kd_upper_bound",
    "neighbor_offsets",
    "estimate_eps",
    "detect_with_scores",
    "nearest_core_distance",
    "k_distance_graph",
]
