"""Approximate quality tier: subsampled density with exactness guardrails.

The exact engines answer "is this point an outlier?" with a proof; the
approximate tier answers faster by deliberately *undercounting*
density, in two composable ways:

* **DBSCAN++-style core subsampling** (Jang & Jiang).  Density checks
  run only for a seeded sample of the points — uniform or greedy
  K-center — while the candidate side stays complete, so a sampled
  point's neighbor count is its exact count.  Non-sampled points are
  then labeled by proximity to the sampled cores through the existing
  kernel tier (the unchanged exact outlier round).
* **sDBSCAN-style random-projection prefilter** (Pham et al.).  Unit
  random projections contract distances (``|<u, x - y>| <= ||x - y||``),
  so a (work cell, neighbor cell) pair whose projected intervals are
  separated by more than ``rp_margin * eps`` on any projection cannot
  contain a neighbor pair; such cell pairs are dropped before the
  distance kernel runs.  The filter plugs into ``_plan_cell_jobs`` and
  therefore composes with both the stencil and grid-tree planners.

Both mechanisms only *remove* neighbor evidence, which yields the
tier's guardrail: every approximate core point is an exact core point,
hence every exact outlier is also flagged by the approximate run —
**outlier recall against the exact engine is 1.0 by construction**,
and precision is the metric a preset trades for speed.

That one-sided error makes honest self-reporting cheap.  Because the
approximate outlier set is a superset of the exact one, the exact
labels are recoverable by auditing only the flagged points: compute
exact core status for the members of cells adjacent to flagged cells,
then re-check each flagged point against those exact cores (a core
point within ``eps`` of a point always lives in a stencil-neighbor
cell — the same locality ``CoreModel.classify`` uses).  The engine
runs this audit by default and reports precision/recall/F1 versus the
exact labels through :mod:`repro.metrics` into the run record, under
the ``approx.*`` counter families declared in :mod:`repro.obs.names`.

Presets (``DBSCOUT(quality=...)``):

* ``"exact"`` — the default; routes to the unchanged exact engine.
* ``"balanced"`` — 50% uniform sample, RP prefilter on.
* ``"fast"`` — 20% uniform sample, RP prefilter on.

``sample_fraction=`` overrides the preset fraction; ``seed=`` makes
runs bit-identically reproducible.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.core.grid import Grid, validate_points
from repro.core.kernels import (
    Kernel,
    normalize_kernel,
    normalize_pair_budget,
    resolve_kernel,
)
from repro.core.neighbors import NeighborStencil
from repro.core.parallel import normalize_n_jobs
from repro.core.validation import validate_parameters
from repro.core.vectorized import (
    TREE_PLANNER_MIN_DIMS,
    VectorizedEngine,
    _bump,
    _CellAdjacency,
    _cell_bounds,
    _flat_ranges,
    _pair_counts,
    _plan_cell_jobs,
    _segment_sums,
    normalize_cell_planner,
)
from repro.exceptions import ParameterError
from repro.metrics import f1_score, precision_score, recall_score
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = [
    "ApproxEngine",
    "QUALITY_NAMES",
    "QUALITY_PRESETS",
    "SAMPLE_METHODS",
    "normalize_quality",
    "normalize_sample_fraction",
    "normalize_seed",
    "validate_quality_config",
]

#: Accepted ``quality=`` presets, in decreasing exactness.
QUALITY_NAMES = ("exact", "balanced", "fast")

#: Accepted ``sample_method=`` values for the approximate tier.
SAMPLE_METHODS = ("uniform", "kcenter")

#: Preset name -> default knob values for the approximate engine.
#: ``"exact"`` has no entry on purpose: the facade routes it to the
#: unchanged exact engine, never through this module.
QUALITY_PRESETS: dict[str, dict[str, Any]] = {
    "balanced": {"sample_fraction": 0.5, "rp_prefilter": True},
    "fast": {"sample_fraction": 0.2, "rp_prefilter": True},
}


def normalize_quality(quality: Any) -> str:
    """Validate a ``quality=`` preset name (``None`` means ``"exact"``).

    Raises:
        ParameterError: If the value is not one of :data:`QUALITY_NAMES`.
    """
    if quality is None:
        return "exact"
    if not isinstance(quality, str) or quality not in QUALITY_NAMES:
        raise ParameterError(
            f"quality must be one of {', '.join(QUALITY_NAMES)}, "
            f"got {quality!r}"
        )
    return quality


def normalize_sample_fraction(sample_fraction: Any) -> float:
    """Validate an explicit ``sample_fraction`` (must be in ``(0, 1]``).

    Raises:
        ParameterError: On non-numbers, bools, NaN, or values outside
            ``(0, 1]``.
    """
    if isinstance(sample_fraction, bool) or not isinstance(
        sample_fraction, (int, float, np.integer, np.floating)
    ):
        raise ParameterError(
            "sample_fraction must be a number in (0, 1], "
            f"got {sample_fraction!r}"
        )
    value = float(sample_fraction)
    if not (0.0 < value <= 1.0):  # also rejects NaN
        raise ParameterError(
            f"sample_fraction must be in (0, 1], got {sample_fraction!r}"
        )
    return value


def normalize_seed(seed: Any) -> int:
    """Validate a ``seed`` (``None`` means ``0``).

    Raises:
        ParameterError: On bools, non-integers, or negative values.
    """
    if seed is None:
        return 0
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise ParameterError(
            f"seed must be a non-negative integer, got {seed!r}"
        )
    if seed < 0:
        raise ParameterError(
            f"seed must be a non-negative integer, got {seed!r}"
        )
    return int(seed)


def normalize_sample_method(sample_method: Any) -> str:
    """Validate a ``sample_method`` (``None`` means ``"uniform"``)."""
    if sample_method is None:
        return "uniform"
    if (
        not isinstance(sample_method, str)
        or sample_method not in SAMPLE_METHODS
    ):
        raise ParameterError(
            f"sample_method must be one of {', '.join(SAMPLE_METHODS)}, "
            f"got {sample_method!r}"
        )
    return sample_method


def validate_quality_config(config: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a quality config carried by a model/artifact.

    The serving path stores the fit's quality configuration in
    :attr:`repro.core.classify.CoreModel.metadata` (and therefore in
    the artifact header); this re-validates it on the way back in so a
    tampered or stale artifact cannot smuggle an invalid preset.

    Returns:
        The normalized config (only the recognized keys).

    Raises:
        ParameterError: On an invalid ``quality`` / ``sample_fraction``
            / ``seed`` / ``sample_method`` value.
    """
    normalized: dict[str, Any] = {}
    if "quality" in config:
        normalized["quality"] = normalize_quality(config["quality"])
    if config.get("sample_fraction") is not None:
        normalized["sample_fraction"] = normalize_sample_fraction(
            config["sample_fraction"]
        )
        if normalized.get("quality") == "exact":
            raise ParameterError(
                "quality config carries a sample_fraction but claims "
                "quality='exact'; exact fits are never subsampled"
            )
    if "seed" in config:
        normalized["seed"] = normalize_seed(config["seed"])
    if config.get("sample_method") is not None:
        normalized["sample_method"] = normalize_sample_method(
            config["sample_method"]
        )
    return normalized


def _greedy_kcenter(
    array: np.ndarray, n_sample: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy K-center sample indices (farthest-point traversal).

    O(k * n * d): starts from a seeded random point and repeatedly adds
    the point farthest from the current sample.  Spreads the sample
    over the data's extent, which keeps sparse regions represented at
    small fractions; the uniform sampler is the cheap default.
    """
    n_points = array.shape[0]
    chosen = np.empty(n_sample, dtype=np.int64)
    chosen[0] = int(rng.integers(n_points))
    best = np.sum((array - array[chosen[0]]) ** 2, axis=1)
    for rank in range(1, n_sample):
        chosen[rank] = int(np.argmax(best))
        delta = array - array[chosen[rank]]
        np.minimum(best, np.einsum("ij,ij->i", delta, delta), out=best)
    return np.sort(chosen)


class _RpPrefilter:
    """Random-projection cell-pair prefilter (sDBSCAN-style).

    Projects every point onto ``n_projections`` seeded unit vectors and
    keeps each cell's projected interval.  For a cell pair, the gap
    between the two intervals on any projection lower-bounds every
    member/candidate distance (projection onto a unit vector is a
    contraction), so a gap above ``rp_margin * eps`` drops the pair
    before the kernel.  Dropping pairs only removes neighbor evidence,
    preserving the tier's one-sided error direction.
    """

    def __init__(
        self,
        array: np.ndarray,
        grid: Grid,
        member_counts: np.ndarray,
        eps: float,
        n_projections: int,
        rp_margin: float,
        rng: np.random.Generator,
        counters: dict[str, int],
    ) -> None:
        n_dims = array.shape[1]
        directions = rng.normal(size=(n_projections, n_dims))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        # A zero draw is measure-zero but would break the contraction.
        norms[norms == 0.0] = 1.0
        directions /= norms
        projected = array @ directions.T  # (n, r)
        order, starts = grid.members_csr()
        ordered = projected[order]
        self.lo = np.minimum.reduceat(ordered, starts, axis=0)
        self.hi = np.maximum.reduceat(ordered, starts, axis=0)
        self.threshold = float(rp_margin) * float(eps)
        self._member_counts = member_counts
        self._cand_counts = grid.counts
        self._counters = counters

    def __call__(
        self, work_ids: np.ndarray, ncell_ids: np.ndarray
    ) -> np.ndarray:
        gap = np.maximum(
            self.lo[ncell_ids] - self.hi[work_ids],
            self.lo[work_ids] - self.hi[ncell_ids],
        )
        keep = ~(gap > self.threshold).any(axis=1)
        dropped = ~keep
        if dropped.any():
            _bump(
                self._counters, "rp_cell_pairs_pruned", int(dropped.sum())
            )
            _bump(
                self._counters, "rp_pairs_pruned",
                int(
                    (
                        self._member_counts[work_ids[dropped]]
                        * self._cand_counts[ncell_ids[dropped]]
                    ).sum()
                ),
            )
        return keep


class ApproxEngine:
    """Approximate DBSCOUT with a proven one-sided error direction.

    Args:
        quality: ``"balanced"`` or ``"fast"`` (``"exact"`` never
            reaches this engine — the :class:`~repro.DBSCOUT` facade
            routes it to the exact engine).
        sample_fraction: Overrides the preset's sample fraction
            (``(0, 1]``; ``1.0`` samples every point, reproducing the
            exact labels).
        seed: RNG seed for the sample and the projections; a fixed
            seed makes runs bit-identically reproducible.
        sample_method: ``"uniform"`` (default) or ``"kcenter"``
            (greedy farthest-point; O(k * n * d), for sparse-region
            coverage at small fractions).
        rp_prefilter: Overrides the preset's random-projection
            prefilter toggle.
        n_projections: Number of random unit projections (``>= 1``).
        rp_margin: Gap threshold multiplier on ``eps`` (``> 0``);
            values above 1 prune less aggressively.
        audit: Compute the exact outlier labels for the flagged set
            and report precision/recall/F1 vs the exact engine into
            the run record (on by default; the audit cost scales with
            the number of flagged points, not the dataset).
        n_jobs / pruning / kernel / pair_budget / cell_planner: The
            vectorized engine's options, identical semantics.
    """

    name = "approx"

    def __init__(
        self,
        quality: str = "balanced",
        sample_fraction: float | None = None,
        seed: int | None = 0,
        sample_method: str | None = "uniform",
        rp_prefilter: bool | None = None,
        n_projections: int = 8,
        rp_margin: float = 1.0,
        audit: bool = True,
        n_jobs: int | None = 1,
        pruning: bool = True,
        kernel: str | Kernel | None = "auto",
        pair_budget: int | None = None,
        cell_planner: str | None = "auto",
    ) -> None:
        self.quality = normalize_quality(quality)
        if self.quality == "exact":
            raise ParameterError(
                "quality='exact' is served by the exact engine; "
                "construct ApproxEngine with 'balanced' or 'fast'"
            )
        preset = QUALITY_PRESETS[self.quality]
        self.sample_fraction = (
            preset["sample_fraction"]
            if sample_fraction is None
            else normalize_sample_fraction(sample_fraction)
        )
        self.seed = normalize_seed(seed)
        self.sample_method = normalize_sample_method(sample_method)
        if rp_prefilter is None:
            self.rp_prefilter = bool(preset["rp_prefilter"])
        elif isinstance(rp_prefilter, (bool, np.bool_)):
            self.rp_prefilter = bool(rp_prefilter)
        else:
            raise ParameterError(
                f"rp_prefilter must be a bool, got {rp_prefilter!r}"
            )
        if (
            isinstance(n_projections, bool)
            or not isinstance(n_projections, (int, np.integer))
            or n_projections < 1
        ):
            raise ParameterError(
                f"n_projections must be a positive integer, "
                f"got {n_projections!r}"
            )
        self.n_projections = int(n_projections)
        if (
            isinstance(rp_margin, bool)
            or not isinstance(
                rp_margin, (int, float, np.integer, np.floating)
            )
            or not rp_margin > 0
        ):
            raise ParameterError(
                f"rp_margin must be a positive number, got {rp_margin!r}"
            )
        self.rp_margin = float(rp_margin)
        self.audit = bool(audit)
        self.n_jobs = normalize_n_jobs(n_jobs)
        self.pruning = bool(pruning)
        self.kernel = normalize_kernel(kernel)
        self.pair_budget = normalize_pair_budget(pair_budget)
        self.cell_planner = normalize_cell_planner(cell_planner)

    def quality_config(self) -> dict[str, Any]:
        """The reproducibility config a fit carries into its model."""
        return {
            "quality": self.quality,
            "sample_fraction": self.sample_fraction,
            "seed": self.seed,
            "sample_method": self.sample_method,
        }

    def _resolve_planner(self, n_dims: int) -> str:
        if self.cell_planner == "auto":
            return "tree" if n_dims >= TREE_PLANNER_MIN_DIMS else "stencil"
        return self.cell_planner

    # ------------------------------------------------------------------

    def detect(
        self, points: np.ndarray, eps: float, min_pts: int
    ) -> DetectionResult:
        """Approximate DBSCOUT labels plus the audited quality report."""
        array = validate_points(points)
        eps, min_pts = validate_parameters(eps, min_pts)
        n_points = array.shape[0]
        if n_points == 0:
            return DetectionResult(
                n_points=0,
                outlier_mask=np.zeros(0, dtype=bool),
                core_mask=np.zeros(0, dtype=bool),
            )

        counters = {
            "distance_computations": 0,
            "pruned_cells": 0,
            "pairs_self_covered": 0,
            "pairs_skipped_covered": 0,
            "pairs_skipped_excluded": 0,
            "cells_settled_covered": 0,
        }
        approx_counters: dict[str, int | float] = {}
        kernel = resolve_kernel(self.kernel, counters)
        planner = self._resolve_planner(array.shape[1])
        eps_sq = eps * eps
        recorder = RunRecorder(
            engine=self.name,
            params={"eps": eps, "min_pts": min_pts},
            context={
                "engine": self.name,
                "n_jobs": self.n_jobs,
                "pruning": self.pruning,
                "kernel": kernel.name,
                "pair_budget": self.pair_budget,
                "cell_planner": planner,
                "quality": self.quality,
                "sample_fraction": self.sample_fraction,
                "sample_method": self.sample_method,
                "seed": self.seed,
                "rp_prefilter": self.rp_prefilter,
                "audit": self.audit,
            },
        )
        with recorder.activate():
            with recorder.span("grid"):
                grid = Grid(array, eps)
                stencil = NeighborStencil(grid.n_dims)

            with recorder.span("dense_cell_map"):
                adjacency = _CellAdjacency(
                    grid, stencil, planner=planner, counters=counters
                )
                dense_cells = grid.counts >= min_pts
                bounds = _cell_bounds(grid) if self.pruning else None

            with recorder.span("sample"):
                rng = np.random.default_rng(self.seed)
                sample_mask = self._sample(array, rng)
                approx_counters["sampled_points"] = int(sample_mask.sum())
                rp_filter = None
                if self.rp_prefilter:
                    member_counts = np.zeros(grid.n_cells, dtype=np.int64)
                    np.add.at(
                        member_counts, grid.point_cell[sample_mask], 1
                    )
                    rp_filter = _RpPrefilter(
                        array, grid, member_counts, eps,
                        self.n_projections, self.rp_margin, rng,
                        approx_counters,
                    )

            with recorder.span("core_points"):
                core_mask = self._sampled_core_points(
                    array, grid, adjacency, dense_cells, sample_mask,
                    eps_sq, min_pts, counters, bounds, kernel, rp_filter,
                )

            with recorder.span("core_cell_map"):
                cell_is_core = np.zeros(grid.n_cells, dtype=bool)
                cell_is_core[np.unique(grid.point_cell[core_mask])] = True

            with recorder.span("outliers"):
                # Non-sampled points are labeled by proximity to the
                # sampled cores via the unchanged exact outlier round.
                outlier_mask = VectorizedEngine._find_outliers(
                    array, grid, adjacency, cell_is_core, core_mask, eps,
                    counters, bounds=bounds, n_jobs=self.n_jobs,
                    kernel=kernel, pair_budget=self.pair_budget,
                )

            self.last_audit_mask_: np.ndarray | None = None
            if self.audit:
                with recorder.span("audit"):
                    # Kept on the engine so tests (and curious callers)
                    # can compare the audited exact labels pointwise.
                    self.last_audit_mask_ = self._audit(
                        array, grid, adjacency, dense_cells, outlier_mask,
                        eps_sq, min_pts, bounds, kernel, approx_counters,
                    )

        recorder.metrics.merge(counters, namespace="engine")
        recorder.metrics.merge(approx_counters, namespace="approx")
        recorder.add_context(
            n_cells=grid.n_cells,
            n_dense_cells=int(dense_cells.sum()),
            n_core_cells=int(cell_is_core.sum()),
            k_d=stencil.k_d,
            max_cell_population=int(grid.counts.max()),
        )
        record = recorder.finish(n_points=n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=outlier_mask,
            core_mask=core_mask,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )

    def classify(self, model, points: np.ndarray) -> np.ndarray:
        """Out-of-sample labels against the fitted (approximate) model."""
        return model.classify(points, kernel=self.kernel)

    # ------------------------------------------------------------------

    def _sample(
        self, array: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean mask of the seeded density-check sample."""
        n_points = array.shape[0]
        n_sample = int(np.ceil(self.sample_fraction * n_points))
        n_sample = min(max(n_sample, 1), n_points)
        mask = np.zeros(n_points, dtype=bool)
        if n_sample == n_points:
            mask[:] = True
        elif self.sample_method == "kcenter":
            mask[_greedy_kcenter(array, n_sample, rng)] = True
        else:
            mask[rng.choice(n_points, size=n_sample, replace=False)] = True
        return mask

    def _sampled_core_points(
        self,
        array: np.ndarray,
        grid: Grid,
        adjacency: _CellAdjacency,
        dense_cells: np.ndarray,
        sample_mask: np.ndarray,
        eps_sq: float,
        min_pts: int,
        counters: dict[str, int],
        bounds,
        kernel: Kernel,
        rp_filter,
    ) -> np.ndarray:
        """Exact core status of the sampled points only (DBSCAN++).

        The member side is restricted to the sample; the candidate side
        is the full dataset, so every sampled point's neighbor count —
        and therefore its core verdict — is exact.  The approximate
        core set is thus a subset of the exact one (modulo RP drops,
        which only undercount further), which is what makes the flagged
        outlier set a superset of the exact one.
        """
        core_mask = np.zeros(grid.n_points, dtype=bool)
        # Lemma 1 shortcut, restricted to sampled members: a sampled
        # point in a dense cell is an exact core with zero distances.
        core_mask[sample_mask & dense_cells[grid.point_cell]] = True
        cell_has_sample = np.zeros(grid.n_cells, dtype=bool)
        cell_has_sample[grid.point_cell[sample_mask]] = True
        work = np.flatnonzero(~dense_cells & cell_has_sample)
        if work.size == 0:
            return core_mask
        # Grouping-before-joining pruning (Sec. III-G2), with the full
        # populations — an exact upper bound on any member's count.
        adj_starts = adjacency._starts
        adj_lens = adj_starts[work + 1] - adj_starts[work]
        ncell_flat = adjacency._targets[
            _flat_ranges(adj_starts[work], adj_lens)
        ]
        neighborhood_pop = _segment_sums(grid.counts[ncell_flat], adj_lens)
        pruned = neighborhood_pop < min_pts
        counters["pruned_cells"] += int(pruned.sum())
        work = work[~pruned]
        if work.size == 0:
            return core_mask
        members_flat, m_sizes, cands_flat, c_sizes, base_counts, _ = (
            _plan_cell_jobs(
                grid, adjacency, work, None, None, bounds, eps_sq,
                counters, settle_threshold=min_pts, seed_self=True,
                member_mask=sample_mask, pair_filter=rp_filter,
            )
        )
        counts = _pair_counts(
            array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
            counters, self.n_jobs, kernel, self.pair_budget,
        )
        counts = counts + np.repeat(base_counts, m_sizes)
        core_mask[members_flat[counts >= min_pts]] = True
        return core_mask

    def _audit(
        self,
        array: np.ndarray,
        grid: Grid,
        adjacency: _CellAdjacency,
        dense_cells: np.ndarray,
        outlier_mask: np.ndarray,
        eps_sq: float,
        min_pts: int,
        bounds,
        kernel: Kernel,
        approx_counters: dict[str, int | float],
    ) -> np.ndarray:
        """Exact labels for the flagged set; quality scores as a side effect.

        Because the flagged set is a superset of the exact outliers,
        the full exact outlier mask equals "flagged AND no exact core
        within eps".  A rescuing core must live in a stencil-neighbor
        cell of the flagged point's cell, so it suffices to compute
        exact core status for the members of that cell ring and
        re-check only the flagged points against them.
        """
        audit_counters: dict[str, int] = {}
        exact_outlier = np.zeros(grid.n_points, dtype=bool)
        flagged_cells = np.unique(grid.point_cell[outlier_mask])
        if flagged_cells.size:
            adj_starts = adjacency._starts
            adj_lens = (
                adj_starts[flagged_cells + 1] - adj_starts[flagged_cells]
            )
            ring = np.unique(
                adjacency._targets[
                    _flat_ranges(adj_starts[flagged_cells], adj_lens)
                ]
            )
            ring_core = self._ring_core_points(
                array, grid, adjacency, dense_cells, ring, eps_sq,
                min_pts, bounds, kernel, audit_counters,
            )
            core_cells_mask = np.zeros(grid.n_cells, dtype=bool)
            core_cells_mask[np.unique(grid.point_cell[ring_core])] = True
            members_flat, m_sizes, cands_flat, c_sizes, base_counts, _ = (
                _plan_cell_jobs(
                    grid, adjacency, flagged_cells,
                    candidate_cell_mask=core_cells_mask,
                    candidate_point_mask=ring_core,
                    bounds=bounds, eps_sq=eps_sq, counters=audit_counters,
                    settle_threshold=1, seed_self=True,
                    member_mask=outlier_mask,
                )
            )
            counts = _pair_counts(
                array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
                audit_counters, self.n_jobs, kernel, self.pair_budget,
            )
            counts = counts + np.repeat(base_counts, m_sizes)
            exact_outlier[members_flat[counts == 0]] = True
            _bump(
                approx_counters, "audit_candidate_points",
                int(ring_core.sum()),
            )
        _bump(
            approx_counters, "audit_distance_computations",
            int(audit_counters.get("distance_computations", 0)),
        )
        n_flagged = int(outlier_mask.sum())
        n_exact = int(exact_outlier.sum())
        approx_counters["flagged_outliers"] = n_flagged
        approx_counters["exact_outliers"] = n_exact
        approx_counters["false_outliers"] = n_flagged - n_exact
        approx_counters["precision"] = precision_score(
            exact_outlier, outlier_mask
        )
        approx_counters["recall"] = recall_score(exact_outlier, outlier_mask)
        approx_counters["f1"] = f1_score(exact_outlier, outlier_mask)
        return exact_outlier

    def _ring_core_points(
        self,
        array: np.ndarray,
        grid: Grid,
        adjacency: _CellAdjacency,
        dense_cells: np.ndarray,
        ring: np.ndarray,
        eps_sq: float,
        min_pts: int,
        bounds,
        kernel: Kernel,
        audit_counters: dict[str, int],
    ) -> np.ndarray:
        """Exact core status of every member of the ``ring`` cells.

        Identical machinery to the exact core round, restricted to the
        ring: full candidate populations, Lemma 1 self credit, the
        dense-cell shortcut, and the neighborhood-population pruning.
        """
        ring_core = np.zeros(grid.n_points, dtype=bool)
        order, starts = grid.members_csr()
        dense_ring = ring[dense_cells[ring]]
        if dense_ring.size:
            ring_core[
                order[
                    _flat_ranges(
                        starts[dense_ring], grid.counts[dense_ring]
                    )
                ]
            ] = True
        work = ring[~dense_cells[ring]]
        if work.size == 0:
            return ring_core
        adj_starts = adjacency._starts
        adj_lens = adj_starts[work + 1] - adj_starts[work]
        ncell_flat = adjacency._targets[
            _flat_ranges(adj_starts[work], adj_lens)
        ]
        neighborhood_pop = _segment_sums(grid.counts[ncell_flat], adj_lens)
        work = work[neighborhood_pop >= min_pts]
        if work.size == 0:
            return ring_core
        members_flat, m_sizes, cands_flat, c_sizes, base_counts, _ = (
            _plan_cell_jobs(
                grid, adjacency, work, None, None, bounds, eps_sq,
                audit_counters, settle_threshold=min_pts, seed_self=True,
            )
        )
        counts = _pair_counts(
            array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
            audit_counters, self.n_jobs, kernel, self.pair_budget,
        )
        counts = counts + np.repeat(base_counts, m_sizes)
        ring_core[members_flat[counts >= min_pts]] = True
        return ring_core
