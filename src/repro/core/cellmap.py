"""Cell maps: the broadcast cell-classification structures of DBSCOUT.

A :class:`CellMap` records, for every non-empty cell, its type:

* ``DENSE`` — the cell holds at least ``min_pts`` points, so every point
  inside it is a core point (Lemma 1);
* ``CORE`` — the cell is not dense but contains at least one core point,
  so none of its points is an outlier (Lemma 2);
* ``OTHER`` — anything else.

The paper builds this structure twice: a *dense cell map* after the
counting phase (Algorithm 2) and, after core-point identification, an
upgraded *core cell map* (Algorithm 4).  In the distributed engine the
map is broadcast to every executor; here it is an ordinary in-memory
mapping keyed by cell coordinate tuples.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.grid import cell_side_length, check_grid_domain
from repro.core.neighbors import NeighborStencil
from repro.exceptions import ParameterError

__all__ = ["CellType", "CellMap"]

Cell = tuple[int, ...]


class CellType(enum.Enum):
    """Classification of a non-empty epsilon-cell."""

    DENSE = "dense"
    CORE = "core"
    OTHER = "other"

    @property
    def is_core(self) -> bool:
        """Dense cells are core cells (a dense cell holds core points)."""
        return self is not CellType.OTHER


class CellMap:
    """Mapping from cell coordinates to :class:`CellType`.

    Args:
        n_dims: Dimensionality of the grid (determines the stencil).
        stencil: Optional pre-built :class:`NeighborStencil` to share.
    """

    def __init__(self, n_dims: int, stencil: NeighborStencil | None = None) -> None:
        if stencil is not None and stencil.n_dims != n_dims:
            raise ParameterError(
                f"stencil dimensionality {stencil.n_dims} != n_dims {n_dims}"
            )
        self.n_dims = int(n_dims)
        self.stencil = stencil or NeighborStencil(n_dims)
        self._types: dict[Cell, CellType] = {}

    @classmethod
    def from_counts(
        cls,
        counts: Mapping[Cell, int],
        min_pts: int,
        stencil: NeighborStencil | None = None,
    ) -> "CellMap":
        """Build the dense cell map from per-cell point counts (Algorithm 2)."""
        if min_pts < 1:
            raise ParameterError(f"min_pts must be >= 1, got {min_pts!r}")
        cells = iter(counts)
        try:
            first = next(cells)
        except StopIteration:
            raise ParameterError(
                "cannot infer dimensionality from an empty count map; "
                "construct CellMap(n_dims) directly"
            ) from None
        cell_map = cls(len(first), stencil=stencil)
        for cell, n_points in counts.items():
            cell_map.set_type(
                cell, CellType.DENSE if n_points >= min_pts else CellType.OTHER
            )
        return cell_map

    def set_type(self, cell: Cell, cell_type: CellType) -> None:
        """Record (or overwrite) the type of a cell."""
        if len(cell) != self.n_dims:
            raise ParameterError(
                f"cell {cell!r} has {len(cell)} coordinates, expected {self.n_dims}"
            )
        self._types[tuple(int(c) for c in cell)] = cell_type

    def cell_type(self, cell: Cell) -> CellType | None:
        """Return the type of ``cell`` or ``None`` if the cell is empty."""
        return self._types.get(tuple(int(c) for c in cell))

    def mark_core(self, cell: Cell) -> None:
        """Upgrade a non-dense cell to ``CORE`` (Algorithm 4).

        Dense cells stay dense: they are already core cells, and keeping
        the distinction preserves the Lemma 1 shortcut.
        """
        key = tuple(int(c) for c in cell)
        if self._types.get(key) is not CellType.DENSE:
            self._types[key] = CellType.CORE

    def is_core_cell(self, cell: Cell) -> bool:
        """True if the cell is dense or was marked core."""
        cell_type = self.cell_type(cell)
        return cell_type is not None and cell_type.is_core

    def neighbors(self, cell: Cell) -> list[Cell]:
        """Non-empty neighbors of ``cell`` (itself included when non-empty)."""
        return [
            candidate
            for candidate in self.stencil.neighbors_of(cell)
            if candidate in self._types
        ]

    def core_neighbors(self, cell: Cell) -> list[Cell]:
        """Non-empty neighboring cells that are core (dense or marked core)."""
        return [
            candidate
            for candidate in self.stencil.neighbors_of(cell)
            if self._types.get(candidate, CellType.OTHER).is_core
        ]

    def classify(
        self,
        points: np.ndarray,
        core_points_by_cell: Mapping[Cell, Sequence[Sequence[float]]],
        eps: float,
    ) -> np.ndarray:
        """Exact out-of-sample labels against this fitted map.

        The record-at-a-time counterpart of
        :meth:`repro.core.classify.CoreModel.classify`, matching how
        the distributed engine walks the broadcast map: a query whose
        cell is a core cell is an inlier outright (Lemma 1); any other
        query is an inlier iff some core point of a neighboring core
        cell lies within ``eps`` (Definition 3).  Distances accumulate
        per dimension in the engines' order, so labels agree
        bit-identically with ``fit`` on the training data.

        Args:
            points: ``(n, d)`` array of query points.
            core_points_by_cell: Mapping from cell coordinates to the
                coordinate sequences of the core points in that cell
                (e.g. built from ``result.core_mask``).
            eps: Neighborhood radius the map was fitted with.

        Returns:
            ``(n,)`` int64 label array: 1 for outliers, 0 for inliers.
        """
        array = np.ascontiguousarray(points, dtype=np.float64)
        if array.size == 0 and array.ndim <= 2:
            # Empty query batch: zero labels (matches CoreModel.classify).
            return np.zeros(0, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != self.n_dims:
            raise ParameterError(
                f"points must have shape (n, {self.n_dims}), "
                f"got {array.shape}"
            )
        side = cell_side_length(eps, self.n_dims)
        check_grid_domain(array, side)
        eps_sq = eps * eps
        labels = np.zeros(array.shape[0], dtype=np.int64)
        for i, row in enumerate(array):
            cell = tuple(int(math.floor(value / side)) for value in row)
            if self.is_core_cell(cell):
                continue
            covered = False
            for neighbor in self.stencil.neighbors_of(cell):
                if not self._types.get(neighbor, CellType.OTHER).is_core:
                    continue
                for candidate in core_points_by_cell.get(neighbor, ()):
                    sq = 0.0
                    for a, b in zip(row, candidate):
                        delta = float(a) - float(b)
                        sq += delta * delta
                    if sq <= eps_sq:
                        covered = True
                        break
                if covered:
                    break
            if not covered:
                labels[i] = 1
        return labels

    def cells_of_type(self, cell_type: CellType) -> Iterator[Cell]:
        """Iterate over the cells recorded with the given type."""
        return (cell for cell, t in self._types.items() if t is cell_type)

    def items(self) -> Iterable[tuple[Cell, CellType]]:
        """Iterate over (cell, type) pairs."""
        return self._types.items()

    def __contains__(self, cell: Cell) -> bool:
        return tuple(int(c) for c in cell) in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __repr__(self) -> str:
        n_dense = sum(1 for t in self._types.values() if t is CellType.DENSE)
        n_core = sum(1 for t in self._types.values() if t is CellType.CORE)
        return (
            f"CellMap(n_cells={len(self._types)}, dense={n_dense}, "
            f"core={n_core}, other={len(self._types) - n_dense - n_core})"
        )
