"""Grid-tree candidate pruning for neighbor-cell enumeration.

The stencil planner (:func:`repro.core.vectorized.build_cell_adjacency`)
probes every non-empty cell against all ``k_d`` stencil offsets.
``k_d`` grows steeply with dimensionality (Table I: 21, 147, 1433, ...
before the boundary ring) while real grids stay sparse — at d >= 4
almost every probe misses, and the planner's ``m * k_d`` lookups start
to rival the distance kernel itself.

This module replaces enumeration with search, following the grid-tree
idea of GriT-DBSCAN (Huang et al., 2023): index the non-empty cells'
*integer coordinates* in a static k-d-style tree whose nodes carry
coordinate bounding boxes, and for each query cell descend only into
subtrees that could contain a neighbor.  The pruning bound is exact
integer arithmetic, no floats anywhere:

* two cells at offset ``j`` are stencil neighbors iff
  ``sum_i max(0, |j_i| - 1)^2 <= d`` (the boundary-inclusive form of
  Definition 8 — see :mod:`repro.core.neighbors` on why the float
  kernel needs the ``<=``);
* for a subtree whose cells span the coordinate box ``[lo, hi]``, the
  per-dimension offset magnitude from a query cell ``c`` is at least
  ``dist_i = max(0, lo_i - c_i, c_i - hi_i)``, and because the box is
  an axis-aligned product the per-dimension minima are attained
  simultaneously, so
  ``sum_i max(0, dist_i - 1)^2 > d`` proves **no** cell in the subtree
  is a neighbor of ``c`` — the whole subtree is skipped.

Cells in surviving leaves get the exact membership test.  The result
is therefore the *same set* of neighbor pairs the stencil produces,
only found by a different route; per-cell neighbor counts and every
downstream label are bit-identical (adjacency order differs, but the
engines only ever sum integer counts over the set, so order cannot
matter).  ``tests/core/test_celltree.py`` asserts the set equality
directly and the qa fuzzer's ``vectorized_tree`` variant re-checks it
end-to-end against the brute-force oracle.

Traversal is a vectorized frontier BFS: one ``(query, node)`` pair
array per tree level, advanced with NumPy bulk operations — no
per-cell Python recursion.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CellTree", "build_tree_adjacency"]

#: Cells per leaf.  Smaller leaves prune harder but visit more nodes;
#: at 8 the exact leaf tests stay a small multiple of the true
#: neighbor count while the tree stays shallow.
DEFAULT_LEAF_SIZE = 8


def _tree_bump(counters: dict | None, key: str, delta: int) -> None:
    if counters is not None:
        counters[key] = counters.get(key, 0) + int(delta)


class CellTree:
    """Static k-d-style tree over integer epsilon-cell coordinates.

    Args:
        cells: ``(m, d)`` int64 unique cell coordinates.
        leaf_size: Maximum cells per leaf.

    The tree is array-backed (no node objects): parallel arrays hold
    each node's coordinate bounding box, child ids (``-1`` marks a
    leaf), and the half-open span of :attr:`order` listing the cell
    indices the node covers.  Splits cut the widest box dimension at
    the median, so depth is ``O(log m)`` regardless of cell layout.
    """

    def __init__(
        self, cells: np.ndarray, leaf_size: int = DEFAULT_LEAF_SIZE
    ) -> None:
        cells = np.ascontiguousarray(cells, dtype=np.int64)
        if cells.ndim != 2:
            raise ValueError(f"cells must be 2-D, got shape {cells.shape}")
        self.cells = cells
        self.leaf_size = max(1, int(leaf_size))
        m, d = cells.shape
        self.order = np.arange(m, dtype=np.int64)
        lo_list: list[np.ndarray] = []
        hi_list: list[np.ndarray] = []
        left_list: list[int] = []
        right_list: list[int] = []
        start_list: list[int] = []
        end_list: list[int] = []
        if m:
            # Explicit stack; children are allocated before being
            # built, so parent ids are stable when we recurse.
            stack = [(0, m, -1, False)]
            while stack:
                start, end, parent, is_right = stack.pop()
                node_id = len(lo_list)
                sub = cells[self.order[start:end]]
                lo = sub.min(axis=0)
                hi = sub.max(axis=0)
                lo_list.append(lo)
                hi_list.append(hi)
                left_list.append(-1)
                right_list.append(-1)
                start_list.append(start)
                end_list.append(end)
                if parent >= 0:
                    if is_right:
                        right_list[parent] = node_id
                    else:
                        left_list[parent] = node_id
                span = hi - lo
                if end - start > self.leaf_size and span.any():
                    dim = int(np.argmax(span))
                    mid = (start + end) // 2
                    # Median split along the widest dimension keeps
                    # both sides non-empty because the span is > 0.
                    part = np.argpartition(sub[:, dim], mid - start)
                    self.order[start:end] = self.order[start:end][part]
                    stack.append((mid, end, node_id, True))
                    stack.append((start, mid, node_id, False))
        self._lo = (
            np.array(lo_list, dtype=np.int64)
            if lo_list
            else np.empty((0, d), dtype=np.int64)
        )
        self._hi = (
            np.array(hi_list, dtype=np.int64)
            if hi_list
            else np.empty((0, d), dtype=np.int64)
        )
        self._left = np.array(left_list, dtype=np.int64)
        self._right = np.array(right_list, dtype=np.int64)
        self._start = np.array(start_list, dtype=np.int64)
        self._end = np.array(end_list, dtype=np.int64)

    @property
    def n_nodes(self) -> int:
        return int(self._left.shape[0])

    def query_adjacency(
        self,
        queries: np.ndarray,
        counters: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR neighbor lists of ``queries`` against the indexed cells.

        Args:
            queries: ``(q, d)`` int64 cell coordinates.
            counters: Optional dict receiving ``tree.*`` work counters.

        Returns:
            ``(targets, starts)``: the indexed cells that are stencil
            neighbors of ``queries[i]`` (self included when the query
            is indexed) are ``targets[starts[i]:starts[i + 1]]``, as
            indices into the tree's ``cells`` array — the same
            contract as :func:`~repro.core.vectorized.build_cell_adjacency`.
        """
        queries = np.ascontiguousarray(queries, dtype=np.int64)
        n_queries = queries.shape[0]
        d = self.cells.shape[1]
        if n_queries == 0 or self.n_nodes == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros(n_queries + 1, dtype=np.int64),
            )
        hit_sources: list[np.ndarray] = []
        hit_targets: list[np.ndarray] = []
        n_visits = 0
        n_pruned = 0
        n_leaf_tests = 0
        # Frontier of (query index, node id) pairs, one level at a time.
        q_idx = np.arange(n_queries, dtype=np.int64)
        n_idx = np.zeros(n_queries, dtype=np.int64)
        while q_idx.size:
            n_visits += q_idx.size
            # Integer lower bound on the squared cell gap between each
            # query and any cell inside each node's coordinate box.
            qcoords = queries[q_idx]
            lo = self._lo[n_idx]
            hi = self._hi[n_idx]
            dist = np.maximum(lo - qcoords, qcoords - hi)
            np.maximum(dist, 0, out=dist)
            gap = dist - 1
            np.maximum(gap, 0, out=gap)
            bound = np.einsum("ij,ij->i", gap, gap)
            survive = bound <= d
            n_pruned += int(q_idx.size - survive.sum())
            q_idx = q_idx[survive]
            n_idx = n_idx[survive]
            if not q_idx.size:
                break
            left = self._left[n_idx]
            is_leaf = left == -1
            if is_leaf.any():
                leaf_q = q_idx[is_leaf]
                leaf_n = n_idx[is_leaf]
                starts = self._start[leaf_n]
                lens = self._end[leaf_n] - starts
                total = int(lens.sum())
                run_starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
                pos = np.arange(total, dtype=np.int64) - np.repeat(
                    run_starts, lens
                )
                cand = self.order[np.repeat(starts, lens) + pos]
                src = np.repeat(leaf_q, lens)
                # Exact membership test per candidate cell.
                diff = np.abs(self.cells[cand] - queries[src])
                gap = diff - 1
                np.maximum(gap, 0, out=gap)
                exact = np.einsum("ij,ij->i", gap, gap) <= d
                n_leaf_tests += total
                hit_sources.append(src[exact])
                hit_targets.append(cand[exact])
            inner = ~is_leaf
            q_inner = q_idx[inner]
            if q_inner.size:
                q_idx = np.concatenate([q_inner, q_inner])
                n_idx = np.concatenate(
                    [left[inner], self._right[n_idx[inner]]]
                )
            else:
                break
        _tree_bump(counters, "tree.node_visits", n_visits)
        _tree_bump(counters, "tree.subtrees_pruned", n_pruned)
        _tree_bump(counters, "tree.leaf_cell_tests", n_leaf_tests)
        _tree_bump(
            counters, "planner.cell_pairs_examined", n_visits + n_leaf_tests
        )
        if hit_sources:
            sources = np.concatenate(hit_sources)
            targets = np.concatenate(hit_targets)
        else:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
        order = np.argsort(sources, kind="stable")
        counts = np.bincount(sources, minlength=n_queries)
        return (
            targets[order],
            np.concatenate(([0], np.cumsum(counts))).astype(np.int64),
        )


def build_tree_adjacency(
    cells: np.ndarray,
    counters: dict | None = None,
    leaf_size: int = DEFAULT_LEAF_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Tree-pruned drop-in for ``build_cell_adjacency``.

    Indexes ``cells`` in a :class:`CellTree` and queries every cell
    against it.  Returns the identical CSR *set* of neighbor pairs as
    the stencil builder (order within each row differs; the engines
    never depend on it), without ever enumerating the ``k_d`` offset
    stencil.
    """
    cells = np.ascontiguousarray(cells, dtype=np.int64)
    tree = CellTree(cells, leaf_size=leaf_size)
    _tree_bump(counters, "tree.nodes", tree.n_nodes)
    return tree.query_adjacency(cells, counters=counters)
