"""Exact out-of-sample classification against a fitted DBSCOUT model.

DBSCOUT's broadcast core/dense cell map (Algorithms 2/4) is exactly the
structure needed to answer "is this new point an outlier?" without
refitting: by Definition 3 a point is an inlier iff it lies within
``eps`` of some core point, and every core point within ``eps`` of a
query point lives in one of the ``k_d`` stencil-neighboring cells of
the query's cell (Definition 8).  A fitted detector therefore reduces
to the core points grouped by their epsilon-cell — the
:class:`CoreModel` — and classification of unseen points is an exact
O(k_d)-cell check:

1. a query whose cell is itself a *core cell* (dense or holding a core
   point) is an inlier outright, because any two points sharing a
   diagonal-``eps`` cell are within ``eps`` of each other (Lemma 1);
2. otherwise the query is compared against the core points of its
   neighboring core cells with the same squared-distance accumulation
   order as the fit engines, so ``classify`` reproduces ``fit`` labels
   *bit-identically* on the training data.

The model is what :mod:`repro.serve` persists and serves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.grid import Grid, cell_side_length, validate_points
from repro.core.neighbors import NeighborStencil
from repro.exceptions import DataValidationError, ParameterError
from repro.types import DetectionResult

__all__ = ["CoreModel", "classify"]


def _match_rows(
    rows: np.ndarray, table: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Match ``rows + offset`` against ``table`` for every stencil offset.

    Args:
        rows: ``(q, d)`` integer cell coordinates (unique query cells).
        table: ``(m, d)`` integer cell coordinates (unique core cells).
        offsets: ``(k_d, d)`` stencil offsets.

    Returns:
        ``(sources, hits, own)``: flat parallel arrays where
        ``table[hits[j]]`` is a stencil neighbor of ``rows[sources[j]]``
        (pairs in offset-major order), plus ``own`` — a ``(q,)`` array
        holding the index of each row in ``table`` (``-1`` when absent,
        i.e. the zero-offset match).

    Uses a packed-int64 sort/searchsorted fast path shared between the
    two cell sets and falls back to a dictionary when the combined
    coordinate spans exceed 62 bits.
    """
    n_rows, n_dims = rows.shape
    n_table = table.shape[0]
    own = np.full(n_rows, -1, dtype=np.int64)
    if n_rows == 0 or n_table == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            own,
        )
    packer = _shared_packer(rows, table, offsets)
    if packer is None:
        lookup = {
            tuple(int(c) for c in row): i for i, row in enumerate(table)
        }
        sources_list: list[int] = []
        hits_list: list[int] = []
        offset_tuples = [tuple(int(j) for j in off) for off in offsets]
        row_tuples = [tuple(int(c) for c in row) for row in rows]
        for off in offset_tuples:
            for i, cell in enumerate(row_tuples):
                hit = lookup.get(tuple(c + j for c, j in zip(cell, off)))
                if hit is not None:
                    sources_list.append(i)
                    hits_list.append(hit)
                    if not any(off):
                        own[i] = hit
        return (
            np.array(sources_list, dtype=np.int64),
            np.array(hits_list, dtype=np.int64),
            own,
        )
    table_keys = packer(table)
    sort_order = np.argsort(table_keys, kind="stable")
    sorted_keys = table_keys[sort_order]
    all_sources: list[np.ndarray] = []
    all_hits: list[np.ndarray] = []
    for off in offsets:
        candidate_keys = packer(rows + off)
        positions = np.searchsorted(sorted_keys, candidate_keys)
        positions = np.minimum(positions, n_table - 1)
        hit = sorted_keys[positions] == candidate_keys
        sources = np.flatnonzero(hit)
        hits = sort_order[positions[hit]]
        all_sources.append(sources)
        all_hits.append(hits)
        if not off.any():
            own[sources] = hits
    return np.concatenate(all_sources), np.concatenate(all_hits), own


def _shared_packer(
    rows: np.ndarray, table: np.ndarray, offsets: np.ndarray
):
    """Packer covering both cell sets plus any stencil shift, or ``None``.

    Mirrors ``repro.core.vectorized._make_packer`` but sizes the
    per-dimension bit fields over the union of the two coordinate sets
    so one key space serves the query-to-core matching.
    """
    reach = int(np.abs(offsets).max()) if offsets.size else 0
    mins = np.minimum(rows.min(axis=0), table.min(axis=0)) - reach
    maxs = np.maximum(rows.max(axis=0), table.max(axis=0)) + reach
    spans = maxs - mins + 1
    bits = [int(span).bit_length() + 1 for span in spans]
    if sum(bits) > 62:
        return None

    def packer(cells: np.ndarray) -> np.ndarray:
        keys = np.zeros(cells.shape[0], dtype=np.int64)
        for dim in range(cells.shape[1]):
            keys = (keys << bits[dim]) | (cells[:, dim] - mins[dim])
        return keys

    return packer


@dataclass(frozen=True)
class CoreModel:
    """A fitted DBSCOUT detector reduced to its servable essence.

    The model is the core points grouped by epsilon-cell: enough to
    classify any point exactly (see the module docstring), cheap to
    persist (:mod:`repro.serve.artifact`), and typically far smaller
    than the training data.

    Attributes:
        eps: Neighborhood radius the detector was fitted with.
        min_pts: Density threshold the detector was fitted with.
        n_dims: Dimensionality of the space.
        core_points: ``(k, d)`` float64 core-point coordinates, stored
            contiguously grouped by cell.
        core_cells: ``(m, d)`` int64 coordinates of the unique cells
            holding core points (every such cell is a core cell, and
            every core cell holds a core point).
        core_starts: ``(m + 1,)`` int64 CSR offsets: the core points of
            ``core_cells[i]`` are
            ``core_points[core_starts[i]:core_starts[i + 1]]``.
        n_train: Number of training points the detector was fitted on.
        engine: Name of the engine that produced the fit.
        metadata: Free-form facts carried along (artifact name, ...).
    """

    eps: float
    min_pts: int
    n_dims: int
    core_points: np.ndarray
    core_cells: np.ndarray
    core_starts: np.ndarray
    n_train: int = 0
    engine: str = "vectorized"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        points = np.ascontiguousarray(self.core_points, dtype=np.float64)
        cells = np.ascontiguousarray(self.core_cells, dtype=np.int64)
        starts = np.ascontiguousarray(self.core_starts, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != self.n_dims:
            raise ParameterError(
                f"core_points must have shape (k, {self.n_dims}), "
                f"got {points.shape}"
            )
        if cells.ndim != 2 or cells.shape[1] != self.n_dims:
            raise ParameterError(
                f"core_cells must have shape (m, {self.n_dims}), "
                f"got {cells.shape}"
            )
        if (
            starts.ndim != 1
            or starts.shape[0] != cells.shape[0] + 1
            or (cells.shape[0] and starts[0] != 0)
            or (cells.shape[0] and starts[-1] != points.shape[0])
            or (np.diff(starts) < 1).any()
        ):
            raise ParameterError(
                "core_starts must be a monotone CSR offset array mapping "
                "every core cell to a non-empty core-point run"
            )
        object.__setattr__(self, "core_points", points)
        object.__setattr__(self, "core_cells", cells)
        object.__setattr__(self, "core_starts", starts)

    # -- construction --------------------------------------------------

    @classmethod
    def from_fit(
        cls,
        points: np.ndarray,
        result: DetectionResult,
        eps: float,
        min_pts: int,
        engine: str = "vectorized",
        **metadata: Any,
    ) -> "CoreModel":
        """Build the servable model from a fit's training data and result.

        Args:
            points: The training points the detector was fitted on.
            result: The :class:`DetectionResult` of that fit (must
                carry a ``core_mask``).
            eps: Neighborhood radius used for the fit.
            min_pts: Density threshold used for the fit.
            engine: Engine name recorded in the model.
            **metadata: Extra facts to carry in :attr:`metadata`.
        """
        array = validate_points(points)
        if result.core_mask is None:
            raise ParameterError(
                "result has no core_mask; only density-based fits "
                "(DBSCOUT engines) can be turned into a CoreModel"
            )
        if result.n_points != array.shape[0]:
            raise ParameterError(
                f"result covers {result.n_points} points but "
                f"{array.shape[0]} were given"
            )
        core = array[result.core_mask]
        if core.shape[0] == 0:
            n_dims = array.shape[1]
            return cls(
                eps=float(eps),
                min_pts=int(min_pts),
                n_dims=n_dims,
                core_points=np.empty((0, n_dims)),
                core_cells=np.empty((0, n_dims), dtype=np.int64),
                core_starts=np.zeros(1, dtype=np.int64),
                n_train=array.shape[0],
                engine=engine,
                metadata=dict(metadata),
            )
        grid = Grid(core, eps)
        order, _ = grid.members_csr()
        starts = np.concatenate(
            ([0], np.cumsum(grid.counts))
        ).astype(np.int64)
        return cls(
            eps=float(eps),
            min_pts=int(min_pts),
            n_dims=array.shape[1],
            core_points=core[order],
            core_cells=grid.cells,
            core_starts=starts,
            n_train=array.shape[0],
            engine=engine,
            metadata=dict(metadata),
        )

    # -- views ---------------------------------------------------------

    @property
    def side(self) -> float:
        """Cell side length ``eps / sqrt(d)`` of the fitted grid."""
        return cell_side_length(self.eps, self.n_dims)

    @property
    def quality(self) -> str:
        """The quality preset of the fit this model came from.

        ``"exact"`` (also for legacy models with no recorded config),
        ``"balanced"``, or ``"fast"``.  Approximate models hold the
        approximate tier's core subset; classify against one flags a
        superset of the exact outliers (recall 1.0, reduced precision).
        """
        return str(self.metadata.get("quality", "exact"))

    @property
    def quality_config(self) -> dict[str, Any]:
        """Validated quality config carried from the fit (may be empty)."""
        from repro.core.approx import validate_quality_config

        return validate_quality_config(self.metadata)

    @property
    def n_core_points(self) -> int:
        """Number of stored core points."""
        return int(self.core_points.shape[0])

    @property
    def n_core_cells(self) -> int:
        """Number of cells holding core points."""
        return int(self.core_cells.shape[0])

    def nbytes(self) -> int:
        """Approximate in-memory size of the model arrays."""
        return int(
            self.core_points.nbytes
            + self.core_cells.nbytes
            + self.core_starts.nbytes
        )

    def subsample(
        self, sample_fraction: float, seed: int | None = 0
    ) -> "CoreModel":
        """A smaller model holding a seeded subset of the core points.

        The serving-side form of the approximate tier's one-sided
        trade: classifying against a core subset can only flag *more*
        outliers, never miss one the full model would flag, so outlier
        recall against the full model stays 1.0 while memory and
        per-query distance work shrink with the fraction.  The sampled
        fraction and seed are recorded in the returned model's
        metadata (``serving_sample_fraction`` / ``serving_seed``).

        Raises:
            ParameterError: On an invalid fraction or seed.
        """
        from repro.core.approx import (
            normalize_sample_fraction,
            normalize_seed,
        )

        fraction = normalize_sample_fraction(sample_fraction)
        seed = normalize_seed(seed)
        n_core = self.n_core_points
        metadata = {
            **self.metadata,
            "serving_sample_fraction": fraction,
            "serving_seed": seed,
        }
        if n_core == 0:
            return CoreModel(
                eps=self.eps, min_pts=self.min_pts, n_dims=self.n_dims,
                core_points=self.core_points, core_cells=self.core_cells,
                core_starts=self.core_starts, n_train=self.n_train,
                engine=self.engine, metadata=metadata,
            )
        n_keep = min(max(int(np.ceil(fraction * n_core)), 1), n_core)
        rng = np.random.default_rng(seed)
        keep = np.sort(rng.choice(n_core, size=n_keep, replace=False))
        # Cell of each kept point, via the CSR offsets; cells emptied
        # by the sample are dropped so the CSR invariant holds.
        cell_ids = (
            np.searchsorted(self.core_starts, keep, side="right") - 1
        )
        kept_cells, counts = np.unique(cell_ids, return_counts=True)
        return CoreModel(
            eps=self.eps,
            min_pts=self.min_pts,
            n_dims=self.n_dims,
            core_points=self.core_points[keep],
            core_cells=self.core_cells[kept_cells],
            core_starts=np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64),
            n_train=self.n_train,
            engine=self.engine,
            metadata=metadata,
        )

    # -- classification ------------------------------------------------

    def classify(
        self,
        points: np.ndarray,
        counters: dict[str, int] | None = None,
        kernel: Any = "auto",
    ) -> np.ndarray:
        """Exact labels for (possibly unseen) points: 1 outlier, 0 inlier.

        A point is an outlier iff every stored core point is strictly
        farther than ``eps`` (Definition 3).  On the training data this
        reproduces the ``fit`` labels bit-identically, for both
        engines.

        Args:
            points: ``(n, d)`` array of query points.
            counters: Optional dict accumulating
                ``distance_computations`` / ``cells_settled_core`` /
                ``cells_no_candidates`` work counters.
            kernel: Distance-kernel selection (see
                :func:`repro.core.kernels.resolve_kernel`); labels are
                bit-identical for every choice.

        Returns:
            ``(n,)`` int64 label array matching
            :meth:`repro.types.DetectionResult.labels`.
        """
        from repro.core.kernels import resolve_kernel
        from repro.core.vectorized import _flat_ranges

        # An empty query batch — (0, d), (0,), [] — has exactly zero
        # labels, whatever its shape claims about dimensionality.
        probe = np.asarray(points, dtype=np.float64)
        if probe.size == 0 and probe.ndim <= 2:
            return np.zeros(0, dtype=np.int64)
        array = validate_points(points)
        if array.shape[1] != self.n_dims:
            raise DataValidationError(
                f"query points have {array.shape[1]} dims, "
                f"model was fitted on {self.n_dims}"
            )
        n_queries = array.shape[0]
        labels = np.zeros(n_queries, dtype=np.int64)
        if counters is None:
            counters = {}
        counters.setdefault("distance_computations", 0)
        counters.setdefault("cells_settled_core", 0)
        counters.setdefault("cells_no_candidates", 0)
        if self.n_core_points == 0:
            # No core points anywhere: every point is an outlier.
            labels[:] = 1
            return labels
        qgrid = Grid(array, self.eps)
        stencil = NeighborStencil(self.n_dims)
        sources, hits, own = _match_rows(
            qgrid.cells, self.core_cells, stencil.offsets
        )
        # Lemma 1 shortcut: a query in a core cell shares a
        # diagonal-eps cell with a core point, hence is an inlier —
        # exactly how fit settles points of core cells, so the
        # bit-consistency on training data is by construction.
        settled = own >= 0
        counters["cells_settled_core"] += int(settled.sum())
        keep = ~settled[sources]
        sources, hits = sources[keep], hits[keep]
        # Candidate core points per unsettled query cell, CSR-grouped.
        order_pairs = np.argsort(sources, kind="stable")
        sources, hits = sources[order_pairs], hits[order_pairs]
        per_hit = (
            self.core_starts[hits + 1] - self.core_starts[hits]
        )
        pair_lens = np.bincount(
            sources, minlength=qgrid.n_cells
        )
        c_sizes = np.bincount(
            sources, weights=per_hit, minlength=qgrid.n_cells
        ).astype(np.int64)
        cands_flat = _flat_ranges(self.core_starts[hits], per_hit)
        work = np.flatnonzero(~settled)
        counters["cells_no_candidates"] += int(
            (pair_lens[work] == 0).sum()
        )
        qorder, qstarts = qgrid.members_csr()
        members_flat = qorder[
            _flat_ranges(qstarts[work], qgrid.counts[work])
        ]
        # One concatenated array lets the fit engines' exact distance
        # kernel run unchanged: targets index the query block,
        # candidates index the core block at offset n_queries.
        stacked = np.concatenate([array, self.core_points], axis=0)
        counts = resolve_kernel(kernel, counters).segmented_pair_counts(
            stacked,
            members_flat,
            qgrid.counts[work],
            cands_flat + n_queries,
            c_sizes[work],
            self.eps * self.eps,
            counters,
        )
        labels[members_flat[counts == 0]] = 1
        return labels

    def classify_mask(self, points: np.ndarray) -> np.ndarray:
        """Boolean outlier mask form of :meth:`classify`."""
        return self.classify(points).astype(bool)

    def __repr__(self) -> str:
        return (
            f"CoreModel(eps={self.eps}, min_pts={self.min_pts}, "
            f"n_dims={self.n_dims}, n_core_points={self.n_core_points}, "
            f"n_core_cells={self.n_core_cells}, n_train={self.n_train})"
        )


def classify(model: CoreModel, points: np.ndarray) -> np.ndarray:
    """Exact out-of-sample labels (1 outlier, 0 inlier) for ``points``.

    Functional form of :meth:`CoreModel.classify`; see there for the
    guarantees.
    """
    return model.classify(points)
