"""Public DBSCOUT API.

:class:`DBSCOUT` is the estimator facade over the two engines:

* ``engine="vectorized"`` (default) — single-machine NumPy engine, the
  fast path for large datasets;
* ``engine="distributed"`` — the SparkLite transcription of the paper's
  Algorithms 1-5, parameterized by partition count and join strategy.

Both are exact and produce identical results; the engine parity is
enforced by the test suite.  ``quality="balanced"`` / ``"fast"`` swap
the vectorized engine for the approximate tier
(:mod:`repro.core.approx`): faster, never misses an exact outlier, and
self-reports precision/recall/F1 against the exact labels.

Example:
    >>> import numpy as np
    >>> from repro import DBSCOUT
    >>> rng = np.random.default_rng(0)
    >>> cluster = rng.normal(0.0, 0.3, size=(200, 2))
    >>> lone = np.array([[9.0, 9.0]])
    >>> result = DBSCOUT(eps=0.5, min_pts=10).fit(np.vstack([cluster, lone]))
    >>> bool(result.outlier_mask[-1])
    True
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.approx import (
    ApproxEngine,
    normalize_quality,
    normalize_sample_fraction,
    normalize_seed,
)
from repro.core.classify import CoreModel
from repro.core.distributed import DistributedEngine
from repro.core.validation import validate_parameters
from repro.core.vectorized import VectorizedEngine
from repro.exceptions import NotFittedError, ParameterError
from repro.types import DetectionResult

__all__ = ["DBSCOUT", "detect_outliers"]

_ENGINES = ("vectorized", "distributed")


class DBSCOUT:
    """Density-based scalable outlier detector (the paper's algorithm).

    A point is an outlier iff it lies strictly farther than ``eps``
    from every core point, where a core point has at least ``min_pts``
    points (itself included) within distance ``eps`` (Definitions 2-3).

    Args:
        eps: Neighborhood radius (positive).
        min_pts: Density threshold (positive integer).
        engine: ``"vectorized"`` or ``"distributed"``.
        quality: ``"exact"`` (default; the proven bit-exact pipeline),
            ``"balanced"``, or ``"fast"``.  The approximate presets
            (:mod:`repro.core.approx`) evaluate density only for a
            seeded sample and prefilter cell pairs with random
            projections; they may flag extra outliers but never miss
            one — outlier recall vs the exact engine is 1.0 by
            construction — and every approximate run audits itself,
            reporting ``approx.precision`` / ``approx.recall`` /
            ``approx.f1`` in its stats.  Only the vectorized engine
            supports approximate presets.
        sample_fraction: Override the preset's sample fraction
            (``(0, 1]``; rejected when ``quality="exact"``).
        seed: RNG seed for the approximate tier (non-negative int;
            default 0).  A fixed seed makes approximate runs
            bit-identically reproducible; exact runs are
            deterministic regardless.
        **engine_options: Extra keyword arguments per engine.  The
            vectorized engine accepts ``n_jobs`` (worker processes for
            the distance kernel; ``1`` = serial, ``-1`` = all cores),
            ``kernel`` (``"auto"``/``"numpy"``/``"c"`` distance-kernel
            tier), ``pair_budget`` (kernel batch size in point pairs),
            ``cell_planner`` (``"auto"``/``"stencil"``/``"tree"``
            neighbor-cell adjacency builder), and ``pruning``
            (cell-geometry pruning toggle) — results are bit-identical
            for every combination.  The distributed engine accepts
            ``num_partitions``, ``max_workers``, ``join_strategy``,
            ``context``, ``kernel``, ``executor`` (``"local"`` or
            ``"net"`` — drive registered remote workers over TCP), and
            ``partitioner`` (``"rows"`` or ``"cells"`` — spatially
            aware grid sharding); labels are bit-identical for every
            combination of these too.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        engine: str = "vectorized",
        quality: str = "exact",
        sample_fraction: float | None = None,
        seed: int | None = None,
        **engine_options: Any,
    ) -> None:
        self.eps, self.min_pts = validate_parameters(eps, min_pts)
        if engine not in _ENGINES:
            raise ParameterError(
                f"engine must be one of {_ENGINES}, got {engine!r}"
            )
        self.quality = normalize_quality(quality)
        self.seed = normalize_seed(seed)
        if self.quality == "exact":
            if sample_fraction is not None:
                raise ParameterError(
                    "sample_fraction only applies to the approximate "
                    "presets; quality='exact' is never subsampled "
                    "(pass quality='balanced' or 'fast')"
                )
            self.sample_fraction: float | None = None
        else:
            if engine != "vectorized":
                raise ParameterError(
                    f"quality={self.quality!r} requires the vectorized "
                    "engine; the distributed engine is exact-only"
                )
            self.sample_fraction = (
                None
                if sample_fraction is None
                else normalize_sample_fraction(sample_fraction)
            )
        if engine == "vectorized":
            n_jobs = engine_options.pop("n_jobs", 1)
            kernel = engine_options.pop("kernel", "auto")
            pair_budget = engine_options.pop("pair_budget", None)
            cell_planner = engine_options.pop("cell_planner", "auto")
            pruning = engine_options.pop("pruning", True)
            approx_options = {}
            if self.quality != "exact":
                approx_options = {
                    key: engine_options.pop(key)
                    for key in (
                        "sample_method", "rp_prefilter", "n_projections",
                        "rp_margin", "audit",
                    )
                    if key in engine_options
                }
            if engine_options:
                raise ParameterError(
                    "the vectorized engine accepts only the n_jobs, "
                    "kernel, pair_budget, cell_planner, and pruning "
                    "options (plus sample_method, rp_prefilter, "
                    "n_projections, rp_margin, and audit with an "
                    "approximate quality preset); got "
                    + ", ".join(sorted(engine_options))
                )
            # The engines' normalizers raise ParameterError for invalid
            # n_jobs / kernel / pair_budget / cell_planner values.
            if self.quality == "exact":
                self._engine: (
                    VectorizedEngine | ApproxEngine | DistributedEngine
                ) = VectorizedEngine(
                    n_jobs=n_jobs,
                    pruning=pruning,
                    kernel=kernel,
                    pair_budget=pair_budget,
                    cell_planner=cell_planner,
                )
            else:
                self._engine = ApproxEngine(
                    quality=self.quality,
                    sample_fraction=self.sample_fraction,
                    seed=self.seed,
                    n_jobs=n_jobs,
                    pruning=pruning,
                    kernel=kernel,
                    pair_budget=pair_budget,
                    cell_planner=cell_planner,
                    **approx_options,
                )
                self.sample_fraction = self._engine.sample_fraction
        else:
            self._engine = DistributedEngine(**engine_options)
        self.engine_name = engine
        self._result: DetectionResult | None = None
        self._fit_points: np.ndarray | None = None
        self._core_model: CoreModel | None = None

    def fit(self, points: np.ndarray) -> DetectionResult:
        """Detect outliers in ``points`` and return the result.

        The result is also retained on the estimator (see
        :attr:`result_`) for sklearn-style access, along with the
        training points so :meth:`classify` can label unseen data.
        """
        self._result = self._engine.detect(points, self.eps, self.min_pts)
        self._fit_points = points
        self._core_model = None
        return self._result

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Fit and return labels: 1 for outliers, 0 for inliers."""
        return self.fit(points).labels()

    def classify(self, points: np.ndarray) -> np.ndarray:
        """Exact labels for unseen points without refitting.

        A point is an outlier iff it lies strictly farther than
        ``eps`` from every core point of the fitted model (Definition
        3); on the training data this reproduces the :meth:`fit`
        labels bit-identically.  See
        :class:`repro.core.classify.CoreModel`.
        """
        return self.core_model_.classify(
            points, kernel=getattr(self._engine, "kernel", "auto")
        )

    @property
    def result_(self) -> DetectionResult:
        """The result of the last :meth:`fit` call."""
        if self._result is None:
            raise NotFittedError("call fit() before accessing result_")
        return self._result

    @property
    def core_model_(self) -> CoreModel:
        """The servable :class:`CoreModel` of the last :meth:`fit` call.

        Built lazily from the retained training points and cached; this
        is what :mod:`repro.serve` persists as a detector artifact.
        """
        if self._result is None or self._fit_points is None:
            raise NotFittedError("call fit() before accessing core_model_")
        if self._core_model is None:
            quality_config = (
                self._engine.quality_config()
                if isinstance(self._engine, ApproxEngine)
                else {"quality": "exact"}
            )
            self._core_model = CoreModel.from_fit(
                self._fit_points,
                self._result,
                self.eps,
                self.min_pts,
                engine=getattr(self._engine, "name", self.engine_name),
                **quality_config,
            )
        return self._core_model

    def __repr__(self) -> str:
        quality = (
            "" if self.quality == "exact" else f", quality={self.quality!r}"
        )
        return (
            f"DBSCOUT(eps={self.eps}, min_pts={self.min_pts}, "
            f"engine={self.engine_name!r}{quality})"
        )


def detect_outliers(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    engine: str = "vectorized",
    **engine_options: Any,
) -> DetectionResult:
    """Functional one-shot form of :class:`DBSCOUT`."""
    return DBSCOUT(eps, min_pts, engine=engine, **engine_options).fit(points)
