"""Distance-based (Knorr-Ng) outliers on the DBSCOUT grid.

Extension beyond the paper: the epsilon-cell grid and neighbor stencil
that make DBSCOUT linear also accelerate the classic *distance-based*
outlier definition of Knorr & Ng (VLDB 1998), which the paper cites as
related work:

    A point ``p`` is a DB(fraction, radius)-outlier if at least
    ``fraction`` of the dataset lies strictly farther than ``radius``
    from ``p`` — equivalently, fewer than ``(1 - fraction) * n``
    points (self included) lie within ``radius``.

The neighbor-counting core of DBSCOUT answers this directly: build the
grid with ``eps = radius``, then

* any cell holding at least the threshold is entirely non-outlier
  (the Lemma 1 argument);
* any cell whose neighborhood holds fewer than the threshold is
  entirely outlier (the pruning argument);
* only the remaining cells need actual distance counting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.grid import Grid, validate_points
from repro.core.neighbors import NeighborStencil
from repro.core.vectorized import _CellAdjacency
from repro.exceptions import ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["DistanceBasedDetector"]


class DistanceBasedDetector:
    """DB(fraction, radius) outlier detection with grid acceleration.

    Args:
        radius: Neighborhood radius ``D``.
        fraction: Required fraction of far-away points in (0, 1);
            typical values are close to 1 (e.g. 0.95).
    """

    def __init__(self, radius: float, fraction: float) -> None:
        if not (isinstance(radius, (int, float)) and math.isfinite(radius)):
            raise ParameterError(f"radius must be finite, got {radius!r}")
        if radius <= 0:
            raise ParameterError(f"radius must be positive, got {radius}")
        if not 0.0 < fraction < 1.0:
            raise ParameterError(
                f"fraction must be in (0, 1), got {fraction}"
            )
        self.radius = float(radius)
        self.fraction = float(fraction)

    def threshold(self, n_points: int) -> int:
        """Minimum within-radius count (self included) of a non-outlier."""
        return int(math.floor((1.0 - self.fraction) * n_points)) + 1

    def detect(self, points: np.ndarray) -> DetectionResult:
        """Flag every DB(fraction, radius)-outlier, exactly."""
        array = validate_points(points)
        n_points = array.shape[0]
        if n_points == 0:
            return DetectionResult(
                n_points=0, outlier_mask=np.zeros(0, dtype=bool)
            )
        threshold = self.threshold(n_points)
        radius_sq = self.radius * self.radius
        recorder = RunRecorder(
            engine="distance_based",
            params={"radius": self.radius, "fraction": self.fraction},
            context={
                "algorithm": "knorr_ng",
                "radius": self.radius,
                "fraction": self.fraction,
                "threshold": threshold,
            },
        )
        with recorder.activate():
            with recorder.span("grid"):
                grid = Grid(array, self.radius)
                stencil = NeighborStencil(grid.n_dims)
                adjacency = _CellAdjacency(grid, stencil)

            outlier_mask = np.zeros(n_points, dtype=bool)
            n_cells_counted = 0
            with recorder.span("outliers"):
                for cell_index in range(grid.n_cells):
                    members = grid.cell_members(cell_index)
                    if int(grid.counts[cell_index]) >= threshold:
                        continue  # whole cell is within radius of itself
                    neighbor_cells = adjacency.neighbors(cell_index)
                    if int(grid.counts[neighbor_cells].sum()) < threshold:
                        # Cannot reach the threshold: entirely outlier.
                        outlier_mask[members] = True
                        continue
                    n_cells_counted += 1
                    candidates = np.concatenate(
                        [grid.cell_members(nc) for nc in neighbor_cells]
                    )
                    diffs = (
                        array[members][:, None, :]
                        - array[candidates][None, :, :]
                    )
                    sq = np.einsum("ijk,ijk->ij", diffs, diffs)
                    counts = (sq <= radius_sq).sum(axis=1)
                    outlier_mask[members[counts < threshold]] = True
        recorder.add_context(
            n_cells=grid.n_cells, cells_counted=n_cells_counted
        )
        record = recorder.finish(n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=outlier_mask,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )
