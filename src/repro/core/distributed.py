"""Distributed DBSCOUT engine: Algorithms 1-5 on the SparkLite substrate.

This is a faithful transcription of the paper's five phases into the
Spark transformation vocabulary:

1. *Grid partitioning* (Algorithm 1) — ``MAP`` each point to its cell.
2. *Dense cell map* (Algorithm 2) — word-count per cell
   (``MAP`` + ``REDUCEBYKEY``), classify, ``BROADCAST``.
3. *Core points* (Algorithm 3) — Lemma 1 shortcut for dense cells;
   for the rest, ``FLATMAP`` candidate pairs onto neighbor cells,
   ``JOIN`` with the grid, count distances ``<= eps``, ``FILTER`` by
   ``min_pts``.
4. *Core cell map* (Algorithm 4) — upgrade cells holding core points,
   re-``BROADCAST``.
5. *Outliers* (Algorithm 5) — points of non-core cells without core
   neighbors are outliers outright; the rest are joined against core
   points of neighboring core cells and kept iff every distance
   exceeds ``eps``.

Three join strategies mirror Section III-G:

* ``"plain"`` — the textbook record-level JOIN of Algorithms 3/5;
* ``"group"`` — *grouping before joining*: the grid side is
  ``GROUPBYKEY``-ed first, which both shrinks one join operand and
  enables early termination (stop counting at ``min_pts``; stop
  scanning on the first covering core point).  This is the strategy
  the paper uses in all performance experiments.
* ``"broadcast"`` — *broadcast join*: the points-to-check are collected
  into a map that is broadcast, eliminating the shuffle join entirely.
  Best for large ``eps`` (few points to check); can exhaust memory.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.cellmap import CellMap, CellType
from repro.core.grid import (
    cell_side_length,
    check_grid_domain,
    validate_points,
)
from repro.core.kernels import Kernel, normalize_kernel, resolve_kernel
from repro.core.neighbors import NeighborStencil
from repro.core.validation import validate_parameters
from repro.exceptions import ParameterError
from repro.obs import RunRecorder
from repro.sparklite import CellPartitioner, Context, EngineMetrics, RDD
from repro.types import DetectionResult

__all__ = ["DistributedEngine", "JOIN_STRATEGIES", "PARTITIONERS"]

JOIN_STRATEGIES = ("group", "plain", "broadcast")

#: How phase 1 shards the grid across partitions: ``"rows"`` slices
#: the input row range evenly (the historical default); ``"cells"``
#: routes whole grid cells by spatial block
#: (:class:`~repro.sparklite.CellPartitioner`), so the grouped joins
#: of phases 3/5 find the grid side already partitioned by cell and
#: skip that shuffle.
PARTITIONERS = ("rows", "cells")

Cell = tuple[int, ...]
#: A grid record is ``(cell, (point_index, point_coordinates))``.
Point = tuple[int, tuple[float, ...]]


class DistributedEngine:
    """Exact DBSCOUT over SparkLite RDDs.

    Args:
        num_partitions: Number of RDD partitions (the x-axis of Fig. 13).
        max_workers: Executor threads for the SparkLite context.
        join_strategy: One of :data:`JOIN_STRATEGIES`; see module docs.
        context: Optional externally managed context.  Its
            ``context.metrics`` keep accumulating across fits (the
            cumulative cluster view); each ``DetectionResult`` reports
            this run's *delta* in ``stats``/``record``.
        kernel: Distance-kernel tier for the per-record tasks
            (``"auto"``/``"numpy"``/``"c"`` or a
            :class:`~repro.core.kernels.Kernel`); labels are
            bit-identical for every choice.
        executor: ``"local"`` (default) or ``"net"`` — forwarded to
            the engine-owned :class:`~repro.sparklite.Context`.  With
            ``"net"`` the engine drives registered remote workers (see
            :mod:`repro.sparklite.netexec`); labels are bit-identical
            to local execution.  Incompatible with an explicit
            ``context`` whose executor differs.
        partitioner: One of :data:`PARTITIONERS` — how the grid is
            sharded (``"cells"`` enables the spatially-aware
            :class:`~repro.sparklite.CellPartitioner`).  Labels are
            identical either way; only data movement changes.
    """

    name = "distributed"

    def __init__(
        self,
        num_partitions: int = 8,
        max_workers: int = 1,
        join_strategy: str = "group",
        context: Context | None = None,
        kernel: str | Kernel | None = "auto",
        executor: str | None = None,
        partitioner: str = "rows",
    ) -> None:
        if join_strategy not in JOIN_STRATEGIES:
            raise ParameterError(
                f"join_strategy must be one of {JOIN_STRATEGIES}, "
                f"got {join_strategy!r}"
            )
        if num_partitions < 1:
            raise ParameterError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        if partitioner not in PARTITIONERS:
            raise ParameterError(
                f"partitioner must be one of {PARTITIONERS}, "
                f"got {partitioner!r}"
            )
        self.num_partitions = int(num_partitions)
        self.join_strategy = join_strategy
        self.kernel = normalize_kernel(kernel)
        self.partitioner = partitioner
        self._cell_partitioner = (
            CellPartitioner(self.num_partitions)
            if partitioner == "cells"
            else None
        )
        self._owns_context = context is None
        if context is not None:
            if executor is not None and executor != context.executor:
                raise ParameterError(
                    f"executor={executor!r} conflicts with the supplied "
                    f"context's executor={context.executor!r}"
                )
            self.context = context
        else:
            self.context = Context(
                default_parallelism=num_partitions,
                max_workers=max_workers,
                executor=executor or "local",
            )
        self.executor = self.context.executor

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the engine-owned context (the net driver's listener).

        No-op for externally supplied contexts — their owner closes
        them — and always safe to call repeatedly.
        """
        if self._owns_context:
            self.context.close()

    def detect(
        self, points: np.ndarray, eps: float, min_pts: int
    ) -> DetectionResult:
        """Run the five-phase DBSCOUT pipeline and return the result."""
        array = validate_points(points)
        eps, min_pts = validate_parameters(eps, min_pts)
        n_points = array.shape[0]
        if n_points == 0:
            return DetectionResult(
                n_points=0,
                outlier_mask=np.zeros(0, dtype=bool),
                core_mask=np.zeros(0, dtype=bool),
            )
        n_dims = array.shape[1]
        stencil = NeighborStencil(n_dims)
        kernel_counters: dict[str, int] = {}
        kernel = resolve_kernel(self.kernel, kernel_counters)
        recorder = RunRecorder(
            engine=self.name,
            params={"eps": eps, "min_pts": min_pts},
            context={
                "engine": self.name,
                "join_strategy": self.join_strategy,
                "num_partitions": self.num_partitions,
                "kernel": kernel.name,
                "executor": self.executor,
                "partitioner": self.partitioner,
            },
        )
        # With an externally supplied context, the context metrics keep
        # accumulating across fits (the cumulative cluster view); the
        # run record and stats report this run's delta only.
        metrics_before = self.context.metrics.snapshot()

        with recorder.activate():
            # Phase 1: grid partitioning and point-cell assignment.
            with recorder.span("grid"):
                grid = self._create_grid(array, eps).cache()

            # Phase 2: dense cell map construction.
            with recorder.span("dense_cell_map"):
                cell_map = self._build_dense_cell_map(
                    grid, min_pts, stencil
                )

            # Phase 3: core points identification.
            with recorder.span("core_points"):
                core_points = self._find_core_points(
                    grid, eps, min_pts, cell_map, kernel
                ).cache()
                core_records = core_points.collect()

            # Phase 4: core cell map construction.
            with recorder.span("core_cell_map"):
                for cell, _point in core_records:
                    cell_map.mark_core(cell)

            # Phase 5: outliers identification.
            with recorder.span("outliers"):
                outlier_records = self._find_outliers(
                    grid, eps, cell_map, core_points, kernel
                ).collect()

        run_metrics = self.context.metrics.delta(metrics_before)
        # Qualify for the run record: substrate counters (bare and
        # net.*) go under sparklite.*, while telemetry harvested from
        # remote workers keeps its worker.* namespace.
        recorder.metrics.merge(EngineMetrics.qualify(run_metrics))
        if kernel_counters:
            recorder.metrics.merge(kernel_counters, namespace="engine")
        recorder.add_context(
            n_cells=len(cell_map),
            k_d=stencil.k_d,
            max_workers=self.context.max_workers,
        )
        record = recorder.finish(n_points=n_points, n_dims=n_dims)

        core_mask = np.zeros(n_points, dtype=bool)
        core_mask[[index for _cell, (index, _p) in core_records]] = True
        outlier_mask = np.zeros(n_points, dtype=bool)
        outlier_mask[[index for _cell, (index, _p) in outlier_records]] = True
        return DetectionResult(
            n_points=n_points,
            outlier_mask=outlier_mask,
            core_mask=core_mask,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )

    # ------------------------------------------------------------------
    # Phase 1 — Algorithm 1
    # ------------------------------------------------------------------

    def _create_grid(self, array: np.ndarray, eps: float) -> RDD:
        """MAP each point to ``(cell, (index, coords))``.

        Under ``partitioner="cells"`` the records are routed to shards
        by their cell's spatial block, and the returned RDD remembers
        the partitioner — the grouped joins downstream then reuse the
        partitioning instead of re-shuffling the grid.
        """
        side = cell_side_length(eps, array.shape[1])
        check_grid_domain(array, side)
        records: list[tuple[Cell, Point]] = [
            (
                tuple(int(math.floor(value / side)) for value in row),
                (index, tuple(float(value) for value in row)),
            )
            for index, row in enumerate(array)
        ]
        return self.context.parallelize(
            records, self.num_partitions, partitioner=self._cell_partitioner
        )

    # ------------------------------------------------------------------
    # Phase 2 — Algorithm 2
    # ------------------------------------------------------------------

    def _build_dense_cell_map(
        self, grid: RDD, min_pts: int, stencil: NeighborStencil
    ) -> CellMap:
        """Count points per cell and classify dense vs other."""
        counts = (
            grid.map(lambda record: (record[0], 1))
            .reduce_by_key(
                lambda a, b: a + b, partitioner=self._cell_partitioner
            )
            .collect_as_map()
        )
        return CellMap.from_counts(counts, min_pts, stencil=stencil)

    # ------------------------------------------------------------------
    # Phase 3 — Algorithm 3
    # ------------------------------------------------------------------

    def _find_core_points(
        self,
        grid: RDD,
        eps: float,
        min_pts: int,
        cell_map: CellMap,
        kernel: Kernel | None = None,
    ) -> RDD:
        """Union of dense-cell core points and join-verified core points."""
        map_broadcast = self.context.broadcast(cell_map)
        dense_core = grid.filter(
            lambda record: map_broadcast.value.cell_type(record[0])
            is CellType.DENSE
        )
        to_check = grid.filter(
            lambda record: map_broadcast.value.cell_type(record[0])
            is not CellType.DENSE
        ).flat_map(
            lambda record: _emit_to_neighbors(record, map_broadcast.value)
        )
        counts = self._count_near_pairs(grid, to_check, eps, min_pts, kernel)
        verified = (
            counts.filter(lambda kv: kv[1][0] >= min_pts)
            .map(lambda kv: kv[1][1])
        )
        return dense_core.union(verified)

    def _count_near_pairs(
        self,
        grid: RDD,
        to_check: RDD,
        eps: float,
        min_pts: int,
        kernel: Kernel | None = None,
    ) -> RDD:
        """Count, per checked point, neighbors within ``eps``.

        Returns an RDD of ``(point_index, (count, (cell, point)))``.
        The count is capped at ``min_pts`` under the grouped strategy
        (early termination), which preserves the ``>= min_pts`` test.

        A pair meeting on the checked point's *own* cell is a neighbor
        by Lemma 1 without a distance test — the operational predicate
        of ``repro.core.reference`` — keeping all three strategies
        bit-consistent with the reference and the other engines at the
        float boundary.
        """
        eps_sq = eps * eps
        # The record-at-a-time tasks call the kernel's scalar distance;
        # the NumPy tier's sq_dist is exactly the legacy module-level
        # _sq_dist, and every tier returns the identical float.
        sq_dist = kernel.sq_dist if kernel is not None else _sq_dist

        if self.join_strategy == "plain":
            pairs = grid.join(to_check, partitioner=self._cell_partitioner)

            def score(record):
                join_cell, ((_qi, q), (cell, point)) = record
                near = (
                    join_cell == cell or sq_dist(point[1], q) <= eps_sq
                )
                return (point[0], (1 if near else 0, (cell, point)))

            return pairs.map(score).reduce_by_key(_merge_counts)

        if self.join_strategy == "group":
            grouped = grid.group_by_key(partitioner=self._cell_partitioner)
            pairs = grouped.join(
                to_check, partitioner=self._cell_partitioner
            )

            def score_group(record):
                join_cell, (neighbors, (cell, point)) = record
                same_cell = join_cell == cell
                count = 0
                for _qi, q in neighbors:
                    if same_cell or sq_dist(point[1], q) <= eps_sq:
                        count += 1
                        if count >= min_pts:
                            break  # early termination (Sec. III-G2)
                return (point[0], (count, (cell, point)))

            return pairs.map(score_group).reduce_by_key(_merge_counts)

        # Broadcast join: ship the points-to-check to every executor.
        check_map: dict[Cell, list] = {}
        for neighbor_cell, payload in to_check.collect():
            check_map.setdefault(neighbor_cell, []).append(payload)
        check_broadcast = self.context.broadcast(check_map)

        def probe(record):
            cell, (_qi, q) = record
            out = []
            for checked_cell, point in check_broadcast.value.get(cell, ()):
                near = (
                    checked_cell == cell
                    or sq_dist(point[1], q) <= eps_sq
                )
                out.append((point[0], (1 if near else 0, (checked_cell, point))))
            return out

        return grid.flat_map(probe).reduce_by_key(_merge_counts)

    # ------------------------------------------------------------------
    # Phase 5 — Algorithm 5
    # ------------------------------------------------------------------

    def _find_outliers(
        self,
        grid: RDD,
        eps: float,
        cell_map: CellMap,
        core_points: RDD,
        kernel: Kernel | None = None,
    ) -> RDD:
        """Union of no-core-neighbor outliers and join-verified outliers."""
        map_broadcast = self.context.broadcast(cell_map)
        non_core = grid.filter(
            lambda record: not map_broadcast.value.is_core_cell(record[0])
        ).cache()
        isolated = non_core.filter(
            lambda record: not map_broadcast.value.core_neighbors(record[0])
        )
        to_check = non_core.filter(
            lambda record: bool(map_broadcast.value.core_neighbors(record[0]))
        ).flat_map(
            lambda record: _emit_to_core_neighbors(record, map_broadcast.value)
        )
        flags = self._outlier_flags(
            grid, cell_map, core_points, to_check, eps, kernel
        )
        verified = (
            flags.filter(lambda kv: kv[1][0])
            .map(lambda kv: kv[1][1])
        )
        return isolated.union(verified)

    def _outlier_flags(
        self,
        grid: RDD,
        cell_map: CellMap,
        core_points: RDD,
        to_check: RDD,
        eps: float,
        kernel: Kernel | None = None,
    ) -> RDD:
        """AND-reduce, per checked point, "farther than eps from this core".

        Returns an RDD of ``(point_index, (flag, (cell, point)))`` where
        the flag is True iff every compared core point is strictly
        farther than ``eps`` (Definition 3).
        """
        eps_sq = eps * eps
        sq_dist = kernel.sq_dist if kernel is not None else _sq_dist

        if self.join_strategy == "plain":
            pairs = core_points.join(
                to_check, partitioner=self._cell_partitioner
            )

            def flag(record):
                _cell, ((_qi, q), (cell, point)) = record
                far = sq_dist(point[1], q) > eps_sq
                return (point[0], (far, (cell, point)))

            return pairs.map(flag).reduce_by_key(_merge_flags)

        if self.join_strategy == "group":
            grouped = core_points.group_by_key(
                partitioner=self._cell_partitioner
            )
            pairs = grouped.join(
                to_check, partitioner=self._cell_partitioner
            )

            def flag_group(record):
                _cell, (cores, (cell, point)) = record
                still_outlier = True
                for _qi, q in cores:
                    if sq_dist(point[1], q) <= eps_sq:
                        still_outlier = False
                        break  # early termination (Sec. III-G2)
                return (point[0], (still_outlier, (cell, point)))

            return pairs.map(flag_group).reduce_by_key(_merge_flags)

        check_map: dict[Cell, list] = {}
        for neighbor_cell, payload in to_check.collect():
            check_map.setdefault(neighbor_cell, []).append(payload)
        check_broadcast = self.context.broadcast(check_map)

        def probe(record):
            cell, (_qi, q) = record
            out = []
            for checked_cell, point in check_broadcast.value.get(cell, ()):
                far = sq_dist(point[1], q) > eps_sq
                out.append((point[0], (far, (checked_cell, point))))
            return out

        return core_points.flat_map(probe).reduce_by_key(_merge_flags)


# ----------------------------------------------------------------------
# Closure helpers (module level so they stay picklable and testable)
# ----------------------------------------------------------------------


def _sq_dist(p: tuple[float, ...], q: tuple[float, ...]) -> float:
    """Squared Euclidean distance between coordinate tuples."""
    return sum((a - b) * (a - b) for a, b in zip(p, q))


def _merge_counts(a, b):
    return (a[0] + b[0], a[1])


def _merge_flags(a, b):
    return (a[0] and b[0], a[1])


def _emit_to_neighbors(
    record: tuple[Cell, Point], cell_map: CellMap
) -> Iterable[tuple[Cell, tuple[Cell, Point]]]:
    """Emit a non-dense-cell point onto every non-empty neighbor cell."""
    cell, point = record
    return [
        (neighbor, (cell, point)) for neighbor in cell_map.neighbors(cell)
    ]


def _emit_to_core_neighbors(
    record: tuple[Cell, Point], cell_map: CellMap
) -> Iterable[tuple[Cell, tuple[Cell, Point]]]:
    """Emit a non-core-cell point onto every neighboring *core* cell."""
    cell, point = record
    return [
        (neighbor, (cell, point))
        for neighbor in cell_map.core_neighbors(cell)
    ]
