"""Geographic convenience wrapper: DBSCOUT on latitude/longitude input.

Wires :mod:`repro.datasets.projection` and the detector together for
the common case — GPS fixes in degrees, ``eps`` in meters:

    >>> import numpy as np
    >>> city = np.random.default_rng(0).normal(
    ...     (48.85, 2.35), 0.005, size=(500, 2))
    >>> stray = np.array([[49.5, 3.4]])
    >>> result = detect_geographic(
    ...     np.vstack([city, stray]), eps_meters=500.0, min_pts=10)
    >>> bool(result.outlier_mask[-1])
    True

The projection is a local equirectangular plane centered on the data;
for regions up to a few hundred kilometers across the distance error
is far below any sensible ``eps`` (quantified in the projection
tests).  For continental-scale data, split by region first.
"""

from __future__ import annotations

import numpy as np

from repro.core.dbscout import DBSCOUT
from repro.datasets.projection import project_to_meters
from repro.types import DetectionResult

__all__ = ["detect_geographic"]


def detect_geographic(
    latlon_degrees: np.ndarray,
    eps_meters: float,
    min_pts: int,
    origin: tuple[float, float] | None = None,
    **detector_options,
) -> DetectionResult:
    """Run DBSCOUT on (lat, lon) degree input with ``eps`` in meters.

    Args:
        latlon_degrees: ``(n, 2)`` array of (latitude, longitude).
        eps_meters: Neighborhood radius in meters.
        min_pts: Density threshold.
        origin: Optional projection origin (lat, lon); defaults to the
            data centroid.
        **detector_options: Forwarded to :class:`~repro.DBSCOUT`
            (``engine``, ``num_partitions``, ...).

    Returns:
        The detection result; indices refer to the input rows.  The
        projection origin used is recorded in ``stats`` (alongside the
        engine's own stats) so outlier coordinates can be mapped back
        with :func:`repro.datasets.unproject_to_degrees`.
    """
    xy, used_origin = project_to_meters(latlon_degrees, origin=origin)
    result = DBSCOUT(
        eps=eps_meters, min_pts=min_pts, **detector_options
    ).fit(xy)
    return DetectionResult(
        n_points=result.n_points,
        outlier_mask=result.outlier_mask,
        core_mask=result.core_mask,
        scores=result.scores,
        timings=result.timings,
        stats={
            **result.stats,
            "projection": "equirectangular",
            "projection_origin": used_origin,
            "eps_meters": float(eps_meters),
        },
        record=result.record,
    )
