"""Grid partitioning: assignment of points to epsilon-cells.

An *epsilon-cell* (Definition 4 of the paper) is a d-dimensional
hypercube whose **diagonal** has length ``eps``, hence whose side is
``l = eps / sqrt(d)``.  A cell is identified by the integer coordinates
of its minimum vertex scaled by ``l``: point ``x`` belongs to cell
``floor(x / l)`` along every dimension.  Cells are half-open boxes
``[c*l, (c+1)*l)`` so the grid is a complete, non-overlapping partition
of the space (Definition 5).

The key geometric property (used by Lemma 1) is that any two points in
the same cell are at distance at most ``eps``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError, ParameterError

__all__ = [
    "MAX_ABS_CELL_COORD",
    "cell_side_length",
    "cell_coordinates",
    "check_grid_domain",
    "validate_points",
    "Grid",
]

#: Largest admissible |coordinate / side| quotient.  Beyond 2**52 the
#: float64 quotient has ulp >= 1, so ``floor(x / l)`` loses cell
#: resolution (points a full cell apart can collapse into one cell,
#: breaking Lemma 1), and past 2**63 the int64 cast overflows into
#: garbage coordinates.  Below 2**52 the quotient error is at most a
#: quarter cell, which the engines' boundary-inclusive stencil absorbs.
MAX_ABS_CELL_COORD = 2**52


def cell_side_length(eps: float, n_dims: int) -> float:
    """Return the side length ``l = eps / sqrt(d)`` of an epsilon-cell.

    Args:
        eps: Neighborhood radius (positive).
        n_dims: Dimensionality ``d`` of the space (positive integer).

    Raises:
        ParameterError: If ``eps`` or ``n_dims`` is not positive.
    """
    if not math.isfinite(eps) or eps <= 0:
        raise ParameterError(f"eps must be a positive finite number, got {eps!r}")
    if n_dims < 1:
        raise ParameterError(f"n_dims must be >= 1, got {n_dims!r}")
    return eps / math.sqrt(n_dims)


def validate_points(points: np.ndarray) -> np.ndarray:
    """Validate and normalize an input point array.

    Args:
        points: Array-like of shape ``(n, d)`` with finite values.

    Returns:
        A C-contiguous ``float64`` array of shape ``(n, d)``.

    Raises:
        DataValidationError: If the array is not 2-D, is empty along the
            feature axis, or contains NaN/inf values.
    """
    array = np.ascontiguousarray(points, dtype=np.float64)
    if array.ndim != 2:
        raise DataValidationError(
            f"points must be a 2-D array of shape (n, d), got ndim={array.ndim}"
        )
    if array.shape[1] < 1:
        raise DataValidationError("points must have at least one feature column")
    if array.size and not np.isfinite(array).all():
        raise DataValidationError("points contain NaN or infinite values")
    return array


def check_grid_domain(points: np.ndarray, side: float) -> None:
    """Reject coordinates too large for an exact epsilon-cell grid.

    Every path that assigns cells — the engines, the reference, the
    incremental detector, and both classify implementations — applies
    this same guard, so out-of-domain inputs fail uniformly with
    :class:`~repro.exceptions.DataValidationError` instead of any path
    silently computing wrong cells.

    Args:
        points: Validated ``(n, d)`` float64 array (may be empty).
        side: Cell side length ``eps / sqrt(d)``.

    Raises:
        DataValidationError: If any ``|x / side|`` reaches
            :data:`MAX_ABS_CELL_COORD` (2**52), where float64 division
            no longer resolves individual cells.
    """
    if points.size == 0:
        return
    extreme = float(np.abs(points).max())
    if extreme / side >= MAX_ABS_CELL_COORD:
        raise DataValidationError(
            f"coordinate magnitude {extreme:g} exceeds the exact grid "
            f"domain for eps-cell side {side:g}: |x / side| must stay "
            f"below 2**52 (~{MAX_ABS_CELL_COORD * side:g}) for cell "
            "assignment to be exact. Rescale the data or increase eps."
        )


def cell_coordinates(points: np.ndarray, eps: float) -> np.ndarray:
    """Compute the epsilon-cell coordinates of each point (Algorithm 1).

    Each point ``p`` maps to the integer vector
    ``C_i = floor(p_i * sqrt(d) / eps)``.

    Args:
        points: Array of shape ``(n, d)``.
        eps: Neighborhood radius.

    Returns:
        Integer array of shape ``(n, d)`` with the cell coordinates.
    """
    array = validate_points(points)
    side = cell_side_length(eps, array.shape[1])
    check_grid_domain(array, side)
    return np.floor(array / side).astype(np.int64)


def _pack_columns(coords: np.ndarray) -> np.ndarray | None:
    """Pack integer coordinate rows into single int64 keys when possible.

    Packing gives a fast, order-preserving-per-cell scalar key for
    dictionary and sort operations.  Returns ``None`` when the combined
    coordinate ranges do not fit into 63 bits (caller must fall back to
    tuple keys).
    """
    if coords.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    mins = coords.min(axis=0)
    spans = coords.max(axis=0) - mins + 1
    bits = [int(span).bit_length() for span in spans]
    if sum(bits) > 62:
        return None
    keys = np.zeros(coords.shape[0], dtype=np.int64)
    for dim in range(coords.shape[1]):
        keys = (keys << bits[dim]) | (coords[:, dim] - mins[dim])
    return keys


@dataclass(frozen=True)
class GridStats:
    """Summary statistics of a grid (used in experiment reports)."""

    n_points: int
    n_cells: int
    max_cell_population: int
    mean_cell_population: float


class Grid:
    """A complete non-overlapping partition of a dataset into epsilon-cells.

    The grid indexes points by cell: it computes, once, the unique cells
    present in the data, the per-cell population, and for each point the
    index of the cell it belongs to.  Point indices are grouped so that
    the members of any cell can be retrieved in O(|cell|).

    Attributes:
        points: The validated ``(n, d)`` input array.
        eps: Neighborhood radius used to size the cells.
        side: Cell side length ``eps / sqrt(d)``.
        coords: ``(n, d)`` integer cell coordinates of each point.
        cells: ``(m, d)`` integer coordinates of the unique non-empty
            cells, in lexicographic-key order.
        counts: ``(m,)`` population of each unique cell.
        point_cell: ``(n,)`` index into ``cells`` for each point.
    """

    def __init__(self, points: np.ndarray, eps: float) -> None:
        self.points = validate_points(points)
        self.eps = float(eps)
        n_dims = self.points.shape[1]
        self.side = cell_side_length(eps, n_dims)
        check_grid_domain(self.points, self.side)
        self.coords = np.floor(self.points / self.side).astype(np.int64)
        self._build_index()

    def _build_index(self) -> None:
        """Group points by cell using a packed-key sort (O(n log n))."""
        n_points = self.points.shape[0]
        if n_points == 0:
            self.cells = np.empty((0, self.points.shape[1]), dtype=np.int64)
            self.point_cell = np.empty(0, dtype=np.int64)
            self.counts = np.empty(0, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self._starts = np.zeros(0, dtype=np.int64)
            self._n_points = 0
            self._cell_lookup = None
            return
        packed = _pack_columns(self.coords)
        if packed is None:
            # Ranges too wide for packing: unique over rows directly.
            self.cells, self.point_cell, self.counts = np.unique(
                self.coords, axis=0, return_inverse=True, return_counts=True
            )
            self.point_cell = self.point_cell.ravel()
            order = np.argsort(self.point_cell, kind="stable")
        else:
            unique_keys, inverse, counts = np.unique(
                packed, return_inverse=True, return_counts=True
            )
            self.point_cell = inverse.ravel()
            self.counts = counts
            order = np.argsort(self.point_cell, kind="stable")
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            self.cells = self.coords[order[starts]]
        # Contiguous grouping: points of cell i occupy
        # _order[_starts[i]:_starts[i] + counts[i]].
        self._order = order
        self._starts = np.concatenate(([0], np.cumsum(self.counts)[:-1]))
        self._n_points = n_points
        self._cell_lookup: dict[tuple[int, ...], int] | None = None

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._n_points

    @property
    def n_cells(self) -> int:
        """Number of non-empty cells."""
        return int(self.cells.shape[0])

    @property
    def n_dims(self) -> int:
        """Dimensionality of the space."""
        return int(self.points.shape[1])

    def cell_members(self, cell_index: int) -> np.ndarray:
        """Return the point indices belonging to the cell at ``cell_index``."""
        start = self._starts[cell_index]
        return self._order[start : start + self.counts[cell_index]]

    def members_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR view of the per-cell membership.

        Returns:
            ``(order, starts)``: the members of cell ``i`` are
            ``order[starts[i] : starts[i] + counts[i]]``.  Used by the
            engines to gather many cells' members without per-cell
            Python overhead.
        """
        return self._order, self._starts

    def cell_of_point(self, point_index: int) -> int:
        """Return the cell index that contains the given point."""
        return int(self.point_cell[point_index])

    def lookup(self) -> dict[tuple[int, ...], int]:
        """Return (building lazily) a mapping from cell tuple to cell index."""
        if self._cell_lookup is None:
            self._cell_lookup = {
                tuple(int(c) for c in row): i for i, row in enumerate(self.cells)
            }
        return self._cell_lookup

    def cell_index(self, cell: tuple[int, ...]) -> int | None:
        """Return the index of the cell with the given coordinates, if present."""
        return self.lookup().get(tuple(int(c) for c in cell))

    def stats(self) -> GridStats:
        """Return summary statistics of the grid."""
        if self.n_cells == 0:
            return GridStats(0, 0, 0, 0.0)
        return GridStats(
            n_points=self.n_points,
            n_cells=self.n_cells,
            max_cell_population=int(self.counts.max()),
            mean_cell_population=float(self.counts.mean()),
        )

    def __repr__(self) -> str:
        return (
            f"Grid(n_points={self.n_points}, n_cells={self.n_cells}, "
            f"eps={self.eps}, side={self.side:.6g})"
        )
