"""Incremental DBSCOUT: exact outlier maintenance under insertions.

The paper's motivating datasets (GPS collections) grow continuously.
This extension maintains the DBSCOUT result across batched insertions
without recomputing from scratch: the grid is updated in place, and
only the *affected region* of each insertion batch is re-evaluated.

Locality argument (why this is exact):

* A point's **core status** depends only on points in its cell's
  neighborhood, so inserting points into a set of cells ``D`` (the
  dirty cells) can only change core status inside
  ``D ∪ N(D)`` — every cell whose neighborhood intersects ``D``.
* A point's **outlier status** depends only on core points in its
  cell's neighborhood, so it can only change in cells whose
  neighborhood intersects the cells where the core set changed (or
  where points were inserted).

The same locality covers **deletions** (:meth:`IncrementalDBSCOUT.remove`),
so a sliding window — insert the new batch, remove the expired one —
costs only its affected neighborhoods.

``detect()`` therefore recomputes core flags for cells in ``N(D)``
(the stencil is symmetric, so ``N(D)`` covers both directions), finds
the cells whose core-point set actually changed, and re-evaluates
outlier flags only in the neighborhoods of those cells.  Equivalence
with the batch engine after every insertion sequence is enforced by
the test suite (including a hypothesis property over random insertion
orders).

Amortized cost per batch is proportional to the affected volume, so a
stream of spatially local batches is processed far faster than
re-running batch DBSCOUT each time (see
``benchmarks/bench_ablation_incremental.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import (
    cell_side_length,
    check_grid_domain,
    validate_points,
)
from repro.core.kernels import normalize_kernel, resolve_kernel
from repro.core.kernels.numpy_kernel import sq_dists as _sq_dists_kernel
from repro.core.neighbors import NeighborStencil
from repro.core.validation import validate_parameters
from repro.exceptions import DataValidationError, ParameterError
from repro.obs import MetricsRegistry, RunRecorder, span
from repro.types import DetectionResult

__all__ = ["IncrementalDBSCOUT"]

Cell = tuple[int, ...]


def _sq_dists(targets: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Squared distances accumulated per dimension, in order.

    All engines and the reference oracle share this accumulation order
    (``sq += delta * delta`` over dimensions); reductions with a
    different association (``einsum``, BLAS dot) can round one ulp
    away and flip an exactly-at-eps comparison.  Kept as a module
    function for compatibility; the implementation now lives in
    :mod:`repro.core.kernels` and the detector routes through its
    configured kernel tier.
    """
    return _sq_dists_kernel(targets, candidates)


class IncrementalDBSCOUT:
    """Exact DBSCOUT over a growing dataset.

    Usage:
        >>> import numpy as np
        >>> detector = IncrementalDBSCOUT(eps=1.0, min_pts=3)
        >>> detector.insert(np.array([[0.0, 0.0], [0.1, 0.1], [0.2, 0.0]]))
        >>> detector.insert(np.array([[9.0, 9.0]]))
        >>> result = detector.detect()
        >>> result.outlier_mask.tolist()
        [False, False, False, True]

    Args:
        eps: Neighborhood radius.
        min_pts: Density threshold (self included).
        initial_capacity: Initial size of the internal point buffer.
        kernel: Distance-kernel tier (``"auto"``/``"numpy"``/``"c"``
            or a :class:`~repro.core.kernels.Kernel`); labels are
            bit-identical for every choice.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        initial_capacity: int = 1024,
        kernel: str | None = "auto",
    ) -> None:
        self.eps, self.min_pts = validate_parameters(eps, min_pts)
        if initial_capacity < 1:
            raise ParameterError(
                f"initial_capacity must be >= 1, got {initial_capacity}"
            )
        self.kernel = normalize_kernel(kernel)
        self._kernel_counters: dict[str, int] = {}
        self._resolved_kernel = None  # lazy; cached across detects
        #: Lifetime ``incremental.*`` counters; every :meth:`detect`
        #: run record carries the current totals, and live serving
        #: (:mod:`repro.stream`) folds them into its telemetry.
        self.metrics = MetricsRegistry()
        self._n_active = 0
        self._capacity = int(initial_capacity)
        self._n_points = 0
        self._n_dims: int | None = None
        self._buffer: np.ndarray | None = None
        self._side: float | None = None
        self._stencil: NeighborStencil | None = None
        self._cells: dict[Cell, list[int]] = {}
        self._core_mask = np.zeros(0, dtype=bool)
        self._outlier_mask = np.zeros(0, dtype=bool)
        self._active_mask = np.zeros(0, dtype=bool)
        self._dirty: set[Cell] = set()
        # Memoized per-cell views, invalidated whenever the cell map
        # mutates (insert/remove): detect() visits each cell's
        # neighborhood several times, and rebuilding the neighbor
        # lists and member arrays from scratch dominated churny
        # streaming workloads.
        self._mutation_version = 0
        self._memo_version = -1
        self._neighbor_memo: dict[Cell, list[Cell]] = {}
        self._member_arrays: dict[Cell, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of points inserted so far."""
        return self._n_points

    @property
    def n_dims(self) -> int | None:
        """Dimensionality (None before the first insert)."""
        return self._n_dims

    def _points_view(self) -> np.ndarray:
        assert self._buffer is not None
        return self._buffer[: self._n_points]

    def _ensure_geometry(self, batch: np.ndarray) -> None:
        if self._n_dims is None:
            self._n_dims = batch.shape[1]
            self._side = cell_side_length(self.eps, self._n_dims)
            self._stencil = NeighborStencil(self._n_dims)
            self._buffer = np.empty(
                (self._capacity, self._n_dims), dtype=np.float64
            )
        elif batch.shape[1] != self._n_dims:
            raise DataValidationError(
                f"batch has {batch.shape[1]} dimensions, "
                f"detector was built with {self._n_dims}"
            )

    def _grow_buffer(self, needed: int) -> None:
        assert self._buffer is not None
        while self._capacity < needed:
            self._capacity *= 2
        if self._buffer.shape[0] < self._capacity:
            grown = np.empty(
                (self._capacity, self._n_dims), dtype=np.float64
            )
            grown[: self._n_points] = self._buffer[: self._n_points]
            self._buffer = grown

    def insert(self, points: np.ndarray) -> None:
        """Append a batch of points; marks their cells dirty."""
        batch = validate_points(points)
        if batch.shape[0] == 0:
            return
        with span("incremental.insert", n_points=int(batch.shape[0])):
            self._ensure_geometry(batch)
            check_grid_domain(batch, self._side)
            self._grow_buffer(self._n_points + batch.shape[0])
            start = self._n_points
            self._buffer[start : start + batch.shape[0]] = batch
            self._n_points += batch.shape[0]

            coords = np.floor(batch / self._side).astype(np.int64)
            for offset, row in enumerate(coords):
                cell = tuple(int(c) for c in row)
                self._cells.setdefault(cell, []).append(start + offset)
                self._dirty.add(cell)

            # Grow the status masks; fresh points start undecided
            # (False).
            grown_core = np.zeros(self._n_points, dtype=bool)
            grown_core[: start] = self._core_mask
            self._core_mask = grown_core
            grown_outlier = np.zeros(self._n_points, dtype=bool)
            grown_outlier[: start] = self._outlier_mask
            self._outlier_mask = grown_outlier
            grown_active = np.ones(self._n_points, dtype=bool)
            grown_active[: start] = self._active_mask
            self._active_mask = grown_active
            self._n_active += int(batch.shape[0])
            self._mutation_version += 1
        self.metrics.increment("incremental.inserts")
        self.metrics.increment(
            "incremental.points_inserted", int(batch.shape[0])
        )
        self.metrics.set("incremental.window_points", self._n_active)

    def remove(self, point_indices) -> None:
        """Logically delete points by their insertion indices.

        Removed points keep their index (results report them as
        neither core nor outlier) but stop participating in any
        neighborhood — enabling sliding-window detection.  Their cells
        are marked dirty so the surrounding region is re-evaluated on
        the next :meth:`detect`.

        Raises:
            ParameterError: If an index is out of range or the point
                was already removed.
        """
        indices = np.atleast_1d(np.asarray(point_indices, dtype=np.int64))
        if indices.size == 0:
            return
        if indices.min() < 0 or indices.max() >= self._n_points:
            raise ParameterError(
                f"point indices must be in [0, {self._n_points}), "
                f"got range [{indices.min()}, {indices.max()}]"
            )
        if not self._active_mask[indices].all():
            raise ParameterError("some points were already removed")
        with span("incremental.remove", n_points=int(indices.size)):
            points = self._points_view()
            coords = np.floor(points[indices] / self._side).astype(np.int64)
            for point_index, row in zip(indices, coords):
                cell = tuple(int(c) for c in row)
                members = self._cells[cell]
                members.remove(int(point_index))
                if not members:
                    del self._cells[cell]
                self._dirty.add(cell)
            self._active_mask[indices] = False
            self._core_mask[indices] = False
            self._outlier_mask[indices] = False
            self._n_active -= int(indices.size)
            self._mutation_version += 1
        self.metrics.increment("incremental.removes")
        self.metrics.increment(
            "incremental.points_removed", int(indices.size)
        )
        self.metrics.set("incremental.window_points", self._n_active)

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask over all inserted points; False = removed."""
        return self._active_mask.copy()

    @property
    def n_active(self) -> int:
        """Number of active (not removed) points."""
        return self._n_active

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint the detector state to an ``.npz`` file.

        Captures points, status masks, and the pending dirty set, so a
        long-running monitor can restart exactly where it stopped.
        """
        import pathlib

        path = pathlib.Path(path)
        if self._n_points == 0:
            raise ParameterError("cannot checkpoint an empty detector")
        if self._dirty:
            dirty = np.array(sorted(self._dirty), dtype=np.int64)
        else:
            dirty = np.empty((0, self._n_dims), dtype=np.int64)
        np.savez_compressed(
            path,
            eps=np.array([self.eps]),
            min_pts=np.array([self.min_pts]),
            points=self._points_view().copy(),
            core_mask=self._core_mask,
            outlier_mask=self._outlier_mask,
            active_mask=self._active_mask,
            dirty=dirty,
        )

    @classmethod
    def load(cls, path) -> "IncrementalDBSCOUT":
        """Restore a detector from a :meth:`save` checkpoint."""
        import pathlib

        path = pathlib.Path(path)
        if not path.exists():
            raise DataValidationError(f"no checkpoint at {path}")
        with np.load(path) as archive:
            eps = float(archive["eps"][0])
            min_pts = int(archive["min_pts"][0])
            points = archive["points"]
            core_mask = archive["core_mask"]
            outlier_mask = archive["outlier_mask"]
            active_mask = archive["active_mask"]
            dirty = archive["dirty"]
        detector = cls(eps, min_pts, initial_capacity=max(points.shape[0], 1))
        detector._ensure_geometry(points)
        check_grid_domain(points, detector._side)
        detector._buffer[: points.shape[0]] = points
        detector._n_points = points.shape[0]
        detector._core_mask = core_mask.astype(bool)
        detector._outlier_mask = outlier_mask.astype(bool)
        detector._active_mask = active_mask.astype(bool)
        detector._n_active = int(detector._active_mask.sum())
        detector.metrics.set(
            "incremental.window_points", detector._n_active
        )
        # Rebuild the cell lists from the active points.
        coords = np.floor(points / detector._side).astype(np.int64)
        for index in np.flatnonzero(detector._active_mask):
            cell = tuple(int(c) for c in coords[index])
            detector._cells.setdefault(cell, []).append(int(index))
        detector._dirty = {
            tuple(int(c) for c in row) for row in dirty
        }
        return detector

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def _sync_memos(self) -> None:
        if self._memo_version != self._mutation_version:
            self._neighbor_memo.clear()
            self._member_arrays.clear()
            self._memo_version = self._mutation_version

    def _neighbor_cells(self, cell: Cell) -> list[Cell]:
        assert self._stencil is not None
        self._sync_memos()
        cached = self._neighbor_memo.get(cell)
        if cached is None:
            cached = [
                candidate
                for candidate in self._stencil.neighbors_of(cell)
                if candidate in self._cells
            ]
            self._neighbor_memo[cell] = cached
        return cached

    def _members(self, cell: Cell) -> np.ndarray:
        """The cell's member indices as a memoized int64 array."""
        self._sync_memos()
        cached = self._member_arrays.get(cell)
        if cached is None:
            cached = np.array(self._cells[cell], dtype=np.int64)
            self._member_arrays[cell] = cached
        return cached

    def _neighborhood_of(self, cells: set[Cell]) -> set[Cell]:
        """All non-empty cells whose neighborhood intersects ``cells``."""
        out: set[Cell] = set()
        for cell in cells:
            out.update(self._neighbor_cells(cell))
        return out

    def _sq(self, targets: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Squared distances through the configured kernel tier.

        The kernel is resolved once and cached: re-probing the
        compiled tier on every dirty-cell recompute dominated churny
        streaming workloads.
        """
        if self._resolved_kernel is None:
            self._resolved_kernel = resolve_kernel(
                self.kernel, self._kernel_counters
            )
        return self._resolved_kernel.sq_dists(targets, candidates)

    def _recompute_core(self, cells: set[Cell]) -> set[Cell]:
        """Re-evaluate core status inside ``cells``.

        Returns:
            The cells whose set of core points changed.
        """
        points = self._points_view()
        eps_sq = self.eps * self.eps
        changed: set[Cell] = set()
        for cell in cells:
            members = self._members(cell)
            before = self._core_mask[members].copy()
            own = len(members)
            if own >= self.min_pts:
                after = np.ones(own, dtype=bool)  # Lemma 1
            else:
                # Same-cell points count by Lemma 1 without a distance
                # test (the operational predicate of
                # ``repro.core.reference``); only cross-cell candidates
                # go through the kernel.
                cross_cells = [
                    c for c in self._neighbor_cells(cell) if c != cell
                ]
                candidate_count = own + sum(
                    len(self._cells[c]) for c in cross_cells
                )
                if candidate_count < self.min_pts:
                    # own < min_pts here, so this also covers the
                    # no-cross-cells case.
                    after = np.zeros(own, dtype=bool)
                else:
                    candidates = np.concatenate(
                        [self._members(c) for c in cross_cells]
                    )
                    sq = self._sq(points[members], points[candidates])
                    after = (
                        own + (sq <= eps_sq).sum(axis=1) >= self.min_pts
                    )
            if not np.array_equal(before, after):
                changed.add(cell)
            self._core_mask[members] = after
        return changed

    def _recompute_outliers(self, cells: set[Cell]) -> None:
        """Re-evaluate outlier status inside ``cells``."""
        points = self._points_view()
        eps_sq = self.eps * self.eps
        for cell in cells:
            members = self._members(cell)
            if self._core_mask[members].any():
                # Lemma 2: a core cell has no outliers.
                self._outlier_mask[members] = False
                continue
            core_candidates: list[np.ndarray] = []
            for neighbor in self._neighbor_cells(cell):
                neighbor_members = self._members(neighbor)
                cores = neighbor_members[self._core_mask[neighbor_members]]
                if cores.size:
                    core_candidates.append(cores)
            if not core_candidates:
                self._outlier_mask[members] = True
                continue
            candidates = np.concatenate(core_candidates)
            sq = self._sq(points[members], points[candidates])
            covered = (sq <= eps_sq).any(axis=1)
            self._outlier_mask[members] = ~covered

    def detect(self) -> DetectionResult:
        """Bring the result up to date and return it.

        Only the regions affected by insertions since the last call are
        recomputed; with no pending insertions this returns the cached
        result.
        """
        if self._n_points == 0:
            return DetectionResult(
                n_points=0,
                outlier_mask=np.zeros(0, dtype=bool),
                core_mask=np.zeros(0, dtype=bool),
            )
        if self._resolved_kernel is None:
            self._resolved_kernel = resolve_kernel(
                self.kernel, self._kernel_counters
            )
        kernel = self._resolved_kernel
        recorder = RunRecorder(
            engine="incremental",
            params={"eps": self.eps, "min_pts": self.min_pts},
            context={
                "engine": "incremental",
                "n_cells": len(self._cells),
                "dirty_cells": len(self._dirty),
                "kernel": kernel.name,
            },
        )
        self.metrics.set("incremental.dirty_cells", len(self._dirty))
        with recorder.activate():
            if self._dirty:
                with recorder.span("core_points"):
                    core_region = self._neighborhood_of(self._dirty)
                    changed_core_cells = self._recompute_core(core_region)
                with recorder.span("outliers"):
                    outlier_region = self._neighborhood_of(
                        changed_core_cells | self._dirty
                    )
                    self._recompute_outliers(outlier_region)
                recorder.add_context(
                    core_cells_recomputed=len(core_region),
                    outlier_cells_recomputed=len(outlier_region),
                )
                self.metrics.increment(
                    "incremental.core_cells_recomputed", len(core_region)
                )
                self.metrics.increment(
                    "incremental.outlier_cells_recomputed",
                    len(outlier_region),
                )
                self._dirty.clear()
        self.metrics.increment("incremental.detects")
        if self._kernel_counters:
            recorder.metrics.merge(self._kernel_counters, namespace="engine")
            self._kernel_counters = {}
        # The run record carries the engine's lifetime incremental.*
        # totals (dotted names pass through merge unprefixed).
        recorder.metrics.merge(self.metrics.snapshot())
        record = recorder.finish(self._n_points, n_dims=self._n_dims)
        return DetectionResult(
            n_points=self._n_points,
            outlier_mask=self._outlier_mask.copy(),
            core_mask=self._core_mask.copy(),
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )

    def __repr__(self) -> str:
        return (
            f"IncrementalDBSCOUT(eps={self.eps}, min_pts={self.min_pts}, "
            f"n_points={self._n_points}, n_cells={len(self._cells)}, "
            f"pending_dirty={len(self._dirty)})"
        )
