"""Pluggable pair-counting kernel tier for the DBSCOUT engines.

Two implementations of one exact contract (see :mod:`.base`):

* ``"numpy"`` — :class:`NumpyKernel`, the extracted vectorized hot
  loop, always available;
* ``"c"`` — :class:`CKernel`, a small C source compiled on first use
  with the system compiler and loaded via :mod:`ctypes`.

Selection is by name through :func:`resolve_kernel`; ``"auto"`` (the
default everywhere) prefers the compiled tier and silently falls back
to NumPy when no compiler is available, recording a
``kernel.fallback`` metric instead of raising.  Both kernels produce
bit-identical labels, so the choice never changes results — only
speed.
"""

from __future__ import annotations

import os

from repro.core.kernels.base import (
    DEFAULT_PAIR_BUDGET,
    Kernel,
    normalize_pair_budget,
)
from repro.core.kernels.c_kernel import (
    CKernel,
    c_kernel_status,
    get_c_kernel,
)
from repro.core.kernels.numpy_kernel import NumpyKernel
from repro.exceptions import KernelBuildError, ParameterError

__all__ = [
    "DEFAULT_PAIR_BUDGET",
    "KERNEL_NAMES",
    "CKernel",
    "Kernel",
    "NumpyKernel",
    "c_kernel_status",
    "get_c_kernel",
    "normalize_kernel",
    "normalize_pair_budget",
    "resolve_kernel",
]

#: Accepted values for every ``kernel=`` option (facade, engines, CLI).
KERNEL_NAMES = ("auto", "numpy", "c")

_NUMPY_KERNEL = NumpyKernel()


def normalize_kernel(kernel: str | Kernel | None) -> str | Kernel:
    """Validate a ``kernel`` option without resolving it.

    ``None`` means ``"auto"``.  A :class:`Kernel` instance passes
    through untouched (tests inject doubles this way); a string must
    be one of :data:`KERNEL_NAMES`.

    Raises:
        ParameterError: If ``kernel`` is not a known name or a
            :class:`Kernel` instance.
    """
    if kernel is None:
        return "auto"
    if isinstance(kernel, Kernel):
        return kernel
    if not isinstance(kernel, str) or kernel not in KERNEL_NAMES:
        raise ParameterError(
            f"kernel must be one of {', '.join(KERNEL_NAMES)} "
            f"or a Kernel instance, got {kernel!r}"
        )
    return kernel


def resolve_kernel(
    kernel: str | Kernel | None = "auto",
    counters: dict[str, int] | None = None,
) -> Kernel:
    """Resolve a kernel option to a live :class:`Kernel` instance.

    ``"auto"`` honors the ``REPRO_KERNEL`` environment variable (same
    accepted names) and otherwise prefers the compiled kernel,
    falling back to NumPy — with ``counters["kernel.fallback"]``
    incremented — when it cannot be built.  An explicit ``"c"``
    request falls back the same way: kernel choice is a performance
    hint and must never turn a working detector into an error.

    Raises:
        ParameterError: If ``kernel`` is not a valid option.
    """
    kernel = normalize_kernel(kernel)
    if isinstance(kernel, Kernel):
        return kernel
    if kernel == "auto":
        env = os.environ.get("REPRO_KERNEL")
        if env:
            kernel = normalize_kernel(env)
            if isinstance(kernel, Kernel):  # pragma: no cover - str env
                return kernel
    if kernel == "numpy":
        return _NUMPY_KERNEL
    # "c" and "auto" both want the compiled tier.
    try:
        return get_c_kernel()
    except KernelBuildError:
        if counters is not None:
            counters["kernel.fallback"] = (
                counters.get("kernel.fallback", 0) + 1
            )
        return _NUMPY_KERNEL
