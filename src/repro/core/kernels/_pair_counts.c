/* Compiled pair-counting kernel for the DBSCOUT engines.
 *
 * Every function reproduces the repository's exact float contract
 * (see repro/core/kernels/base.py): squared distances accumulate one
 * dimension at a time in order --
 *
 *     acc = 0.0;
 *     for (dim = 0; dim < n_dims; dim++) {
 *         delta = p[dim] - q[dim];
 *         acc += delta * delta;       // round mul, then round add
 *     }
 *
 * -- and a candidate is a neighbor iff acc <= eps_sq.  The build MUST
 * disable FP contraction (-ffp-contract=off) so no compiler fuses the
 * multiply-add into an FMA with a different rounding; repro's
 * c_kernel.py passes the flag and the parity test suite enforces
 * bit-identity against the NumPy kernel.  Counts are exact integers,
 * so results are independent of batching or vectorization across
 * pairs (each pair's own op sequence is fixed by the dependency
 * chain above, which compilers cannot legally reassociate without
 * -ffast-math).
 */

#include <stdint.h>

/* Count, for each member point of each cell segment, the candidates
 * within sqrt(eps_sq).  Layout matches the NumPy kernel: members and
 * cands are flat cell-segmented index arrays into the (n, d) points
 * matrix; m_sizes / c_sizes give the per-cell segment lengths.
 * counts_out is aligned with members.  Returns the total number of
 * pairs tested (the distance_computations counter delta). */
int64_t repro_segmented_pair_counts(
    const double *points,
    int64_t n_dims,
    const int64_t *members,
    const int64_t *m_sizes,
    const int64_t *cands,
    const int64_t *c_sizes,
    int64_t n_cells,
    double eps_sq,
    int64_t *counts_out)
{
    int64_t total_pairs = 0;
    const int64_t *cell_members = members;
    const int64_t *cell_cands = cands;
    int64_t *out = counts_out;
    int64_t cell;
    for (cell = 0; cell < n_cells; cell++) {
        const int64_t m = m_sizes[cell];
        const int64_t c = c_sizes[cell];
        int64_t i;
        for (i = 0; i < m; i++) {
            const double *p = points + cell_members[i] * n_dims;
            int64_t count = 0;
            int64_t j;
            for (j = 0; j < c; j++) {
                const double *q = points + cell_cands[j] * n_dims;
                double acc = 0.0;
                int64_t dim;
                for (dim = 0; dim < n_dims; dim++) {
                    const double delta = p[dim] - q[dim];
                    acc += delta * delta;
                }
                if (acc <= eps_sq) {
                    count++;
                }
            }
            out[i] = count;
        }
        total_pairs += m * c;
        cell_members += m;
        cell_cands += c;
        out += m;
    }
    return total_pairs;
}

/* Dense (n_targets, n_cands) matrix of squared distances, row-major,
 * same accumulation order per pair.  The incremental engine's
 * dirty-region recomputation consumes this. */
void repro_sq_dists(
    const double *targets,
    int64_t n_targets,
    const double *cands,
    int64_t n_cands,
    int64_t n_dims,
    double *out)
{
    int64_t i;
    for (i = 0; i < n_targets; i++) {
        const double *p = targets + i * n_dims;
        double *row = out + i * n_cands;
        int64_t j;
        for (j = 0; j < n_cands; j++) {
            const double *q = cands + j * n_dims;
            double acc = 0.0;
            int64_t dim;
            for (dim = 0; dim < n_dims; dim++) {
                const double delta = p[dim] - q[dim];
                acc += delta * delta;
            }
            row[j] = acc;
        }
    }
}

/* Scalar squared distance; the distributed engine's record-at-a-time
 * SparkLite tasks call this through Kernel.sq_dist. */
double repro_sq_dist(const double *p, const double *q, int64_t n_dims)
{
    double acc = 0.0;
    int64_t dim;
    for (dim = 0; dim < n_dims; dim++) {
        const double delta = p[dim] - q[dim];
        acc += delta * delta;
    }
    return acc;
}
