"""The pair-counting kernel contract shared by every engine.

All of DBSCOUT's hot loops reduce to one primitive: given flat
per-cell *member* and *candidate* point-index segments, count for each
member how many candidates lie within ``sqrt(eps_sq)``.  The contract
is exact at the float level and every implementation must reproduce it
bit-for-bit:

* squared distances are accumulated **per dimension, in order**::

      acc = 0.0
      for dim in range(d):
          delta = p[dim] - q[dim]
          acc += delta * delta          # round the multiply, then the
                                        # add — two IEEE ops per dim

  No reassociation, no FMA contraction, no pairwise/BLAS reduction —
  a differently-associated sum can round one ulp away and flip an
  exactly-at-eps comparison (see ``repro.core.reference`` and the
  ``kernel_accumulation_order`` witness in ``tests/qa/corpus``);
* a candidate is a neighbor iff ``acc <= eps_sq`` (Definition 2 at
  the float level);
* per-member counts are exact integers, so any batching of the cell
  segments reproduces the same result.

:class:`Kernel` captures that contract behind three entry points:

* :meth:`Kernel.segmented_pair_counts` — the engines' flat-batch hot
  loop (``VectorizedEngine``, the ``n_jobs`` pool workers, and
  ``CoreModel.classify`` all feed it);
* :meth:`Kernel.sq_dists` — the dense target x candidate matrix used
  by the incremental engine's dirty-region recomputation;
* :meth:`Kernel.sq_dist` — the scalar form used by the distributed
  engine's record-at-a-time SparkLite tasks.

Implementations: :class:`repro.core.kernels.numpy_kernel.NumpyKernel`
(pure NumPy, always available) and
:class:`repro.core.kernels.c_kernel.CKernel` (a small C source file
compiled on first use with the system C compiler and loaded via
``ctypes``).  Selection and fallback live in
:func:`repro.core.kernels.resolve_kernel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["DEFAULT_PAIR_BUDGET", "Kernel", "normalize_pair_budget"]

#: Default number of member x candidate point pairs a kernel batch may
#: materialize at once.  Bounds the NumPy kernel's temporary arrays
#: (~5 float64/int64 vectors of this length); the C kernel streams
#: pair-at-a-time and ignores it.  Tunable per machine via
#: ``DBSCOUT(pair_budget=...)`` / ``--pair-budget``.
DEFAULT_PAIR_BUDGET = 4_000_000


def normalize_pair_budget(pair_budget: int | None) -> int:
    """Validate a ``pair_budget`` option and resolve it to a batch size.

    ``None`` means the default.  Positive integers are taken literally;
    booleans, zero, negatives, and non-integers are rejected (the same
    strictness as ``normalize_n_jobs``).

    Raises:
        ParameterError: If ``pair_budget`` is not a positive integer.
    """
    if pair_budget is None:
        return DEFAULT_PAIR_BUDGET
    if isinstance(pair_budget, bool) or not isinstance(
        pair_budget, (int, np.integer)
    ):
        raise ParameterError(
            f"pair_budget must be a positive integer or None, "
            f"got {pair_budget!r}"
        )
    pair_budget = int(pair_budget)
    if pair_budget < 1:
        raise ParameterError(
            f"pair_budget must be >= 1, got {pair_budget}"
        )
    return pair_budget


class Kernel(ABC):
    """One implementation of the exact pair-counting contract.

    Attributes:
        name: Stable identifier (``"numpy"`` or ``"c"``) recorded in
            run records and used by the process pool to re-resolve the
            kernel inside workers.
    """

    name: str = "abstract"

    @abstractmethod
    def segmented_pair_counts(
        self,
        array: np.ndarray,
        members_flat: np.ndarray,
        m_sizes: np.ndarray,
        cands_flat: np.ndarray,
        c_sizes: np.ndarray,
        eps_sq: float,
        counters: dict[str, int],
        pair_budget: int = DEFAULT_PAIR_BUDGET,
    ) -> np.ndarray:
        """Count, per member point, candidates within ``sqrt(eps_sq)``.

        Args:
            array: ``(n, d)`` C-contiguous float64 point coordinates.
            members_flat: Flat member point indices, cell-segmented.
            m_sizes: Per-cell member counts (one entry per cell).
            cands_flat: Flat candidate point indices, cell-segmented.
            c_sizes: Per-cell candidate counts (aligned with
                ``m_sizes``).
            eps_sq: Squared radius threshold, compared inclusively.
            counters: Receives ``distance_computations`` increments
                (the total number of member x candidate pairs tested).
            pair_budget: Batch-size hint; results are identical for
                every value.

        Returns:
            int64 counts aligned with ``members_flat``.
        """

    @abstractmethod
    def sq_dists(
        self, targets: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Dense ``(t, c)`` matrix of ordered-accumulation squared distances."""

    def sq_dist(
        self, p: tuple[float, ...], q: tuple[float, ...]
    ) -> float:
        """Scalar squared distance between two coordinate sequences.

        The default runs the contract's accumulation directly in
        Python — a left-to-right ``sum`` performs the identical IEEE
        operation sequence, so every implementation returns the same
        float.  Subclasses may override with a faster path.
        """
        return sum((a - b) * (a - b) for a, b in zip(p, q))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
