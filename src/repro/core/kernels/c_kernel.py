"""Compiled C implementation of the pair-counting kernel contract.

The kernel ships as one dependency-free C source file
(``_pair_counts.c``) compiled on first use with the system C compiler
(``$CC``, else ``gcc``, else ``cc``) into a shared library cached
under ``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro/kernels``) and
loaded via :mod:`ctypes` — no numba/Cython/build-system dependency.
The cache key hashes the source and the compile command, so editing
either transparently rebuilds.

Bit-exactness: the C loops accumulate ``acc += delta * delta`` one
dimension at a time — the same IEEE operation sequence per pair as the
NumPy kernel — and the build passes ``-ffp-contract=off
-fno-fast-math`` so the compiler cannot fuse the multiply-add into an
FMA or reassociate the accumulation.  Labels are therefore
bit-identical to the NumPy kernel for every input (enforced by
``tests/core/test_kernel_parity.py`` and the ``repro.qa`` fuzzer).

Every failure mode — no compiler, compile error, unloadable library —
raises :class:`~repro.exceptions.KernelBuildError`, which
:func:`repro.core.kernels.resolve_kernel` converts into a NumPy
fallback plus a ``kernel.fallback`` metric.  Nothing in this module is
allowed to take the engines down.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import pathlib
import shutil
import subprocess
import tempfile

import numpy as np

from repro.core.kernels.base import DEFAULT_PAIR_BUDGET, Kernel
from repro.exceptions import KernelBuildError

__all__ = ["CKernel", "build_library", "c_kernel_status", "get_c_kernel"]

_SOURCE_PATH = pathlib.Path(__file__).with_name("_pair_counts.c")

#: Exactness-critical flags: no FMA contraction, no fast-math
#: reassociation.  -O3 is safe — per-pair accumulation is a float
#: dependency chain the optimizer cannot legally reorder.
_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")

_C_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_C_INT64_P = ctypes.POINTER(ctypes.c_int64)


def _compiler() -> str | None:
    """The C compiler to use, or ``None`` when none is available."""
    explicit = os.environ.get("CC")
    if explicit:
        found = shutil.which(explicit)
        return found or explicit  # let subprocess surface the error
    for candidate in ("gcc", "cc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def _cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro" / "kernels"


def _build_key(compiler: str, source: bytes) -> str:
    digest = hashlib.sha256()
    digest.update(source)
    digest.update("\0".join((compiler,) + _CFLAGS).encode())
    return digest.hexdigest()[:16]


def build_library() -> pathlib.Path:
    """Compile (or reuse) the kernel shared library; return its path.

    Raises:
        KernelBuildError: No compiler, unreadable source, or a
            non-zero compile exit.
    """
    compiler = _compiler()
    if compiler is None:
        raise KernelBuildError(
            "no C compiler found (set $CC or install gcc/cc); "
            "falling back to the NumPy kernel"
        )
    try:
        source = _SOURCE_PATH.read_bytes()
    except OSError as exc:
        raise KernelBuildError(
            f"kernel source unreadable: {exc}"
        ) from exc
    cache = _cache_dir()
    target = cache / f"pair_counts_{_build_key(compiler, source)}.so"
    if target.exists():
        return target
    try:
        cache.mkdir(parents=True, exist_ok=True)
        # Compile to a private temp name, then atomically publish, so
        # concurrent processes never load a half-written library.
        fd, scratch = tempfile.mkstemp(
            suffix=".so", prefix="build_", dir=cache
        )
        os.close(fd)
        completed = subprocess.run(
            [compiler, *_CFLAGS, str(_SOURCE_PATH), "-o", scratch],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if completed.returncode != 0:
            os.unlink(scratch)
            detail = (completed.stderr or completed.stdout or "").strip()
            raise KernelBuildError(
                f"C kernel compile failed with {compiler}: "
                f"{detail[:500] or 'no compiler output'}"
            )
        os.replace(scratch, target)
    except KernelBuildError:
        raise
    except (OSError, subprocess.SubprocessError) as exc:
        raise KernelBuildError(
            f"C kernel build failed: {exc}"
        ) from exc
    return target


def _load(path: pathlib.Path) -> ctypes.CDLL:
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        raise KernelBuildError(
            f"compiled kernel {path} failed to load: {exc}"
        ) from exc
    try:
        lib.repro_segmented_pair_counts.restype = ctypes.c_int64
        lib.repro_segmented_pair_counts.argtypes = [
            _C_DOUBLE_P,  # points
            ctypes.c_int64,  # n_dims
            _C_INT64_P,  # members
            _C_INT64_P,  # m_sizes
            _C_INT64_P,  # cands
            _C_INT64_P,  # c_sizes
            ctypes.c_int64,  # n_cells
            ctypes.c_double,  # eps_sq
            _C_INT64_P,  # counts_out
        ]
        lib.repro_sq_dists.restype = None
        lib.repro_sq_dists.argtypes = [
            _C_DOUBLE_P,
            ctypes.c_int64,
            _C_DOUBLE_P,
            ctypes.c_int64,
            ctypes.c_int64,
            _C_DOUBLE_P,
        ]
        lib.repro_sq_dist.restype = ctypes.c_double
        lib.repro_sq_dist.argtypes = [
            _C_DOUBLE_P,
            _C_DOUBLE_P,
            ctypes.c_int64,
        ]
    except AttributeError as exc:
        raise KernelBuildError(
            f"compiled kernel {path} is missing symbols: {exc}"
        ) from exc
    return lib


def _as_f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


def _as_i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _f64_ptr(array: np.ndarray):
    return array.ctypes.data_as(_C_DOUBLE_P)


def _i64_ptr(array: np.ndarray):
    return array.ctypes.data_as(_C_INT64_P)


class CKernel(Kernel):
    """The compiled tier: identical labels, none of the gather overhead.

    Where the NumPy kernel materializes ~5 temporary vectors per batch
    (expanded index gathers, the pair-distance vector, the comparison
    mask), the C loops stream each pair through registers — the 3-10x
    win the benchmarks measure is all memory traffic.
    """

    name = "c"

    def __init__(self, library_path: pathlib.Path) -> None:
        self.library_path = pathlib.Path(library_path)
        self._lib = _load(self.library_path)

    def segmented_pair_counts(
        self,
        array: np.ndarray,
        members_flat: np.ndarray,
        m_sizes: np.ndarray,
        cands_flat: np.ndarray,
        c_sizes: np.ndarray,
        eps_sq: float,
        counters: dict[str, int],
        pair_budget: int = DEFAULT_PAIR_BUDGET,
    ) -> np.ndarray:
        counts_out = np.zeros(members_flat.shape[0], dtype=np.int64)
        if m_sizes.shape[0] == 0 or members_flat.shape[0] == 0:
            return counts_out
        array = _as_f64(array)
        members_flat = _as_i64(members_flat)
        m_sizes = _as_i64(m_sizes)
        cands_flat = _as_i64(cands_flat)
        c_sizes = _as_i64(c_sizes)
        total_pairs = self._lib.repro_segmented_pair_counts(
            _f64_ptr(array),
            array.shape[1],
            _i64_ptr(members_flat),
            _i64_ptr(m_sizes),
            _i64_ptr(cands_flat),
            _i64_ptr(c_sizes),
            m_sizes.shape[0],
            float(eps_sq),
            _i64_ptr(counts_out),
        )
        counters["distance_computations"] = counters.get(
            "distance_computations", 0
        ) + int(total_pairs)
        return counts_out

    def sq_dists(
        self, targets: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        targets = _as_f64(targets)
        candidates = _as_f64(candidates)
        out = np.empty(
            (targets.shape[0], candidates.shape[0]), dtype=np.float64
        )
        if out.size:
            self._lib.repro_sq_dists(
                _f64_ptr(targets),
                targets.shape[0],
                _f64_ptr(candidates),
                candidates.shape[0],
                targets.shape[1],
                _f64_ptr(out),
            )
        return out

    def sq_dist(
        self, p: tuple[float, ...], q: tuple[float, ...]
    ) -> float:
        a = _as_f64(np.asarray(p, dtype=np.float64))
        b = _as_f64(np.asarray(q, dtype=np.float64))
        if a.shape[0] == 0:
            return 0.0
        return float(
            self._lib.repro_sq_dist(_f64_ptr(a), _f64_ptr(b), a.shape[0])
        )

    def __reduce__(self):
        # A ctypes CDLL cannot cross a process boundary.  Ship a
        # re-resolution instead: the receiving process rebuilds (or
        # reloads) its own compiled kernel, falling back to NumPy —
        # bit-identical by the kernel contract — when it has no
        # compiler.
        return (_rehydrated_kernel, ())


def _rehydrated_kernel() -> Kernel:
    """Worker-side stand-in for a pickled :class:`CKernel`."""
    try:
        return get_c_kernel()
    except KernelBuildError:
        from repro.core.kernels.numpy_kernel import NumpyKernel

        return NumpyKernel()


#: Build outcome cache keyed by (compiler, cache dir): either the
#: loaded CKernel or the KernelBuildError explaining why there is
#: none.  Re-resolving under a different $CC / $REPRO_KERNEL_CACHE
#: (the CI no-compiler simulation does exactly this) retries cleanly.
_BUILD_CACHE: dict[tuple[str | None, str], CKernel | KernelBuildError] = {}


def get_c_kernel() -> CKernel:
    """The process-wide C kernel, compiling on first use.

    Raises:
        KernelBuildError: When the kernel cannot be built or loaded;
            the outcome (success or failure) is cached per
            compiler/cache-dir combination.
    """
    key = (_compiler(), str(_cache_dir()))
    cached = _BUILD_CACHE.get(key)
    if cached is None:
        try:
            cached = CKernel(build_library())
        except KernelBuildError as exc:
            cached = exc
        _BUILD_CACHE[key] = cached
    if isinstance(cached, KernelBuildError):
        raise cached
    return cached


def c_kernel_status() -> dict[str, object]:
    """Diagnostic snapshot: is the compiled tier available, and why not."""
    try:
        kernel = get_c_kernel()
    except KernelBuildError as exc:
        return {
            "available": False,
            "compiler": _compiler(),
            "reason": str(exc),
        }
    return {
        "available": True,
        "compiler": _compiler(),
        "library": str(kernel.library_path),
    }
