"""Pure-NumPy implementation of the pair-counting kernel contract.

This is the original ``repro.core.vectorized._segmented_pair_counts``
hot loop, extracted behind the :class:`~repro.core.kernels.base.Kernel`
interface so the compiled tier can slot in beside it.  Cells are
processed in batches of up to ``pair_budget`` point pairs with a
handful of large vectorized operations (gather, fused squared
distance, ``add.reduceat`` segment sums), avoiding per-cell Python
overhead on sparse grids with many tiny cells.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import DEFAULT_PAIR_BUDGET, Kernel

__all__ = ["NumpyKernel", "segmented_pair_counts", "sq_dists"]


def segmented_pair_counts(
    array: np.ndarray,
    members_flat: np.ndarray,
    m_sizes: np.ndarray,
    cands_flat: np.ndarray,
    c_sizes: np.ndarray,
    eps_sq: float,
    counters: dict[str, int],
    pair_budget: int = DEFAULT_PAIR_BUDGET,
) -> np.ndarray:
    """Count, per target point, candidates within ``sqrt(eps_sq)``.

    Inputs are the flat per-cell member/candidate arrays produced by
    the engines' cell planners.  A cell with zero candidates
    contributes zero counts for all its members.

    Returns:
        Counts aligned with ``members_flat``.
    """
    n_cells = m_sizes.shape[0]
    counts_out = np.zeros(members_flat.shape[0], dtype=np.int64)
    if n_cells == 0 or members_flat.shape[0] == 0:
        return counts_out
    member_offsets = np.concatenate(([0], np.cumsum(m_sizes)))
    cand_offsets = np.concatenate(([0], np.cumsum(c_sizes)))
    cum_pairs = np.cumsum(m_sizes * c_sizes)
    n_dims = array.shape[1]
    start_cell = 0
    while start_cell < n_cells:
        base = int(cum_pairs[start_cell - 1]) if start_cell else 0
        end_cell = (
            int(np.searchsorted(cum_pairs, base + pair_budget, side="left"))
            + 1
        )
        end_cell = min(max(end_cell, start_cell + 1), n_cells)
        m_sz = m_sizes[start_cell:end_cell]
        c_sz = c_sizes[start_cell:end_cell]
        members = members_flat[
            member_offsets[start_cell] : member_offsets[end_cell]
        ]
        cands = cands_flat[
            cand_offsets[start_cell] : cand_offsets[end_cell]
        ]
        # Each member of cell j owns one contiguous run of c_j pairs.
        run_lengths = np.repeat(c_sz, m_sz)
        total_pairs = int(run_lengths.sum())
        if total_pairs == 0:
            start_cell = end_cell
            continue
        target_idx = np.repeat(members, run_lengths)
        cand_local_start = np.repeat(
            np.concatenate(([0], np.cumsum(c_sz)[:-1])), m_sz
        )
        run_starts = np.concatenate(([0], np.cumsum(run_lengths)))
        pos_in_run = np.arange(total_pairs, dtype=np.int64) - np.repeat(
            run_starts[:-1], run_lengths
        )
        cand_idx = cands[
            np.repeat(cand_local_start, run_lengths) + pos_in_run
        ]
        sq = np.zeros(total_pairs, dtype=np.float64)
        for dim in range(n_dims):
            delta = array[target_idx, dim] - array[cand_idx, dim]
            sq += delta * delta
        counters["distance_computations"] = (
            counters.get("distance_computations", 0) + total_pairs
        )
        within = (sq <= eps_sq).astype(np.int64)
        per_member = np.zeros(run_lengths.shape[0], dtype=np.int64)
        nonempty = run_lengths > 0
        if nonempty.any():
            per_member[nonempty] = np.add.reduceat(
                within, run_starts[:-1][nonempty]
            )
        counts_out[
            member_offsets[start_cell] : member_offsets[end_cell]
        ] = per_member
        start_cell = end_cell
    return counts_out


def sq_dists(targets: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Dense squared distances accumulated per dimension, in order.

    Reductions with a different association (``einsum``, BLAS dot) can
    round one ulp away and flip an exactly-at-eps comparison; this
    form performs the contract's exact operation sequence per pair.
    """
    sq = np.zeros((targets.shape[0], candidates.shape[0]), dtype=np.float64)
    for dim in range(targets.shape[1]):
        delta = targets[:, dim, None] - candidates[None, :, dim]
        sq += delta * delta
    return sq


class NumpyKernel(Kernel):
    """The always-available reference implementation of the contract."""

    name = "numpy"

    def segmented_pair_counts(
        self,
        array: np.ndarray,
        members_flat: np.ndarray,
        m_sizes: np.ndarray,
        cands_flat: np.ndarray,
        c_sizes: np.ndarray,
        eps_sq: float,
        counters: dict[str, int],
        pair_budget: int = DEFAULT_PAIR_BUDGET,
    ) -> np.ndarray:
        return segmented_pair_counts(
            array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
            counters, pair_budget=pair_budget,
        )

    def sq_dists(
        self, targets: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        return sq_dists(targets, candidates)
