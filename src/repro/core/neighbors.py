"""Exact neighboring-cell enumeration (Definition 8, Lemma 3, Table I).

Two non-empty cells are *neighbors* when the minimum possible distance
between a point of one and a point of the other is strictly below
``eps``.  With cells of side ``l = eps / sqrt(d)``, the offset vector
``j`` between two cells yields a minimum gap of ``g_i = max(0, |j_i|-1)``
cell-sides along dimension ``i``, so the cells are neighbors iff::

    sum_i max(0, |j_i| - 1)^2  <  d        (all integer arithmetic)

because ``eps^2 = d * l^2``.  The inequality is strict: the infimum is
taken over the closure of the half-open cells and is not attained by
actual points, so any pair of points at distance ``<= eps`` lives in
cells satisfying the strict inequality.

The number of neighbor offsets depends only on ``d`` and is denoted
``k_d``.  ``kd_upper_bound`` gives the loose bound
``(2 * ceil(sqrt(d)) + 1) ** d`` of Lemma 3; ``count_neighbor_offsets``
computes the exact ``k_d`` without enumerating offsets (closed-form
polynomial convolution), matching the "Actual" column of Table I.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "kd_upper_bound",
    "count_neighbor_offsets",
    "neighbor_offsets",
    "NeighborStencil",
    "min_cell_gap_squared",
    "max_cell_gap_squared",
]

#: Enumerating offsets materializes up to ``kd_upper_bound(d)`` candidate
#: vectors; beyond this dimensionality we refuse and callers must rely on
#: the counting form.  d=8 gives ~5.8M candidates which is still fine.
MAX_ENUMERATION_DIMS = 8


def _check_dims(n_dims: int) -> None:
    if not isinstance(n_dims, (int, np.integer)) or n_dims < 1:
        raise ParameterError(f"n_dims must be a positive integer, got {n_dims!r}")


def kd_upper_bound(n_dims: int) -> int:
    """Loose upper bound on ``k_d`` from Lemma 3: ``(2*ceil(sqrt(d))+1)^d``."""
    _check_dims(n_dims)
    reach = math.isqrt(n_dims - 1) + 1  # ceil(sqrt(d))
    return (2 * reach + 1) ** n_dims


def min_cell_gap_squared(offset: tuple[int, ...] | np.ndarray) -> int:
    """Squared minimum gap, in cell-side units, between cells at ``offset``.

    This is ``sum_i max(0, |j_i| - 1)^2``; the actual minimum distance is
    its square root times the cell side ``l``.
    """
    total = 0
    for j in offset:
        gap = abs(int(j)) - 1
        if gap > 0:
            total += gap * gap
    return total


def max_cell_gap_squared(offset: tuple[int, ...] | np.ndarray) -> int:
    """Squared maximum span, in cell-side units, between cells at ``offset``.

    This is ``sum_i (|j_i| + 1)^2``: along each dimension the farthest
    two points of the two (closed) cells can be is ``(|j_i| + 1)`` cell
    sides.  The actual supremum of the point distance is the square root
    of this value times the cell side ``l`` (not attained, because cells
    are half-open).

    Together with :func:`min_cell_gap_squared` this brackets every
    possible point distance across a cell pair.  Because
    ``eps^2 = d * l^2``, cells at ``offset`` are *fully covered* — every
    point of one is within ``eps`` of every point of the other — iff
    ``max_cell_gap_squared(offset) <= d``.  With diagonal-``eps`` cells
    each term is at least 1, so only the zero offset (Lemma 1: points
    sharing a cell) satisfies this statically; the vectorized engine
    refines the bound with per-cell point bounding boxes to prune
    data-dependently.
    """
    total = 0
    for j in offset:
        span = abs(int(j)) + 1
        total += span * span
    return total


@lru_cache(maxsize=64)
def count_neighbor_offsets(n_dims: int) -> int:
    """Exact ``k_d``: the number of neighbor offsets in ``d`` dimensions.

    Computed by dynamic programming over dimensions: each dimension
    contributes a squared gap of ``0`` (offsets -1, 0, +1 -> 3 ways) or
    ``(a-1)^2`` for ``|j| = a >= 2`` (2 ways each), and an offset vector
    is a neighbor iff the contributions sum to strictly less than ``d``.
    """
    _check_dims(n_dims)
    reach = math.isqrt(n_dims - 1) + 1
    # ways[s] = number of per-dimension offsets with squared gap s.
    ways: dict[int, int] = {0: 3}
    for magnitude in range(2, reach + 1):
        ways[(magnitude - 1) ** 2] = 2
    # counts[s] = number of offset prefixes with total squared gap s < d.
    counts = {0: 1}
    for _ in range(n_dims):
        next_counts: dict[int, int] = {}
        for total, n_prefixes in counts.items():
            for gap_sq, n_ways in ways.items():
                new_total = total + gap_sq
                if new_total < n_dims:
                    next_counts[new_total] = (
                        next_counts.get(new_total, 0) + n_prefixes * n_ways
                    )
        counts = next_counts
    return sum(counts.values())


@lru_cache(maxsize=16)
def _offsets_cached(n_dims: int) -> np.ndarray:
    reach = math.isqrt(n_dims - 1) + 1
    per_dim = range(-reach, reach + 1)
    rows = [
        offset
        for offset in itertools.product(per_dim, repeat=n_dims)
        if min_cell_gap_squared(offset) < n_dims
    ]
    return np.array(rows, dtype=np.int64)


def neighbor_offsets(n_dims: int) -> np.ndarray:
    """Enumerate all neighbor offsets for ``d`` dimensions.

    Returns:
        Integer array of shape ``(k_d, d)``.  The zero offset (the cell
        itself) is included, as Definition 8 makes each cell a neighbor
        of itself.

    Raises:
        ParameterError: If ``n_dims`` exceeds ``MAX_ENUMERATION_DIMS``
            (use :func:`count_neighbor_offsets` for counting at higher d).
    """
    _check_dims(n_dims)
    if n_dims > MAX_ENUMERATION_DIMS:
        raise ParameterError(
            f"neighbor offset enumeration is limited to "
            f"d <= {MAX_ENUMERATION_DIMS}; got d={n_dims}. "
            "Use count_neighbor_offsets for the count only."
        )
    return _offsets_cached(n_dims).copy()


class NeighborStencil:
    """Reusable neighbor-offset stencil for a fixed dimensionality.

    Wraps the offset table with convenience iterators used by both the
    vectorized and the distributed DBSCOUT engines, as well as by the
    RP-DBSCAN baseline.
    """

    def __init__(self, n_dims: int) -> None:
        _check_dims(n_dims)
        self.n_dims = int(n_dims)
        self.offsets = neighbor_offsets(n_dims)
        self._offset_tuples: list[tuple[int, ...]] | None = None

    @property
    def k_d(self) -> int:
        """Number of neighbor offsets (the constant ``k_d`` of the paper)."""
        return int(self.offsets.shape[0])

    def covered_offset_mask(self) -> np.ndarray:
        """Mask of offsets whose whole cell pair lies within ``eps``.

        ``mask[i]`` is ``True`` when cells at ``offsets[i]`` are fully
        covered: ``max_cell_gap_squared(offsets[i]) <= d``, so every
        point of one cell is a neighbor (Definition 2) of every point
        of the other.  For diagonal-``eps`` cells this holds only for
        the zero offset, which is exactly Lemma 1.
        """
        spans = np.abs(self.offsets) + 1
        return (spans * spans).sum(axis=1) <= self.n_dims

    def offset_tuples(self) -> list[tuple[int, ...]]:
        """Return the offsets as a cached list of Python int tuples."""
        if self._offset_tuples is None:
            self._offset_tuples = [
                tuple(int(j) for j in row) for row in self.offsets
            ]
        return self._offset_tuples

    def neighbors_of(self, cell: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Return the coordinates of every potential neighbor of ``cell``."""
        return [
            tuple(c + j for c, j in zip(cell, offset))
            for offset in self.offset_tuples()
        ]

    def __repr__(self) -> str:
        return f"NeighborStencil(n_dims={self.n_dims}, k_d={self.k_d})"
