"""Exact neighboring-cell enumeration (Definition 8, Lemma 3, Table I).

Two non-empty cells are *neighbors* when the minimum possible distance
between a point of one and a point of the other is strictly below
``eps``.  With cells of side ``l = eps / sqrt(d)``, the offset vector
``j`` between two cells yields a minimum gap of ``g_i = max(0, |j_i|-1)``
cell-sides along dimension ``i``, so the cells are neighbors iff::

    sum_i max(0, |j_i| - 1)^2  <  d        (all integer arithmetic)

because ``eps^2 = d * l^2``.  The inequality is strict: the infimum is
taken over the closure of the half-open cells and is not attained by
actual points, so any pair of points at distance ``<= eps`` lives in
cells satisfying the strict inequality.

The number of neighbor offsets depends only on ``d`` and is denoted
``k_d``.  ``kd_upper_bound`` gives the loose bound
``(2 * ceil(sqrt(d)) + 1) ** d`` of Lemma 3; ``count_neighbor_offsets``
computes the exact ``k_d`` without enumerating offsets (closed-form
polynomial convolution), matching the "Actual" column of Table I.

Floating point and the boundary ring
------------------------------------

The strict inequality above is a *real-arithmetic* argument.  The
engines' distance kernel works in float64: it accumulates
``sq += delta * delta`` per dimension and tests ``sq <= fl(eps^2)``,
and rounding can pull a pair whose true distance is a hair above
``eps`` down onto exactly ``fl(eps^2)``.  Such a pair may live in
cells at *exactly* the excluded minimum gap — offsets with
``min_cell_gap_squared(offset) == d``, the "boundary ring" (e.g.
``(+-2, +-2)`` in 2-D, whose corner gap is ``sqrt(2) * l = eps``).  A
strict stencil would never compare the pair, silently disagreeing
with the reference kernel (a real divergence found by the
``repro.qa`` differential fuzzer: two 1-D points at distance
``0.7 + 5e-17`` with ``eps = 0.7`` compute ``sq == eps^2`` yet sit
two cells apart).

Offsets at ``min_cell_gap_squared >= d + 1`` have a minimum gap of
``sqrt((d+1)/d) * eps`` — at least 6% above ``eps`` for ``d <= 16``
and always a relative ``1/(2d)`` margin, astronomically beyond the
few-ulp slop of the kernel — so including the boundary ring makes the
candidate enumeration exhaustive for the float kernel.

:func:`neighbor_offsets` / :func:`count_neighbor_offsets` keep the
paper's strict definition (Table I is quoted digit-for-digit in tests
and reports).  :class:`NeighborStencil` — what the engines actually
iterate — includes the boundary ring by default, so ``stencil.k_d``
is slightly larger than Table I (25 vs 21 in 2-D).
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "kd_upper_bound",
    "count_neighbor_offsets",
    "neighbor_offsets",
    "NeighborStencil",
    "min_cell_gap_squared",
    "max_cell_gap_squared",
]

#: Enumerating offsets materializes up to ``kd_upper_bound(d)`` candidate
#: vectors; beyond this dimensionality we refuse and callers must rely on
#: the counting form.  d=8 gives ~5.8M candidates which is still fine.
MAX_ENUMERATION_DIMS = 8


def _check_dims(n_dims: int) -> None:
    if not isinstance(n_dims, (int, np.integer)) or n_dims < 1:
        raise ParameterError(f"n_dims must be a positive integer, got {n_dims!r}")


def kd_upper_bound(n_dims: int) -> int:
    """Loose upper bound on ``k_d`` from Lemma 3: ``(2*ceil(sqrt(d))+1)^d``."""
    _check_dims(n_dims)
    reach = math.isqrt(n_dims - 1) + 1  # ceil(sqrt(d))
    return (2 * reach + 1) ** n_dims


def min_cell_gap_squared(offset: tuple[int, ...] | np.ndarray) -> int:
    """Squared minimum gap, in cell-side units, between cells at ``offset``.

    This is ``sum_i max(0, |j_i| - 1)^2``; the actual minimum distance is
    its square root times the cell side ``l``.
    """
    total = 0
    for j in offset:
        gap = abs(int(j)) - 1
        if gap > 0:
            total += gap * gap
    return total


def max_cell_gap_squared(offset: tuple[int, ...] | np.ndarray) -> int:
    """Squared maximum span, in cell-side units, between cells at ``offset``.

    This is ``sum_i (|j_i| + 1)^2``: along each dimension the farthest
    two points of the two (closed) cells can be is ``(|j_i| + 1)`` cell
    sides.  The actual supremum of the point distance is the square root
    of this value times the cell side ``l`` (not attained, because cells
    are half-open).

    Together with :func:`min_cell_gap_squared` this brackets every
    possible point distance across a cell pair.  Because
    ``eps^2 = d * l^2``, cells at ``offset`` are *fully covered* — every
    point of one is within ``eps`` of every point of the other — iff
    ``max_cell_gap_squared(offset) <= d``.  With diagonal-``eps`` cells
    each term is at least 1, so only the zero offset (Lemma 1: points
    sharing a cell) satisfies this statically; the vectorized engine
    refines the bound with per-cell point bounding boxes to prune
    data-dependently.
    """
    total = 0
    for j in offset:
        span = abs(int(j)) + 1
        total += span * span
    return total


@lru_cache(maxsize=64)
def count_neighbor_offsets(n_dims: int) -> int:
    """Exact ``k_d``: the number of neighbor offsets in ``d`` dimensions.

    Computed by dynamic programming over dimensions: each dimension
    contributes a squared gap of ``0`` (offsets -1, 0, +1 -> 3 ways) or
    ``(a-1)^2`` for ``|j| = a >= 2`` (2 ways each), and an offset vector
    is a neighbor iff the contributions sum to strictly less than ``d``.
    """
    _check_dims(n_dims)
    reach = math.isqrt(n_dims - 1) + 1
    # ways[s] = number of per-dimension offsets with squared gap s.
    ways: dict[int, int] = {0: 3}
    for magnitude in range(2, reach + 1):
        ways[(magnitude - 1) ** 2] = 2
    # counts[s] = number of offset prefixes with total squared gap s < d.
    counts = {0: 1}
    for _ in range(n_dims):
        next_counts: dict[int, int] = {}
        for total, n_prefixes in counts.items():
            for gap_sq, n_ways in ways.items():
                new_total = total + gap_sq
                if new_total < n_dims:
                    next_counts[new_total] = (
                        next_counts.get(new_total, 0) + n_prefixes * n_ways
                    )
        counts = next_counts
    return sum(counts.values())


@lru_cache(maxsize=16)
def _offsets_cached(n_dims: int, include_boundary: bool) -> np.ndarray:
    reach = math.isqrt(n_dims - 1) + 1
    limit = n_dims if include_boundary else n_dims - 1
    if include_boundary and math.isqrt(n_dims) ** 2 == n_dims:
        # When d is a perfect square the ring contains |j| = reach + 1
        # along a single axis ((|j| - 1)^2 == d), e.g. +-2 in 1-D.
        reach += 1
    per_dim = range(-reach, reach + 1)
    rows = [
        offset
        for offset in itertools.product(per_dim, repeat=n_dims)
        if min_cell_gap_squared(offset) <= limit
    ]
    return np.array(rows, dtype=np.int64)


def neighbor_offsets(
    n_dims: int, *, include_boundary: bool = False
) -> np.ndarray:
    """Enumerate all neighbor offsets for ``d`` dimensions.

    Args:
        n_dims: Dimensionality ``d``.
        include_boundary: When True, also include the boundary ring —
            offsets whose minimum cell gap is *exactly* ``eps``
            (``min_cell_gap_squared(offset) == d``).  The paper's
            strict definition excludes them; float64 kernels need them
            (see the module docstring).

    Returns:
        Integer array of shape ``(k_d, d)``.  The zero offset (the cell
        itself) is included, as Definition 8 makes each cell a neighbor
        of itself.

    Raises:
        ParameterError: If ``n_dims`` exceeds ``MAX_ENUMERATION_DIMS``
            (use :func:`count_neighbor_offsets` for counting at higher d).
    """
    _check_dims(n_dims)
    if n_dims > MAX_ENUMERATION_DIMS:
        raise ParameterError(
            f"neighbor offset enumeration is limited to "
            f"d <= {MAX_ENUMERATION_DIMS}; got d={n_dims}. "
            "Use count_neighbor_offsets for the count only."
        )
    return _offsets_cached(n_dims, bool(include_boundary)).copy()


class NeighborStencil:
    """Reusable neighbor-offset stencil for a fixed dimensionality.

    Wraps the offset table with convenience iterators used by both the
    vectorized and the distributed DBSCOUT engines, as well as by the
    RP-DBSCAN baseline.

    Args:
        n_dims: Dimensionality ``d``.
        include_boundary: Include the boundary ring of offsets at
            minimum gap exactly ``eps`` (default True).  Required for
            exactness against the float64 distance kernel — see the
            module docstring.  ``False`` gives the paper's strict
            Table-I stencil for analysis/reporting purposes.
    """

    def __init__(self, n_dims: int, include_boundary: bool = True) -> None:
        _check_dims(n_dims)
        self.n_dims = int(n_dims)
        self.include_boundary = bool(include_boundary)
        self.offsets = neighbor_offsets(
            n_dims, include_boundary=self.include_boundary
        )
        self._offset_tuples: list[tuple[int, ...]] | None = None

    @property
    def k_d(self) -> int:
        """Number of offsets in this stencil.

        With the default boundary ring this is slightly larger than the
        paper's ``k_d`` constant (use :func:`count_neighbor_offsets`
        for the strict Table-I value).
        """
        return int(self.offsets.shape[0])

    def covered_offset_mask(self) -> np.ndarray:
        """Mask of offsets whose whole cell pair lies within ``eps``.

        ``mask[i]`` is ``True`` when cells at ``offsets[i]`` are fully
        covered: ``max_cell_gap_squared(offsets[i]) <= d``, so every
        point of one cell is a neighbor (Definition 2) of every point
        of the other.  For diagonal-``eps`` cells this holds only for
        the zero offset, which is exactly Lemma 1.
        """
        spans = np.abs(self.offsets) + 1
        return (spans * spans).sum(axis=1) <= self.n_dims

    def offset_tuples(self) -> list[tuple[int, ...]]:
        """Return the offsets as a cached list of Python int tuples."""
        if self._offset_tuples is None:
            self._offset_tuples = [
                tuple(int(j) for j in row) for row in self.offsets
            ]
        return self._offset_tuples

    def neighbors_of(self, cell: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Return the coordinates of every potential neighbor of ``cell``."""
        shifted = self.offsets + np.asarray(cell, dtype=np.int64)
        return list(map(tuple, shifted.tolist()))

    def __repr__(self) -> str:
        return f"NeighborStencil(n_dims={self.n_dims}, k_d={self.k_d})"
