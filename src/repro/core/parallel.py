"""Multi-core sharded execution for the vectorized engine's hot loop.

The vectorized engine resolves each work cell with one block of
pairwise squared distances (``Kernel.segmented_pair_counts``, see
:mod:`repro.core.kernels`).  That work
decomposes cleanly across processes: the per-cell member/candidate
segments are independent, so any contiguous split of the cell list can
be counted by a separate worker and the per-member counts concatenated
back in order.  Results are bit-identical to the serial path for every
``n_jobs`` because the per-pair float comparisons do not depend on how
cells are batched and the per-member counts are exact integers.

To avoid pickling the (potentially multi-GB) point array into every
worker, the large inputs are published once as named
``multiprocessing.shared_memory`` blocks; each worker maps them and
slices out its shard.  Only the small per-shard size arrays and the
resulting counts travel over the pipe.

Three public pieces:

* :func:`normalize_n_jobs` — option validation shared with the API
  facade (``DBSCOUT(engine="vectorized", n_jobs=...)``);
* :func:`plan_shards` — contiguous, weight-balanced partition of the
  work-cell list (weights = member x candidate pair counts);
* :func:`run_sharded_pair_counts` — the pool runner itself.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_all_start_methods, get_context, shared_memory

import numpy as np

from repro.exceptions import ParameterError
from repro.obs import span as obs_span

__all__ = [
    "normalize_n_jobs",
    "plan_shards",
    "run_sharded_pair_counts",
]


def normalize_n_jobs(n_jobs: int | None) -> int:
    """Validate an ``n_jobs`` option and resolve it to a worker count.

    Follows the sklearn convention: ``None`` means 1, positive values
    are taken literally, and negative values count back from the CPU
    count (``-1`` = all cores).  ``0``, booleans, and non-integers are
    rejected.

    Raises:
        ParameterError: If ``n_jobs`` is not a nonzero integer.
    """
    if n_jobs is None:
        return 1
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, (int, np.integer)):
        raise ParameterError(
            f"n_jobs must be a nonzero integer or None, got {n_jobs!r}"
        )
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ParameterError(
            "n_jobs must not be 0 (use 1 for serial, -1 for all cores)"
        )
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def plan_shards(
    weights: np.ndarray, n_shards: int
) -> list[tuple[int, int]]:
    """Split ``range(len(weights))`` into contiguous weight-balanced spans.

    Args:
        weights: Nonnegative per-item work estimates (for the engine:
            member count x candidate count per work cell).
        n_shards: Desired number of spans.

    Returns:
        A list of ``(start, end)`` half-open index spans covering the
        items in order.  Every span is non-empty; fewer than
        ``n_shards`` spans are returned when there are fewer items (or
        the weight mass concentrates in few items).  Deterministic.
    """
    n_items = int(len(weights))
    if n_items == 0 or n_shards <= 1:
        return [(0, n_items)] if n_items else []
    n_shards = min(n_shards, n_items)
    cum = np.cumsum(np.asarray(weights, dtype=np.float64))
    total = float(cum[-1])
    if total <= 0.0:
        # No measurable work: split evenly by item count.
        edges = np.linspace(0, n_items, n_shards + 1).astype(np.int64)
    else:
        targets = total * np.arange(1, n_shards) / n_shards
        edges = np.concatenate(
            ([0], np.searchsorted(cum, targets, side="left") + 1, [n_items])
        )
    spans = []
    previous = 0
    for edge in edges[1:]:
        edge = int(min(max(edge, previous), n_items))
        if edge > previous:
            spans.append((previous, edge))
            previous = edge
    if previous < n_items:
        spans.append((previous, n_items))
    return spans


def _mp_context():
    """Cheapest available multiprocessing context (fork where supported)."""
    methods = get_all_start_methods()
    return get_context("fork" if "fork" in methods else "spawn")


def _share(array: np.ndarray) -> tuple[shared_memory.SharedMemory, tuple]:
    """Copy ``array`` into a fresh shared-memory block.

    Returns the block (caller owns close/unlink) and the attach spec
    ``(name, dtype_str, shape)`` to pass to workers.
    """
    block = shared_memory.SharedMemory(
        create=True, size=max(1, array.nbytes)
    )
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
    view[...] = array
    return block, (block.name, array.dtype.str, array.shape)


def _attach(spec: tuple) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map a shared block published by :func:`_share` (read-only use)."""
    name, dtype_str, shape = spec
    try:
        block = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Workers share the owner's resource tracker (the fd is
        # inherited by fork and passed through by spawn), and the
        # tracker's registry is a set — the attach-side re-register is
        # a no-op and the owner's unlink unregisters exactly once.
        block = shared_memory.SharedMemory(name=name)
    return block, np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=block.buf)


def _pair_count_shard(
    points_spec: tuple,
    members_spec: tuple,
    cands_spec: tuple,
    member_span: tuple[int, int],
    cand_span: tuple[int, int],
    m_sizes: np.ndarray,
    c_sizes: np.ndarray,
    eps_sq: float,
    pair_budget: int,
    kernel: str = "numpy",
) -> tuple[np.ndarray, int]:
    """Worker: count one shard of cells against the shared arrays.

    The kernel travels as its *name*: a ctypes-backed kernel object is
    not picklable, so each worker re-resolves it (with spawn, that may
    trigger one compile-cache hit; with fork the loaded library is
    inherited).  A worker that cannot build the C kernel falls back to
    NumPy — safe, because the kernels are bit-identical.
    """
    from repro.core.kernels import resolve_kernel

    blocks = []
    try:
        block, points = _attach(points_spec)
        blocks.append(block)
        block, members_flat = _attach(members_spec)
        blocks.append(block)
        block, cands_flat = _attach(cands_spec)
        blocks.append(block)
        counters = {"distance_computations": 0}
        counts = resolve_kernel(kernel).segmented_pair_counts(
            points,
            members_flat[member_span[0] : member_span[1]],
            m_sizes,
            cands_flat[cand_span[0] : cand_span[1]],
            c_sizes,
            eps_sq,
            counters,
            pair_budget=pair_budget,
        )
        # np.zeros output owns its buffer; nothing returned aliases shm.
        return counts, counters["distance_computations"]
    finally:
        for block in blocks:
            block.close()


def _bump_pool_counter(
    counters: dict | None, key: str, delta: int
) -> None:
    """Accumulate a ``pool.*`` stat into the caller's counter dict."""
    if counters is not None:
        counters[key] = counters.get(key, 0) + int(delta)


def run_sharded_pair_counts(
    array: np.ndarray,
    members_flat: np.ndarray,
    m_sizes: np.ndarray,
    cands_flat: np.ndarray,
    c_sizes: np.ndarray,
    eps_sq: float,
    n_jobs: int,
    pair_budget: int = 4_000_000,
    counters: dict | None = None,
    kernel: str = "numpy",
) -> tuple[np.ndarray, int]:
    """Sharded, multi-process equivalent of the serial distance kernel.

    Splits the per-cell segments into up to ``n_jobs`` contiguous
    shards balanced by pair count, publishes the point and flat index
    arrays via shared memory, and counts each shard in a separate
    process.

    Args:
        counters: Optional counter dict that receives the pool-worker
            stats (``pool.dispatches``, ``pool.shards``,
            ``pool.shared_bytes``) under their namespaced keys.
        kernel: Kernel *name* (``"numpy"``/``"c"``/``"auto"``) each
            worker resolves for itself; results are bit-identical for
            every choice.

    Returns:
        ``(counts, distance_computations)`` — counts aligned with
        ``members_flat`` exactly as the serial function produces, plus
        the total number of pairwise distances computed.
    """
    counts_out = np.zeros(members_flat.shape[0], dtype=np.int64)
    if members_flat.shape[0] == 0 or cands_flat.shape[0] == 0:
        return counts_out, 0
    shards = plan_shards(m_sizes * c_sizes, n_jobs)
    if len(shards) <= 1:
        from repro.core.kernels import resolve_kernel

        counters = {"distance_computations": 0}
        counts = resolve_kernel(kernel).segmented_pair_counts(
            array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
            counters, pair_budget=pair_budget,
        )
        return counts, counters["distance_computations"]

    member_offsets = np.concatenate(([0], np.cumsum(m_sizes)))
    cand_offsets = np.concatenate(([0], np.cumsum(c_sizes)))
    _bump_pool_counter(counters, "pool.dispatches", 1)
    _bump_pool_counter(counters, "pool.shards", len(shards))
    _bump_pool_counter(
        counters,
        "pool.shared_bytes",
        array.nbytes + members_flat.nbytes + cands_flat.nbytes,
    )
    blocks: list[shared_memory.SharedMemory] = []
    try:
        block, points_spec = _share(array)
        blocks.append(block)
        block, members_spec = _share(members_flat)
        blocks.append(block)
        block, cands_spec = _share(cands_flat)
        blocks.append(block)
        total_distances = 0
        with obs_span(
            "pool.dispatch", shards=len(shards), n_jobs=n_jobs
        ), ProcessPoolExecutor(
            max_workers=len(shards), mp_context=_mp_context()
        ) as pool:
            futures = [
                pool.submit(
                    _pair_count_shard,
                    points_spec,
                    members_spec,
                    cands_spec,
                    (int(member_offsets[lo]), int(member_offsets[hi])),
                    (int(cand_offsets[lo]), int(cand_offsets[hi])),
                    m_sizes[lo:hi],
                    c_sizes[lo:hi],
                    eps_sq,
                    pair_budget,
                    kernel,
                )
                for lo, hi in shards
            ]
            for (lo, hi), future in zip(shards, futures):
                counts, n_distances = future.result()
                counts_out[member_offsets[lo] : member_offsets[hi]] = counts
                total_distances += n_distances
        return counts_out, total_distances
    finally:
        for block in blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:
                pass
