"""Parameter selection: the k-distance elbow heuristic (Section IV-C1).

The paper chooses ``eps`` the way DBSCAN users do: fix ``min_pts``,
plot the distance of each point to its ``min_pts``-th nearest neighbor
in descending order, and pick ``eps`` at the upper part of the elbow of
that curve.  :func:`k_distance_graph` computes the curve (exactly, with
a KD-tree) and :func:`estimate_eps` automates the elbow pick with the
maximum-curvature ("kneedle"-style) rule.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.grid import validate_points
from repro.exceptions import ParameterError

__all__ = ["k_distance_graph", "estimate_eps"]


def _scaled_fallback(base: float, upper: float) -> float:
    """Apply ``upper`` uniformly to a degenerate-curve fallback value."""
    return (base if base > 0 else 1.0) * upper


def k_distance_graph(points: np.ndarray, k: int) -> np.ndarray:
    """Distances to each point's k-th nearest neighbor, descending.

    Args:
        points: Array of shape ``(n, d)``.
        k: Neighbor rank (the point itself is not counted), ``>= 1``.

    Returns:
        Array of shape ``(n,)``, sorted in descending order — the
        classic k-distance plot used to eyeball the elbow.
    """
    array = validate_points(points)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    n_points = array.shape[0]
    if n_points <= k:
        raise ParameterError(
            f"need more than k={k} points to compute k-distances, "
            f"got {n_points}"
        )
    tree = cKDTree(array)
    # Query k+1 because the nearest neighbor of a point is itself.
    distances, _ = tree.query(array, k=k + 1)
    k_distances = distances[:, k]
    return np.sort(k_distances)[::-1]


def estimate_eps(
    points: np.ndarray,
    min_pts: int,
    upper: float = 1.5,
    sample_size: int | None = None,
    seed: int = 0,
) -> float:
    """Pick ``eps`` from the elbow of the ``min_pts``-distance graph.

    The knee is located by the maximum distance from the curve to the
    straight line joining its endpoints (a standard knee heuristic).
    The paper then chooses eps "in the uppermost part of the elbow
    zone" — i.e. somewhat *above* the knee value, which separates the
    within-cluster distance scale from the outlier scale more robustly
    — so the returned value is ``upper`` times the knee k-distance.

    Args:
        points: Array of shape ``(n, d)``.
        min_pts: The density threshold that will be used for detection.
        upper: Safety factor above the knee (``1.0`` returns the raw
            knee; the default ``1.5`` lands in the upper elbow zone).
        sample_size: Estimate on a uniform random sample of this many
            points instead of the full dataset — the practical protocol
            at the paper's billion-point scale, where an exact
            k-distance graph is itself a large computation.  ``None``
            (default) uses every point.
        seed: RNG seed for the sample.

    Returns:
        The selected ``eps`` value (positive).
    """
    if upper <= 0:
        raise ParameterError(f"upper must be positive, got {upper}")
    array = np.asarray(points)
    if sample_size is not None:
        if sample_size <= min_pts:
            raise ParameterError(
                f"sample_size must exceed min_pts={min_pts}, "
                f"got {sample_size}"
            )
        if sample_size < array.shape[0]:
            rng = np.random.default_rng(seed)
            chosen = rng.choice(
                array.shape[0], size=sample_size, replace=False
            )
            points = array[np.sort(chosen)]
    curve = k_distance_graph(points, min_pts)
    n_values = curve.shape[0]
    # Degenerate curves (too short, flat, or all-nonpositive) fall back
    # to the largest k-distance — still scaled by ``upper``, with 1.0
    # substituted only for a nonpositive base so the result stays a
    # valid eps.  Dropping ``upper`` here would silently ignore the
    # caller's safety factor on constant/duplicate data.
    if n_values < 3:
        return _scaled_fallback(float(curve[0]), upper)
    x = np.arange(n_values, dtype=np.float64)
    # Normalize both axes so the knee rule is scale-free.
    x_span = x[-1] - x[0]
    y_span = curve[0] - curve[-1]
    if y_span <= 0:  # flat curve: any value works
        return _scaled_fallback(float(curve[0]), upper)
    x_norm = x / x_span
    y_norm = (curve - curve[-1]) / y_span
    # Distance from each curve point to the endpoint chord.
    chord = y_norm[0] - y_norm[-1]  # == 1 after normalization
    line_y = y_norm[0] - chord * x_norm
    deviations = line_y - y_norm
    elbow = int(np.argmax(deviations))
    eps = float(curve[elbow])
    if eps <= 0:
        positive = curve[curve > 0]
        eps = float(positive[-1]) if positive.size else 1.0
    return eps * upper
