"""Brute-force reference implementation of Definitions 2 and 3.

Quadratic in the number of points; used as ground truth in tests, by
the ``repro.qa`` differential fuzzer, and to validate the fast engines
on small inputs.  Kept deliberately simple — a direct transcription of
the definitions, made float-precise.

The exactness contract
----------------------

DBSCOUT's engines and this reference must agree *bit for bit*.  In
real arithmetic the neighbor predicate is simply ``dist(a, b) <= eps``;
in float64 that predicate is ambiguous within a few ulps of the
boundary, and the paper's two pillars pull in opposite directions
there:

* **Lemma 1** (same cell => within ``eps``) is a real-arithmetic fact:
  the computed squared distance of two points sharing a diagonal-eps
  cell can still exceed ``fl(eps^2)`` by an ulp (points at opposite
  corners, unlucky ``eps``).  Every engine counts same-cell pairs
  without computing distances — dense-cell shortcut, covered self
  pair, classify's core-cell shortcut — as the paper prescribes.
* **The distance kernel** accumulates ``sq += delta * delta`` per
  dimension and tests ``sq <= fl(eps^2)``; rounding can also pull a
  pair whose true distance is a hair *above* ``eps`` down onto the
  boundary.

So the operational neighbor predicate, implemented identically by
every path in this repository, is::

    neighbor(a, b)  <=>  cell(a) == cell(b)  OR  kernel_sq(a, b) <= fl(eps^2)

with ``cell(x) = floor(fl(x / l))`` per dimension and ``l`` from
:func:`repro.core.grid.cell_side_length`.  The first clause is Lemma 1
taken at face value; the second is the shared float kernel.  On
anything farther than an ulp from the boundary the two clauses agree
with the real-arithmetic predicate.  This module is the executable
specification of that contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import (
    cell_side_length,
    check_grid_domain,
    validate_points,
)
from repro.core.validation import validate_parameters
from repro.types import DetectionResult

__all__ = ["brute_force_core_mask", "brute_force_detect"]


def _pairwise_sq_dists(points: np.ndarray) -> np.ndarray:
    """Full (n, n) matrix of squared Euclidean distances.

    Computed from coordinate differences with the same per-dimension
    accumulation order as the engines' distance kernels, so the
    reference is bit-identical to them and stays accurate for points
    with large coordinates (the Gram-expansion shortcut
    ``|a|^2 + |b|^2 - 2ab`` catastrophically cancels there).
    """
    n_points, n_dims = points.shape
    sq_dists = np.zeros((n_points, n_points), dtype=np.float64)
    for dim in range(n_dims):
        delta = points[:, dim, None] - points[None, :, dim]
        sq_dists += delta * delta
    return sq_dists


def _neighbor_matrix(
    points: np.ndarray, eps: float
) -> np.ndarray:
    """Boolean (n, n) matrix of the operational neighbor predicate.

    ``same cell OR kernel_sq <= fl(eps^2)`` — see the module docstring.
    """
    side = cell_side_length(eps, points.shape[1])
    check_grid_domain(points, side)
    coords = np.floor(points / side).astype(np.int64)
    same_cell = (coords[:, None, :] == coords[None, :, :]).all(axis=2)
    return same_cell | (_pairwise_sq_dists(points) <= eps * eps)


def brute_force_core_mask(
    points: np.ndarray, eps: float, min_pts: int
) -> np.ndarray:
    """Exact core-point mask per Definition 2 (``<= eps``, self included)."""
    array = validate_points(points)
    validate_parameters(eps, min_pts)
    if array.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    neighbor_counts = _neighbor_matrix(array, eps).sum(axis=1)
    return neighbor_counts >= min_pts


def brute_force_detect(
    points: np.ndarray, eps: float, min_pts: int
) -> DetectionResult:
    """Exact outliers per Definition 3: not within eps of any core point."""
    array = validate_points(points)
    validate_parameters(eps, min_pts)
    n_points = array.shape[0]
    if n_points == 0:
        return DetectionResult(
            n_points=0,
            outlier_mask=np.zeros(0, dtype=bool),
            core_mask=np.zeros(0, dtype=bool),
        )
    within = _neighbor_matrix(array, eps)
    core_mask = within.sum(axis=1) >= min_pts
    if core_mask.any():
        covered = within[:, core_mask].any(axis=1)
    else:
        covered = np.zeros(n_points, dtype=bool)
    return DetectionResult(
        n_points=n_points,
        outlier_mask=~covered,
        core_mask=core_mask,
    )
