"""Brute-force reference implementation of Definitions 2 and 3.

Quadratic in the number of points; used as ground truth in tests and to
validate the fast engines on small inputs.  Kept deliberately simple —
a direct transcription of the definitions.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import validate_points
from repro.core.validation import validate_parameters
from repro.types import DetectionResult

__all__ = ["brute_force_core_mask", "brute_force_detect"]


def _pairwise_sq_dists(points: np.ndarray) -> np.ndarray:
    """Full (n, n) matrix of squared Euclidean distances.

    Computed from coordinate differences with the same per-dimension
    accumulation order as the engines' distance kernels, so the
    reference is bit-identical to them and stays accurate for points
    with large coordinates (the Gram-expansion shortcut
    ``|a|^2 + |b|^2 - 2ab`` catastrophically cancels there).
    """
    n_points, n_dims = points.shape
    sq_dists = np.zeros((n_points, n_points), dtype=np.float64)
    for dim in range(n_dims):
        delta = points[:, dim, None] - points[None, :, dim]
        sq_dists += delta * delta
    return sq_dists


def brute_force_core_mask(
    points: np.ndarray, eps: float, min_pts: int
) -> np.ndarray:
    """Exact core-point mask per Definition 2 (``<= eps``, self included)."""
    array = validate_points(points)
    validate_parameters(eps, min_pts)
    if array.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    sq_dists = _pairwise_sq_dists(array)
    neighbor_counts = (sq_dists <= eps * eps).sum(axis=1)
    return neighbor_counts >= min_pts


def brute_force_detect(
    points: np.ndarray, eps: float, min_pts: int
) -> DetectionResult:
    """Exact outliers per Definition 3: not within eps of any core point."""
    array = validate_points(points)
    validate_parameters(eps, min_pts)
    n_points = array.shape[0]
    if n_points == 0:
        return DetectionResult(
            n_points=0,
            outlier_mask=np.zeros(0, dtype=bool),
            core_mask=np.zeros(0, dtype=bool),
        )
    sq_dists = _pairwise_sq_dists(array)
    within = sq_dists <= eps * eps
    core_mask = within.sum(axis=1) >= min_pts
    if core_mask.any():
        covered = within[:, core_mask].any(axis=1)
    else:
        covered = np.zeros(n_points, dtype=bool)
    return DetectionResult(
        n_points=n_points,
        outlier_mask=~covered,
        core_mask=core_mask,
    )
