"""Continuous outlierness scores on top of DBSCOUT's machinery.

DBSCOUT's verdict is binary (Definition 3).  For ranking evaluations
and triage UIs a continuous score helps; the natural one under the
same semantics is the **nearest-core distance**:

* core points score ``0.0``;
* any other point scores its distance to the nearest core point;
* points with no core point in their cell neighborhood score ``inf``
  (they are outliers at *every* radius up to the stencil's reach).

The binary rule is recovered exactly by thresholding: a point is a
Definition-3 outlier iff its score exceeds ``eps`` (asserted in the
tests), so the score is a strict refinement of the detector.

The computation reuses the grid/stencil machinery and stays linear:
each non-core point is compared only against core points of its
neighboring cells.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import Grid, validate_points
from repro.core.neighbors import NeighborStencil
from repro.core.validation import validate_parameters
from repro.core.vectorized import VectorizedEngine, _CellAdjacency
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = ["nearest_core_distance", "detect_with_scores"]


def nearest_core_distance(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    recorder: RunRecorder | None = None,
) -> np.ndarray:
    """Per-point outlierness score under DBSCOUT semantics.

    Args:
        points: ``(n, d)`` dataset.
        eps: Neighborhood radius (defines core points and the search
            stencil).
        min_pts: Density threshold.
        recorder: Optional :class:`repro.obs.RunRecorder` that receives
            the phase spans (``grid``/``core_points``/``scores``) and
            the work counters of this computation.

    Returns:
        ``(n,)`` float array: 0 for core points, the distance to the
        nearest core point otherwise, ``inf`` when no core point lies
        within the cell neighborhood.
    """
    array = validate_points(points)
    eps, min_pts = validate_parameters(eps, min_pts)
    n_points = array.shape[0]
    if recorder is None:
        recorder = RunRecorder(engine="scores")
    if n_points == 0:
        return np.zeros(0, dtype=np.float64)
    with recorder.activate():
        with recorder.span("grid"):
            grid = Grid(array, eps)
            stencil = NeighborStencil(grid.n_dims)
            adjacency = _CellAdjacency(grid, stencil)
            dense_cells = grid.counts >= min_pts
        counters = {"distance_computations": 0, "pruned_cells": 0}
        with recorder.span("core_points"):
            core_mask = VectorizedEngine._find_core_points(
                array, grid, adjacency, dense_cells, eps, min_pts, counters
            )
        with recorder.span("scores"):
            scores = np.full(n_points, np.inf, dtype=np.float64)
            scores[core_mask] = 0.0
            cell_has_core = dense_cells.copy()
            cell_has_core[np.unique(grid.point_cell[core_mask])] = True
            for cell_index in range(grid.n_cells):
                members = grid.cell_members(cell_index)
                targets = members[~core_mask[members]]
                if targets.size == 0:
                    continue
                neighbor_cells = adjacency.neighbors(cell_index)
                core_neighbor_cells = neighbor_cells[
                    cell_has_core[neighbor_cells]
                ]
                if core_neighbor_cells.size == 0:
                    continue  # stays inf
                candidates = np.concatenate(
                    [grid.cell_members(nc) for nc in core_neighbor_cells]
                )
                candidates = candidates[core_mask[candidates]]
                diffs = (
                    array[targets][:, None, :]
                    - array[candidates][None, :, :]
                )
                sq = np.einsum("ijk,ijk->ij", diffs, diffs)
                scores[targets] = np.sqrt(sq.min(axis=1))
    recorder.metrics.merge(counters, namespace="engine")
    recorder.add_context(n_cells=grid.n_cells)
    return scores


def detect_with_scores(
    points: np.ndarray, eps: float, min_pts: int
) -> DetectionResult:
    """DBSCOUT detection with the nearest-core-distance score attached.

    The outlier mask equals ``scores > eps`` and matches the plain
    detector exactly.  The result carries a full run record, so
    ``timings`` breaks down the ``grid``/``core_points``/``scores``
    phases and ``stats`` reports the work counters.
    """
    recorder = RunRecorder(
        engine="vectorized+scores",
        params={"eps": eps, "min_pts": min_pts},
        context={
            "engine": "vectorized+scores",
            "eps": eps,
            "min_pts": min_pts,
        },
    )
    scores = nearest_core_distance(points, eps, min_pts, recorder=recorder)
    n_dims = np.asarray(points).shape[1] if np.asarray(points).ndim == 2 else None
    record = recorder.finish(scores.shape[0], n_dims=n_dims)
    return DetectionResult(
        n_points=scores.shape[0],
        outlier_mask=scores > eps,
        core_mask=scores == 0.0,
        scores=scores,
        timings=record.timing_breakdown(),
        stats=record.flat_stats(),
        record=record,
    )
