"""Parameter validation shared by all detection engines."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["validate_parameters"]


def validate_parameters(eps: float, min_pts: int) -> tuple[float, int]:
    """Validate DBSCOUT / DBSCAN parameters.

    Args:
        eps: Neighborhood radius; must be positive and finite.
        min_pts: Minimum number of points (self included) in a dense
            region; must be a positive integer.

    Returns:
        The normalized ``(eps, min_pts)`` pair.

    Raises:
        ParameterError: If either parameter is out of range.
    """
    if isinstance(eps, bool) or not isinstance(eps, (int, float, np.floating, np.integer)):
        raise ParameterError(f"eps must be a number, got {type(eps).__name__}")
    eps = float(eps)
    if not math.isfinite(eps) or eps <= 0:
        raise ParameterError(f"eps must be positive and finite, got {eps!r}")
    if isinstance(min_pts, bool) or not isinstance(min_pts, (int, np.integer)):
        raise ParameterError(
            f"min_pts must be an integer, got {type(min_pts).__name__}"
        )
    min_pts = int(min_pts)
    if min_pts < 1:
        raise ParameterError(f"min_pts must be >= 1, got {min_pts}")
    return eps, min_pts
