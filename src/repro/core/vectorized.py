"""Single-machine vectorized DBSCOUT engine.

Implements the exact DBSCOUT pipeline (grid partitioning -> dense cell
map -> core points -> core cell map -> outliers) with NumPy bulk
operations instead of RDD transformations.  Produces bit-identical
results to the distributed engine and to the brute-force reference; it
is the fast path used by the large-scale benchmarks.

Boundary conventions follow the paper's *definitions* (not the
pseudocode's mixed operators): a point within distance ``<= eps`` of a
candidate counts as its neighbor (Definition 2), and a point is an
outlier iff **every** core point is strictly farther than ``eps``
(Definition 3).

The engine also applies the paper's "grouping before joining" pruning
(Section III-G2): a point in a non-dense cell is only distance-checked
when the combined population of its neighboring cells reaches
``min_pts``, and coverage checks stop at the first core point found.

Two further performance layers sit on top of the exact pipeline (see
``docs/architecture.md``, "Performance layers"):

* **Cell-geometry pruning.**  Each (work cell, neighbor cell) pair is
  classified by the min/max distance between the bounding boxes of the
  cells' actual points — the data-dependent refinement of the
  ``min_cell_gap_squared`` / ``max_cell_gap_squared`` offset geometry.
  *Fully-covered* pairs (max bound ``<= eps``) contribute the whole
  candidate population to every member with zero distance
  computations; in the outlier round one core candidate in a covered
  cell settles the entire work cell.  *Fully-excluded* pairs (min
  bound ``> eps``) are dropped outright.  Only boundary pairs reach
  the distance kernel.  The bounds are accumulated with the same
  float operation order as the distance kernel, so the pruning is
  provably exact — results stay bit-identical to the unpruned path.
* **Multi-core sharding.**  With ``n_jobs > 1`` the per-cell segments
  of the distance kernel are split into weight-balanced contiguous
  shards and counted by a process pool over shared-memory views of
  the point array (``repro.core.parallel``); per-member counts are
  integers, so any shard layout reproduces the serial result exactly.
* **Pluggable distance kernel.**  The hot loop itself is a
  :class:`repro.core.kernels.Kernel`: ``kernel="auto"`` (default)
  prefers the compiled C tier and falls back to the NumPy reference
  when no compiler is available.  Both implement the identical float
  contract, so labels are bit-identical either way.
* **Grid-tree cell planner.**  ``cell_planner="tree"`` (the ``"auto"``
  choice at d >= 4) builds the neighbor-cell adjacency by searching a
  k-d-style tree over the non-empty cells (``repro.core.celltree``)
  instead of enumerating the ``k_d`` offset stencil per cell; same
  adjacency set, so labels are again bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.celltree import build_tree_adjacency
from repro.core.grid import Grid, validate_points
from repro.core.kernels import (
    Kernel,
    normalize_kernel,
    normalize_pair_budget,
    resolve_kernel,
)
from repro.core.kernels.numpy_kernel import (
    segmented_pair_counts as _segmented_pair_counts,
)
from repro.core.neighbors import NeighborStencil
from repro.core.parallel import normalize_n_jobs, run_sharded_pair_counts
from repro.core.validation import validate_parameters
from repro.exceptions import ParameterError
from repro.obs import RunRecorder
from repro.types import DetectionResult

__all__ = [
    "VectorizedEngine",
    "detect",
    "build_cell_adjacency",
    "normalize_cell_planner",
]

#: Accepted values for the ``cell_planner`` engine option.
CELL_PLANNER_NAMES = ("auto", "stencil", "tree")

#: ``cell_planner="auto"`` switches to the grid-tree at this
#: dimensionality: the stencil's k_d passes 1000 at d = 4 while real
#: grids stay sparse, so enumeration starts losing to search there.
TREE_PLANNER_MIN_DIMS = 4

#: Below this many member/candidate pairs the process-pool dispatch
#: overhead exceeds the arithmetic; the engine stays serial even when
#: ``n_jobs > 1``.  Tests monkeypatch this to force the pool on tiny
#: inputs.
MIN_PAIRS_FOR_POOL = 200_000

#: Stencil adjacency probes at most this many (cell, offset) keys per
#: searchsorted batch, bounding the peak int64 scratch at ~3 arrays of
#: this length regardless of grid size.
_ADJACENCY_PROBE_BUDGET = 4_000_000


def build_cell_adjacency(
    cells: np.ndarray, stencil: NeighborStencil
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of the neighbor relation among the given cells.

    Args:
        cells: ``(m, d)`` integer cell coordinates (unique rows).
        stencil: Neighbor stencil for the same dimensionality.

    Returns:
        ``(targets, starts)``: the neighbors (present in ``cells``,
        self included) of cell ``i`` are
        ``targets[starts[i]:starts[i + 1]]``, as indices into ``cells``.

    Uses a packed-int64 sort/searchsorted fast path and falls back to a
    dictionary when coordinate spans exceed 62 bits.
    """
    n_cells = cells.shape[0]
    if n_cells == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    packed, packer = _make_packer(cells, stencil)
    if packed is None:
        lookup = {
            tuple(int(c) for c in row): i for i, row in enumerate(cells)
        }
        targets_list: list[int] = []
        starts_list = [0]
        for row in cells:
            cell = tuple(int(c) for c in row)
            targets_list.extend(
                lookup[neighbor]
                for neighbor in stencil.neighbors_of(cell)
                if neighbor in lookup
            )
            starts_list.append(len(targets_list))
        return (
            np.array(targets_list, dtype=np.int64),
            np.array(starts_list, dtype=np.int64),
        )
    sort_order = np.argsort(packed, kind="stable")
    sorted_keys = packed[sort_order]
    # The pack is linear with a guard bit per field (_make_packer) and
    # offsets stay inside the reach-widened range, so shifting any cell
    # by a fixed stencil offset shifts its key by a fixed delta: probe
    # blocks of offsets with one searchsorted each instead of
    # re-packing (m, d) coordinates k_d times.
    deltas = packer(cells[0] + stencil.offsets) - packed[0]
    all_sources: list[np.ndarray] = []
    all_targets: list[np.ndarray] = []
    block = max(1, _ADJACENCY_PROBE_BUDGET // n_cells)
    for start in range(0, deltas.shape[0], block):
        candidate_keys = (
            packed[None, :] + deltas[start : start + block, None]
        ).ravel()
        positions = np.searchsorted(sorted_keys, candidate_keys)
        np.minimum(positions, n_cells - 1, out=positions)
        hit = np.flatnonzero(sorted_keys[positions] == candidate_keys)
        all_sources.append(hit % n_cells)
        all_targets.append(sort_order[positions[hit]])
    sources = np.concatenate(all_sources)
    targets = np.concatenate(all_targets)
    order = np.argsort(sources, kind="stable")
    counts = np.bincount(sources, minlength=n_cells)
    return targets[order], np.concatenate(([0], np.cumsum(counts)))


def normalize_cell_planner(cell_planner: str | None) -> str:
    """Validate a ``cell_planner`` option (``None`` means ``"auto"``).

    Raises:
        ParameterError: If the value is not one of
            ``"auto"``, ``"stencil"``, ``"tree"``.
    """
    if cell_planner is None:
        return "auto"
    if (
        not isinstance(cell_planner, str)
        or cell_planner not in CELL_PLANNER_NAMES
    ):
        raise ParameterError(
            f"cell_planner must be one of {', '.join(CELL_PLANNER_NAMES)}, "
            f"got {cell_planner!r}"
        )
    return cell_planner


class _CellAdjacency:
    """Neighbor-cell adjacency over the non-empty cells of a grid.

    For every cell index ``i`` the structure can report the indices of
    the non-empty cells that are neighbors of ``i`` (``i`` included).
    Built once per detection — in O(m * k_d) stencil lookups, or by
    grid-tree search (``planner="tree"``) when the stencil's ``k_d``
    would dwarf the number of non-empty cells ``m``.  Both planners
    produce the same adjacency *set* (tree row order differs), so
    every downstream label is identical.
    """

    def __init__(
        self,
        grid: Grid,
        stencil: NeighborStencil,
        planner: str = "stencil",
        counters: dict[str, int] | None = None,
    ) -> None:
        self._grid = grid
        self._stencil = stencil
        self.planner = planner
        if planner == "tree":
            self._targets, self._starts = build_tree_adjacency(
                grid.cells, counters=counters
            )
        else:
            self._targets, self._starts = build_cell_adjacency(
                grid.cells, stencil
            )
            if counters is not None:
                _bump(
                    counters,
                    "planner.cell_pairs_examined",
                    grid.n_cells * stencil.k_d,
                )

    def neighbors(self, cell_index: int) -> np.ndarray:
        """Indices of non-empty neighbor cells of ``cell_index``."""
        return self._targets[
            self._starts[cell_index] : self._starts[cell_index + 1]
        ]


def _make_packer(cells: np.ndarray, stencil: NeighborStencil):
    """Return (packed_keys, packer) or (None, None) if packing overflows.

    The packer must accommodate cells shifted by any stencil offset, so
    the per-dimension range is widened by the stencil reach on each side.
    Keys of shifted cells that fall outside the widened range cannot
    collide with real cell keys because each dimension gets its own bit
    field plus one guard bit.
    """
    if cells.shape[0] == 0:
        return np.empty(0, dtype=np.int64), lambda rows: np.empty(0, np.int64)
    reach = int(np.abs(stencil.offsets).max())
    mins = cells.min(axis=0) - reach
    spans = cells.max(axis=0) + reach - mins + 1
    bits = [int(span).bit_length() + 1 for span in spans]
    if sum(bits) > 62:
        return None, None

    def packer(rows: np.ndarray) -> np.ndarray:
        keys = np.zeros(rows.shape[0], dtype=np.int64)
        for dim in range(rows.shape[1]):
            keys = (keys << bits[dim]) | (rows[:, dim] - mins[dim])
        return keys

    return packer(cells), packer


def _flat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s_i, s_i + l_i)`` for all i, vectorized."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    run_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    pos = np.arange(total, dtype=np.int64) - np.repeat(run_starts, lengths)
    return np.repeat(starts, lengths) + pos


def _segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Sums of consecutive runs of the given lengths (empty runs -> 0)."""
    sums = np.zeros(lengths.shape[0], dtype=values.dtype)
    nonempty = lengths > 0
    if not nonempty.any():
        return sums
    run_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    sums[nonempty] = np.add.reduceat(values, run_starts[nonempty])
    return sums


def _bump(counters: dict[str, int], key: str, delta: int) -> None:
    """Add to a counter, tolerating dicts that lack the key."""
    counters[key] = counters.get(key, 0) + int(delta)


def _cell_bounds(grid: Grid) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell axis-aligned bounding boxes of the actual member points.

    Returns:
        ``(lo, hi)`` arrays of shape ``(n_cells, d)``.  Every cell is
        non-empty by construction, so the reduction is total.
    """
    order, starts = grid.members_csr()
    if grid.n_cells == 0:
        empty = np.empty((0, grid.points.shape[1]), dtype=np.float64)
        return empty, empty.copy()
    ordered = grid.points[order]
    lo = np.minimum.reduceat(ordered, starts, axis=0)
    hi = np.maximum.reduceat(ordered, starts, axis=0)
    return lo, hi


def _masked_cell_counts(grid: Grid, point_mask: np.ndarray) -> np.ndarray:
    """Per-cell population restricted to points where ``point_mask`` holds."""
    order, _ = grid.members_csr()
    return _segment_sums(point_mask[order].astype(np.int64), grid.counts)


def _masked_cell_bounds(
    grid: Grid, point_mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell bounding boxes over only the points where the mask holds.

    Cells without any masked member get ``(+inf, -inf)`` boxes, which
    classify as excluded against every finite box — exactly right,
    since they contribute no candidates.
    """
    n_dims = grid.points.shape[1]
    lo = np.full((grid.n_cells, n_dims), np.inf)
    hi = np.full((grid.n_cells, n_dims), -np.inf)
    order, _ = grid.members_csr()
    keep = point_mask[order]
    if not keep.any():
        return lo, hi
    masked_points = grid.points[order][keep]
    counts = _segment_sums(keep.astype(np.int64), grid.counts)
    nonempty = counts > 0
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    lo[nonempty] = np.minimum.reduceat(
        masked_points, starts[nonempty], axis=0
    )
    hi[nonempty] = np.maximum.reduceat(
        masked_points, starts[nonempty], axis=0
    )
    return lo, hi


def _classify_cell_pairs(
    bounds: tuple[np.ndarray, np.ndarray],
    cand_bounds: tuple[np.ndarray, np.ndarray],
    work_flat: np.ndarray,
    ncell_flat: np.ndarray,
    eps_sq: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Covered / excluded classification of (work cell, neighbor cell) pairs.

    ``bounds`` boxes the work cells' members; ``cand_bounds`` boxes the
    candidate side and may be restricted to the candidate point mask
    (empty boxes are ``(+inf, -inf)`` and always classify excluded).
    For each pair, accumulate the squared min and max distances between
    the two cells' point bounding boxes **with the same per-dimension
    operation order as the distance kernel** (``acc += delta * delta``).
    Because float rounding is monotone, every actual pair distance in
    ``_segmented_pair_counts`` then satisfies
    ``min_sq <= sq <= max_sq`` at the float level, so:

    * ``max_sq <= eps_sq`` (covered) implies every member/candidate
      pair would pass the ``sq <= eps_sq`` test — count the whole cell
      population without computing a single distance;
    * ``min_sq > eps_sq`` (excluded) implies every pair would fail —
      drop the neighbor cell outright.

    The self pair is always covered (Lemma 1 via
    ``max_cell_gap_squared(0) == d``), independent of float slop in
    the box bounds.

    Returns:
        ``(covered, excluded)`` boolean masks over the flat pairs.
    """
    lo, hi = bounds
    cand_lo_all, cand_hi_all = cand_bounds
    n_pairs = work_flat.shape[0]
    min_sq = np.zeros(n_pairs, dtype=np.float64)
    max_sq = np.zeros(n_pairs, dtype=np.float64)
    for dim in range(lo.shape[1]):
        work_lo = lo[work_flat, dim]
        work_hi = hi[work_flat, dim]
        ncell_lo = cand_lo_all[ncell_flat, dim]
        ncell_hi = cand_hi_all[ncell_flat, dim]
        reach = np.maximum(work_hi - ncell_lo, ncell_hi - work_lo)
        max_sq += reach * reach
        gap = np.maximum(ncell_lo - work_hi, work_lo - ncell_hi)
        np.maximum(gap, 0.0, out=gap)
        min_sq += gap * gap
    covered = max_sq <= eps_sq
    covered |= work_flat == ncell_flat
    excluded = (min_sq > eps_sq) & ~covered
    return covered, excluded


def _plan_cell_jobs(
    grid: Grid,
    adjacency: "_CellAdjacency",
    work_cells: np.ndarray,
    candidate_cell_mask: np.ndarray | None,
    candidate_point_mask: np.ndarray | None,
    bounds: tuple[np.ndarray, np.ndarray] | None,
    eps_sq: float,
    counters: dict[str, int],
    settle_threshold: int | None = None,
    seed_self: bool = False,
    member_mask: np.ndarray | None = None,
    pair_filter=None,
) -> tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
    np.ndarray | None,
]:
    """Flat member/candidate index arrays for a set of cells, no loops.

    For every cell in ``work_cells`` gather (a) its member point
    indices and (b) the member point indices of its neighboring cells
    (optionally restricted to cells where ``candidate_cell_mask`` holds
    and points where ``candidate_point_mask`` holds).

    With ``member_mask``, the member side is restricted to the points
    where the mask holds — the approximate tier's DBSCAN++ subsampling
    (``repro.core.approx``) evaluates density only for sampled members
    while the candidate side stays complete.  ``pair_filter``, when
    given, is called with the flat ``(work_cell_ids, neighbor_cell_ids)``
    arrays of the pairs that would reach the distance kernel (after
    covered/excluded classification and settling) and returns a keep
    mask; the random-projection prefilter drops boundary cell pairs
    here.  Both hooks default to off, leaving the exact engine paths
    untouched.

    With ``seed_self``, the work cell's own (mask-restricted)
    population is credited to ``base_counts`` and the self pair never
    reaches the distance kernel: Lemma 1 counts same-cell pairs as
    neighbors *by definition*, independent of float slop in the kernel
    (see ``repro.core.reference`` for the contract).  Both the pruned
    and the pruning-free engine paths rely on this so their counts
    agree bit-for-bit with the reference and with the dense-cell
    shortcut.

    When ``bounds`` is given, neighbor cells are first classified by
    :func:`_classify_cell_pairs`: covered cells contribute their
    (mask-restricted) population to ``base_counts`` and excluded cells
    are dropped, both without reaching the distance kernel; only
    boundary cells survive into the candidate arrays.  With
    ``settle_threshold``, a work cell whose ``base_counts`` already
    reaches the threshold is settled entirely — none of its remaining
    candidates are gathered, because the verdict for every member is
    known: threshold ``min_pts`` in the core round proves every member
    core, threshold ``1`` in the outlier round (one covered core
    candidate) proves every member covered.

    Returns:
        ``(members_flat, m_sizes, cands_flat, c_sizes, base_counts,
        settled)`` with one ``m_sizes`` / ``c_sizes`` / ``base_counts``
        entry per work cell; ``settled`` is a per-work-cell mask (or
        ``None`` when ``settle_threshold`` is ``None``).
    """
    order, member_starts = grid.members_csr()
    adj_targets = adjacency._targets
    adj_starts = adjacency._starts
    # Neighbor cell ids, flattened over the work cells.
    adj_lens = adj_starts[work_cells + 1] - adj_starts[work_cells]
    ncell_flat = adj_targets[_flat_ranges(adj_starts[work_cells], adj_lens)]
    if candidate_cell_mask is not None:
        keep = candidate_cell_mask[ncell_flat]
        # Per-work-cell surviving neighbor counts.
        adj_lens = _segment_sums(keep.astype(np.int64), adj_lens)
        ncell_flat = ncell_flat[keep]
    n_work = work_cells.shape[0]
    if member_mask is None:
        m_sizes = grid.counts[work_cells]
        masked_members: np.ndarray | None = None
    else:
        masked_members = order[
            _flat_ranges(member_starts[work_cells], grid.counts[work_cells])
        ]
        keep_members = member_mask[masked_members]
        m_sizes = _segment_sums(
            keep_members.astype(np.int64), grid.counts[work_cells]
        )
        masked_members = masked_members[keep_members]
    base_counts = np.zeros(n_work, dtype=np.int64)
    settled: np.ndarray | None = None
    if candidate_point_mask is not None:
        # Candidate-side boxes shrink to the masked (core) points:
        # tighter boxes cover and exclude strictly more cell pairs.
        cell_cand_counts = _masked_cell_counts(grid, candidate_point_mask)
        cand_bounds = (
            _masked_cell_bounds(grid, candidate_point_mask)
            if bounds is not None
            else None
        )
    else:
        cell_cand_counts = grid.counts
        cand_bounds = bounds
    if seed_self and ncell_flat.size:
        source = np.repeat(np.arange(n_work, dtype=np.int64), adj_lens)
        self_pair = ncell_flat == work_cells[source]
        if self_pair.any():
            self_pops = cell_cand_counts[ncell_flat[self_pair]]
            base_counts += np.bincount(
                source[self_pair], weights=self_pops, minlength=n_work
            ).astype(np.int64)
            _bump(
                counters, "pairs_self_covered",
                int((m_sizes[source[self_pair]] * self_pops).sum()),
            )
            keep = ~self_pair
            adj_lens = _segment_sums(keep.astype(np.int64), adj_lens)
            ncell_flat = ncell_flat[keep]
    if bounds is not None and ncell_flat.size:
        source = np.repeat(np.arange(n_work, dtype=np.int64), adj_lens)
        covered, excluded = _classify_cell_pairs(
            bounds, cand_bounds, work_cells[source], ncell_flat, eps_sq
        )
        cand_pops = cell_cand_counts[ncell_flat]
        base_counts = base_counts + np.bincount(
            source[covered], weights=cand_pops[covered], minlength=n_work
        ).astype(np.int64)
        _bump(
            counters, "pairs_skipped_covered",
            int((m_sizes[source[covered]] * cand_pops[covered]).sum()),
        )
        _bump(
            counters, "pairs_skipped_excluded",
            int((m_sizes[source[excluded]] * cand_pops[excluded]).sum()),
        )
        drop = covered | excluded
        if settle_threshold is not None:
            settled = base_counts >= settle_threshold
            _bump(counters, "cells_settled_covered", int(settled.sum()))
            # Settled cells need no boundary checks at all: the covered
            # contributions alone decide every member's verdict.
            settled_boundary = settled[source] & ~drop
            _bump(
                counters, "pairs_skipped_covered",
                int(
                    (
                        m_sizes[source[settled_boundary]]
                        * cand_pops[settled_boundary]
                    ).sum()
                ),
            )
            drop |= settled[source]
        keep = ~drop
        adj_lens = _segment_sums(keep.astype(np.int64), adj_lens)
        ncell_flat = ncell_flat[keep]
    elif settle_threshold is not None:
        settled = np.zeros(n_work, dtype=bool)
    if pair_filter is not None and ncell_flat.size:
        source = np.repeat(np.arange(n_work, dtype=np.int64), adj_lens)
        keep = pair_filter(work_cells[source], ncell_flat)
        if not keep.all():
            adj_lens = _segment_sums(keep.astype(np.int64), adj_lens)
            ncell_flat = ncell_flat[keep]
    # Candidate points: the members of every (surviving) neighbor cell.
    cand_per_ncell = grid.counts[ncell_flat]
    cands_flat = order[
        _flat_ranges(member_starts[ncell_flat], cand_per_ncell)
    ]
    c_sizes = _segment_sums(cand_per_ncell, adj_lens)
    if candidate_point_mask is not None:
        keep = candidate_point_mask[cands_flat]
        # Recompute per-work-cell candidate counts under the filter:
        # expand each neighbor-cell run to points, then segment by cell.
        c_sizes = _segment_sums(keep.astype(np.int64), c_sizes)
        cands_flat = cands_flat[keep]
    # Members of the work cells themselves.
    if masked_members is None:
        members_flat = order[
            _flat_ranges(member_starts[work_cells], m_sizes)
        ]
    else:
        members_flat = masked_members
    return members_flat, m_sizes, cands_flat, c_sizes, base_counts, settled


def _gather_cell_jobs(
    grid: Grid,
    adjacency: "_CellAdjacency",
    work_cells: np.ndarray,
    candidate_cell_mask: np.ndarray | None,
    candidate_point_mask: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pruning-free form of :func:`_plan_cell_jobs` (kept for reuse).

    Returns:
        ``(members_flat, m_sizes, cands_flat, c_sizes)`` with one size
        entry per work cell.
    """
    members_flat, m_sizes, cands_flat, c_sizes, _, _ = _plan_cell_jobs(
        grid, adjacency, work_cells, candidate_cell_mask,
        candidate_point_mask, None, 0.0, {},
    )
    return members_flat, m_sizes, cands_flat, c_sizes


def _pair_counts(
    array: np.ndarray,
    members_flat: np.ndarray,
    m_sizes: np.ndarray,
    cands_flat: np.ndarray,
    c_sizes: np.ndarray,
    eps_sq: float,
    counters: dict[str, int],
    n_jobs: int,
    kernel: Kernel,
    pair_budget: int,
) -> np.ndarray:
    """Serial or sharded dispatch around ``kernel.segmented_pair_counts``.

    The hot loop lives in :mod:`repro.core.kernels`
    (``_segmented_pair_counts`` is the module-level NumPy form, kept
    importable here for the pool workers and ``CoreModel.classify``).
    """
    if n_jobs > 1 and m_sizes.shape[0] > 1:
        total_pairs = int((m_sizes * c_sizes).sum())
        if total_pairs >= MIN_PAIRS_FOR_POOL:
            counts, n_distances = run_sharded_pair_counts(
                array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
                n_jobs=n_jobs, pair_budget=pair_budget, counters=counters,
                kernel=kernel.name,
            )
            _bump(counters, "distance_computations", n_distances)
            return counts
    return kernel.segmented_pair_counts(
        array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq, counters,
        pair_budget=pair_budget,
    )


class VectorizedEngine:
    """Exact DBSCOUT on a single machine using NumPy bulk operations.

    Args:
        n_jobs: Worker processes for the distance kernel.  ``1``
            (default) runs fully serially — the exact legacy code
            path; ``-1`` uses all cores.  Results are bit-identical
            for every value.
        pruning: Enable cell-geometry (bounding-box) pruning.  The
            ``False`` setting is a debug path for parity testing and
            ablations; results are identical either way.
        kernel: Distance-kernel tier: ``"auto"`` (default; compiled C
            when a compiler is available, else NumPy), ``"numpy"``,
            ``"c"``, or a :class:`~repro.core.kernels.Kernel`
            instance.  Labels are bit-identical for every choice; an
            unavailable C kernel falls back to NumPy with a
            ``kernel.fallback`` metric, never an error.
        pair_budget: Maximum member x candidate pairs a kernel batch
            may materialize (default 4,000,000); bounds the NumPy
            kernel's temporary arrays.  Results are identical for
            every value.
        cell_planner: Neighbor-cell adjacency builder: ``"auto"``
            (default; grid-tree search at d >= 4, stencil enumeration
            below), ``"stencil"``, or ``"tree"``.  Identical labels
            either way.
    """

    name = "vectorized"

    def __init__(
        self,
        n_jobs: int | None = 1,
        pruning: bool = True,
        kernel: str | Kernel | None = "auto",
        pair_budget: int | None = None,
        cell_planner: str | None = "auto",
    ) -> None:
        self.n_jobs = normalize_n_jobs(n_jobs)
        self.pruning = bool(pruning)
        self.kernel = normalize_kernel(kernel)
        self.pair_budget = normalize_pair_budget(pair_budget)
        self.cell_planner = normalize_cell_planner(cell_planner)

    def _resolve_planner(self, n_dims: int) -> str:
        if self.cell_planner == "auto":
            return (
                "tree" if n_dims >= TREE_PLANNER_MIN_DIMS else "stencil"
            )
        return self.cell_planner

    def detect(
        self, points: np.ndarray, eps: float, min_pts: int
    ) -> DetectionResult:
        """Run the full DBSCOUT pipeline and return the detection result."""
        array = validate_points(points)
        eps, min_pts = validate_parameters(eps, min_pts)
        n_points = array.shape[0]
        if n_points == 0:
            return DetectionResult(
                n_points=0,
                outlier_mask=np.zeros(0, dtype=bool),
                core_mask=np.zeros(0, dtype=bool),
            )

        counters = {
            "distance_computations": 0,
            "pruned_cells": 0,
            "pairs_self_covered": 0,
            "pairs_skipped_covered": 0,
            "pairs_skipped_excluded": 0,
            "cells_settled_covered": 0,
        }
        kernel = resolve_kernel(self.kernel, counters)
        planner = self._resolve_planner(array.shape[1])
        recorder = RunRecorder(
            engine=self.name,
            params={"eps": eps, "min_pts": min_pts},
            context={
                "engine": self.name,
                "n_jobs": self.n_jobs,
                "pruning": self.pruning,
                "kernel": kernel.name,
                "pair_budget": self.pair_budget,
                "cell_planner": planner,
            },
        )
        with recorder.activate():
            with recorder.span("grid"):
                grid = Grid(array, eps)
                stencil = NeighborStencil(grid.n_dims)

            with recorder.span("dense_cell_map"):
                adjacency = _CellAdjacency(
                    grid, stencil, planner=planner, counters=counters
                )
                dense_cells = grid.counts >= min_pts
                bounds = _cell_bounds(grid) if self.pruning else None

            with recorder.span("core_points"):
                core_mask = self._find_core_points(
                    array, grid, adjacency, dense_cells, eps, min_pts,
                    counters, bounds=bounds, n_jobs=self.n_jobs,
                    kernel=kernel, pair_budget=self.pair_budget,
                )

            with recorder.span("core_cell_map"):
                cell_is_core = self._core_cell_map(
                    grid, dense_cells, core_mask
                )

            with recorder.span("outliers"):
                outlier_mask = self._find_outliers(
                    array, grid, adjacency, cell_is_core, core_mask, eps,
                    counters, bounds=bounds, n_jobs=self.n_jobs,
                    kernel=kernel, pair_budget=self.pair_budget,
                )

        recorder.metrics.merge(counters, namespace="engine")
        recorder.add_context(
            n_cells=grid.n_cells,
            n_dense_cells=int(dense_cells.sum()),
            n_core_cells=int(cell_is_core.sum()),
            k_d=stencil.k_d,
            max_cell_population=int(grid.counts.max()),
        )
        record = recorder.finish(n_points=n_points, n_dims=array.shape[1])
        return DetectionResult(
            n_points=n_points,
            outlier_mask=outlier_mask,
            core_mask=core_mask,
            timings=record.timing_breakdown(),
            stats=record.flat_stats(),
            record=record,
        )

    def classify(self, model, points: np.ndarray) -> np.ndarray:
        """Exact out-of-sample labels against a fitted ``CoreModel``.

        Delegates to :meth:`repro.core.classify.CoreModel.classify`
        with this engine's kernel selection (the distance contract is
        shared), so labels are bit-identical to :meth:`detect` on the
        training data.
        """
        return model.classify(points, kernel=self.kernel)

    @staticmethod
    def _find_core_points(
        array: np.ndarray,
        grid: Grid,
        adjacency: _CellAdjacency,
        dense_cells: np.ndarray,
        eps: float,
        min_pts: int,
        counters: dict[str, int],
        *,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        n_jobs: int = 1,
        kernel: Kernel | None = None,
        pair_budget: int | None = None,
    ) -> np.ndarray:
        """Core-point identification (Algorithm 3, both branches)."""
        kernel = kernel if kernel is not None else resolve_kernel("numpy")
        pair_budget = normalize_pair_budget(pair_budget)
        eps_sq = eps * eps
        core_mask = np.zeros(grid.n_points, dtype=bool)
        core_mask[dense_cells[grid.point_cell]] = True  # Lemma 1 shortcut
        work = np.flatnonzero(~dense_cells)
        if work.size == 0:
            return core_mask
        # Pruning (Sec. III-G2): a cell whose whole neighborhood cannot
        # reach min_pts points has no core members — no distances needed.
        adj_starts = adjacency._starts
        adj_lens = adj_starts[work + 1] - adj_starts[work]
        ncell_flat = adjacency._targets[
            _flat_ranges(adj_starts[work], adj_lens)
        ]
        neighborhood_pop = _segment_sums(grid.counts[ncell_flat], adj_lens)
        pruned = neighborhood_pop < min_pts
        counters["pruned_cells"] += int(pruned.sum())
        work = work[~pruned]
        if work.size == 0:
            return core_mask
        # A work cell whose covered neighbor populations alone reach
        # min_pts is settled: every member is core with no distances.
        members_flat, m_sizes, cands_flat, c_sizes, base_counts, _ = (
            _plan_cell_jobs(
                grid, adjacency, work, None, None, bounds, eps_sq, counters,
                settle_threshold=min_pts, seed_self=True,
            )
        )
        counts = _pair_counts(
            array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
            counters, n_jobs, kernel, pair_budget,
        )
        counts = counts + np.repeat(base_counts, m_sizes)
        core_mask[members_flat[counts >= min_pts]] = True
        return core_mask

    @staticmethod
    def _core_cell_map(
        grid: Grid, dense_cells: np.ndarray, core_mask: np.ndarray
    ) -> np.ndarray:
        """Per-cell flag: the cell is dense or contains a core point."""
        cell_is_core = dense_cells.copy()
        core_cells_with_points = np.unique(grid.point_cell[core_mask])
        cell_is_core[core_cells_with_points] = True
        return cell_is_core

    @staticmethod
    def _find_outliers(
        array: np.ndarray,
        grid: Grid,
        adjacency: _CellAdjacency,
        cell_is_core: np.ndarray,
        core_mask: np.ndarray,
        eps: float,
        counters: dict[str, int],
        *,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        n_jobs: int = 1,
        kernel: Kernel | None = None,
        pair_budget: int | None = None,
    ) -> np.ndarray:
        """Outlier identification (Algorithm 5, both branches)."""
        kernel = kernel if kernel is not None else resolve_kernel("numpy")
        pair_budget = normalize_pair_budget(pair_budget)
        eps_sq = eps * eps
        outlier_mask = np.zeros(grid.n_points, dtype=bool)
        work = np.flatnonzero(~cell_is_core)
        if work.size == 0:
            return outlier_mask
        # Candidates are core points of neighboring core cells; a work
        # cell with zero candidates gets zero counts — all outliers
        # (the O_ncn branch of Algorithm 5, handled uniformly).  A work
        # cell settled by a covered core cell gets positive base counts
        # and skips the distance kernel entirely.
        members_flat, m_sizes, cands_flat, c_sizes, base_counts, _ = (
            _plan_cell_jobs(
                grid, adjacency, work,
                candidate_cell_mask=cell_is_core,
                candidate_point_mask=core_mask,
                bounds=bounds,
                eps_sq=eps_sq,
                counters=counters,
                settle_threshold=1,
                seed_self=True,
            )
        )
        counts = _pair_counts(
            array, members_flat, m_sizes, cands_flat, c_sizes, eps_sq,
            counters, n_jobs, kernel, pair_budget,
        )
        counts = counts + np.repeat(base_counts, m_sizes)
        outlier_mask[members_flat[counts == 0]] = True
        return outlier_mask


def detect(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    n_jobs: int | None = 1,
    kernel: str | Kernel | None = "auto",
) -> DetectionResult:
    """Convenience wrapper: run the vectorized engine on ``points``."""
    return VectorizedEngine(n_jobs=n_jobs, kernel=kernel).detect(
        points, eps, min_pts
    )
