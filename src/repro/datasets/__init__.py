"""Dataset generators used by the tests, examples, and benchmarks.

* :mod:`repro.datasets.synthetic` — labelled small 2-D benchmark
  datasets (blobs, blobs-vd, circles, moons), sklearn-like but written
  from scratch.
* :mod:`repro.datasets.cluto` — CLUTO/CURE-style shape datasets with
  noise labels (synthetic stand-ins for the paper's benchmark files).
* :mod:`repro.datasets.geospatial` — Geolife-like and
  OpenStreetMap-like GPS simulators, plus the duplicate-with-jitter
  enlargement used for the paper's 200%-1000% variants.
"""

from repro.datasets.cluto import (
    make_cluto_t4,
    make_cluto_t5,
    make_cluto_t7,
    make_cluto_t8,
    make_cure_t2,
)
from repro.datasets.geospatial import (
    enlarge_with_jitter,
    make_geolife_like,
    make_geolife_like_labeled,
    make_openstreetmap_like,
    sample_fraction,
)
from repro.datasets.projection import (
    haversine_distance,
    project_to_meters,
    unproject_to_degrees,
)
from repro.datasets.synthetic import (
    LabelledDataset,
    make_blobs,
    make_blobs_varying_density,
    make_circles,
    make_moons,
)

__all__ = [
    "LabelledDataset",
    "make_blobs",
    "make_blobs_varying_density",
    "make_circles",
    "make_moons",
    "make_cluto_t4",
    "make_cluto_t5",
    "make_cluto_t7",
    "make_cluto_t8",
    "make_cure_t2",
    "make_geolife_like",
    "make_geolife_like_labeled",
    "make_openstreetmap_like",
    "enlarge_with_jitter",
    "sample_fraction",
    "project_to_meters",
    "unproject_to_degrees",
    "haversine_distance",
]
