"""CLUTO/CURE-style shape datasets (synthetic stand-ins).

The paper's Table III uses the classic CHAMELEON/CLUTO 2-D benchmark
files (``t4.8k``, ``t5.8k``, ``t7.10k``, ``t8.8k``) and ``cure-t2-4k``,
which mix oddly shaped clusters with uniform background noise at known
contamination rates.  The original files are not redistributable and no
network access is available, so these generators produce *shape-alike*
datasets: structured clusters (sine bands, rings, bars, letter-like
strokes, ellipses) plus uniform noise kept clear of the structures, at
the same sizes and contamination rates as the paper's table (t4: 10%,
t5: 15%, t7: 8%, t8: 4%, cure-t2: 5%).

Ground-truth labels mark the noise points as outliers.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import LabelledDataset, scatter_outliers

__all__ = [
    "make_cluto_t4",
    "make_cluto_t5",
    "make_cluto_t7",
    "make_cluto_t8",
    "make_cure_t2",
]


def _sine_band(
    rng: np.random.Generator,
    n_points: int,
    x_range: tuple[float, float],
    amplitude: float,
    period: float,
    y_offset: float,
    thickness: float,
) -> np.ndarray:
    """A dense band following a sine wave (CLUTO's wavy shapes)."""
    x = rng.uniform(*x_range, n_points)
    y = y_offset + amplitude * np.sin(2.0 * np.pi * x / period)
    y = y + rng.normal(0.0, thickness, n_points)
    return np.column_stack([x, y])


def _ring(
    rng: np.random.Generator,
    n_points: int,
    center: tuple[float, float],
    radius: float,
    thickness: float,
) -> np.ndarray:
    """An annular cluster."""
    angles = rng.uniform(0.0, 2.0 * np.pi, n_points)
    radii = radius + rng.normal(0.0, thickness, n_points)
    return np.column_stack(
        [center[0] + radii * np.cos(angles), center[1] + radii * np.sin(angles)]
    )


def _bar(
    rng: np.random.Generator,
    n_points: int,
    start: tuple[float, float],
    end: tuple[float, float],
    thickness: float,
) -> np.ndarray:
    """A dense straight stroke from ``start`` to ``end``."""
    t = rng.uniform(0.0, 1.0, n_points)
    sx, sy = start
    ex, ey = end
    base = np.column_stack([sx + t * (ex - sx), sy + t * (ey - sy)])
    return base + rng.normal(0.0, thickness, size=(n_points, 2))


def _blob(
    rng: np.random.Generator,
    n_points: int,
    center: tuple[float, float],
    std: tuple[float, float],
) -> np.ndarray:
    """An (optionally anisotropic) Gaussian cluster."""
    return np.column_stack(
        [
            rng.normal(center[0], std[0], n_points),
            rng.normal(center[1], std[1], n_points),
        ]
    )


def _finish(
    name: str,
    shapes: list[np.ndarray],
    noise_fraction: float,
    clearance: float,
    rng: np.random.Generator,
) -> LabelledDataset:
    inliers = np.vstack(shapes)
    n_inliers = inliers.shape[0]
    n_noise = int(round(noise_fraction * n_inliers / (1.0 - noise_fraction)))
    noise = scatter_outliers(inliers, n_noise, rng, clearance=clearance)
    points = np.vstack([inliers, noise])
    labels = np.concatenate(
        [
            np.zeros(n_inliers, dtype=np.int64),
            np.ones(n_noise, dtype=np.int64),
        ]
    )
    order = rng.permutation(points.shape[0])
    return LabelledDataset(points[order], labels[order], name)


def make_cluto_t4(n_points: int = 8000, seed: int = 4) -> LabelledDataset:
    """t4.8k-alike: wavy bands, a ring, and bars; ~10% noise."""
    rng = np.random.default_rng(seed)
    n_inliers = int(n_points * 0.90)
    share = n_inliers // 5
    shapes = [
        _sine_band(rng, share, (0.0, 400.0), 40.0, 200.0, 250.0, 6.0),
        _sine_band(rng, share, (0.0, 400.0), 40.0, 200.0, 120.0, 6.0),
        _ring(rng, share, (320.0, 320.0), 45.0, 5.0),
        _bar(rng, share, (40.0, 30.0), (180.0, 60.0), 6.0),
        _blob(rng, n_inliers - 4 * share, (90.0, 330.0), (18.0, 12.0)),
    ]
    return _finish("cluto-t4-8k", shapes, 0.10, clearance=14.0, rng=rng)


def make_cluto_t5(n_points: int = 8000, seed: int = 5) -> LabelledDataset:
    """t5.8k-alike: letter-like strokes; ~15% noise."""
    rng = np.random.default_rng(seed)
    n_inliers = int(n_points * 0.85)
    share = n_inliers // 6
    shapes = [
        _bar(rng, share, (20.0, 20.0), (20.0, 180.0), 5.0),
        _bar(rng, share, (20.0, 180.0), (90.0, 20.0), 5.0),
        _bar(rng, share, (90.0, 20.0), (90.0, 180.0), 5.0),
        _ring(rng, share, (180.0, 100.0), 45.0, 5.0),
        _bar(rng, share, (260.0, 20.0), (330.0, 180.0), 5.0),
        _bar(rng, n_inliers - 5 * share, (260.0, 180.0), (330.0, 20.0), 5.0),
    ]
    return _finish("cluto-t5-8k", shapes, 0.15, clearance=12.0, rng=rng)


def make_cluto_t7(n_points: int = 10000, seed: int = 7) -> LabelledDataset:
    """t7.10k-alike: nested irregular regions; ~8% noise."""
    rng = np.random.default_rng(seed)
    n_inliers = int(n_points * 0.92)
    share = n_inliers // 6
    shapes = [
        _sine_band(rng, share, (0.0, 500.0), 30.0, 260.0, 60.0, 8.0),
        _sine_band(rng, share, (0.0, 500.0), 30.0, 260.0, 430.0, 8.0),
        _ring(rng, share, (150.0, 250.0), 70.0, 7.0),
        _ring(rng, share, (150.0, 250.0), 30.0, 5.0),
        _blob(rng, share, (380.0, 250.0), (30.0, 50.0)),
        _bar(rng, n_inliers - 5 * share, (300.0, 120.0), (470.0, 380.0), 9.0),
    ]
    return _finish("cluto-t7-10k", shapes, 0.08, clearance=18.0, rng=rng)


def make_cluto_t8(n_points: int = 8000, seed: int = 8) -> LabelledDataset:
    """t8.8k-alike: broad overlapping regions; ~4% noise."""
    rng = np.random.default_rng(seed)
    n_inliers = int(n_points * 0.96)
    share = n_inliers // 4
    shapes = [
        _blob(rng, share, (120.0, 120.0), (45.0, 25.0)),
        _blob(rng, share, (330.0, 150.0), (30.0, 55.0)),
        _sine_band(rng, share, (0.0, 450.0), 35.0, 220.0, 330.0, 10.0),
        _ring(rng, n_inliers - 3 * share, (230.0, 240.0), 60.0, 8.0),
    ]
    return _finish("cluto-t8-8k", shapes, 0.04, clearance=22.0, rng=rng)


def make_cure_t2(n_points: int = 4000, seed: int = 2) -> LabelledDataset:
    """cure-t2-4k-alike: big/small ellipses plus connected blobs; ~5% noise."""
    rng = np.random.default_rng(seed)
    n_inliers = int(n_points * 0.95)
    share = n_inliers // 5
    shapes = [
        _blob(rng, 2 * share, (0.30, 0.50), (0.09, 0.045)),
        _blob(rng, share, (0.72, 0.65), (0.035, 0.07)),
        _blob(rng, share, (0.72, 0.28), (0.05, 0.025)),
        _ring(rng, n_inliers - 4 * share, (0.5, 0.12), 0.07, 0.008),
    ]
    return _finish("cure-t2-4k", shapes, 0.05, clearance=0.045, rng=rng)
