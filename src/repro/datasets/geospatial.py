"""Geospatial dataset simulators for the scalability experiments.

The paper's performance study runs on two proprietary-scale GPS
collections we cannot ship: *Geolife* (24.9M 3-D points, heavily skewed
around Beijing — at ``eps = 200`` about 40% of the points fall into the
single most populous cell) and *OpenStreetMap bulk GPS* (2.77B 2-D
points world-wide).  These generators reproduce the distributional
properties the evaluation leans on, at configurable (laptop-sized)
scale:

* :func:`make_geolife_like` — one dominant urban hotspot holding most
  of the mass (nested Gaussian sub-hotspots + commuter track segments),
  a few secondary cities, and a thin world-wide scatter.  Coordinates
  are meter-like, so the paper's ``eps`` values 25-200 make sense.
* :func:`make_openstreetmap_like` — hundreds of city clusters with a
  Zipf-like size distribution, road-like segments connecting them, and
  a sparse uniform background.  Coordinates are scaled-degree units
  (degrees times 1e7, as in OSM bulk GPS), so the paper's ``eps``
  values 2.5e5-2e6 carry over verbatim.
* :func:`enlarge_with_jitter` — the paper's 200%-1000% datasets:
  duplicate every point with small random noise.
* :func:`sample_fraction` — the paper's 1%-75% samples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "make_geolife_like",
    "make_geolife_like_labeled",
    "make_openstreetmap_like",
    "enlarge_with_jitter",
    "sample_fraction",
]


def _track_segments(
    rng: np.random.Generator,
    n_points: int,
    n_segments: int,
    anchor: np.ndarray,
    spread: float,
    thickness: float,
    n_dims: int,
) -> np.ndarray:
    """Points along random line segments (GPS tracks / roads)."""
    starts = anchor + rng.normal(0.0, spread, size=(n_segments, n_dims))
    ends = starts + rng.normal(0.0, spread * 0.5, size=(n_segments, n_dims))
    which = rng.integers(0, n_segments, size=n_points)
    t = rng.uniform(0.0, 1.0, size=(n_points, 1))
    base = starts[which] + t * (ends[which] - starts[which])
    return base + rng.normal(0.0, thickness, size=(n_points, n_dims))


def make_geolife_like(
    n_points: int = 100_000,
    hotspot_fraction: float = 0.70,
    track_fraction: float = 0.25,
    seed: int = 0,
) -> np.ndarray:
    """Skewed 3-D GPS trajectory data (Geolife stand-in).

    Args:
        n_points: Total number of points.
        hotspot_fraction: Share of points in the dominant urban hotspot.
        track_fraction: Share of points along commuter track segments
            radiating from the hotspot.  The remainder is a thin
            world-wide scatter (the outlier-rich tail).
        seed: RNG seed.

    Returns:
        ``(n_points, 3)`` array: x/y in meter-like units around the
        hotspot at the origin, altitude in feet.
    """
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ParameterError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    if not 0.0 <= track_fraction <= 1.0 - hotspot_fraction:
        raise ParameterError(
            "track_fraction must be in [0, 1 - hotspot_fraction], "
            f"got {track_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_hotspot = int(n_points * hotspot_fraction)
    n_tracks = int(n_points * track_fraction)
    n_world = n_points - n_hotspot - n_tracks

    # Dominant city: nested sub-hotspots at very different densities,
    # so a large share of the mass concentrates in a tiny area (the
    # paper reports ~40% of Geolife in the most populous cell at
    # eps = 200).  The downtown core is extremely tight and sits at a
    # random position so it does not systematically straddle cell
    # boundaries of any particular grid.
    n_subspots = 12
    subspot_centers = rng.normal(0.0, 3_000.0, size=(n_subspots, 2))
    subspot_centers[0] = rng.uniform(-500.0, 500.0, size=2)
    weights = np.array([0.55] + [0.45 / (n_subspots - 1)] * (n_subspots - 1))
    spot = rng.choice(n_subspots, size=n_hotspot, p=weights)
    sigma = np.where(spot == 0, 15.0, 400.0)
    hotspot_xy = subspot_centers[spot] + rng.normal(
        size=(n_hotspot, 2)
    ) * sigma[:, None]
    alt_sigma = np.where(spot == 0, 8.0, 30.0)
    hotspot_alt = (160.0 + rng.normal(size=n_hotspot) * alt_sigma)[:, None]
    hotspot = np.hstack([hotspot_xy, hotspot_alt])

    tracks_xy = _track_segments(
        rng,
        n_tracks,
        n_segments=40,
        anchor=np.zeros(2),
        spread=25_000.0,
        thickness=30.0,
        n_dims=2,
    )
    tracks_alt = rng.normal(200.0, 80.0, size=(n_tracks, 1))
    tracks = np.hstack([tracks_xy, tracks_alt])

    world_xy = rng.uniform(-2.0e6, 2.0e6, size=(n_world, 2))
    world_alt = rng.uniform(0.0, 10_000.0, size=(n_world, 1))
    world = np.hstack([world_xy, world_alt])

    points = np.vstack([hotspot, tracks, world])
    return points[rng.permutation(n_points)]


def make_openstreetmap_like(
    n_points: int = 200_000,
    n_cities: int = 120,
    background_fraction: float = 0.002,
    road_fraction: float = 0.15,
    seed: int = 0,
) -> np.ndarray:
    """World-scale 2-D GPS point data (OpenStreetMap bulk GPS stand-in).

    Args:
        n_points: Total number of points.
        n_cities: Number of city clusters; sizes follow a Zipf-like law.
        background_fraction: Share of points scattered uniformly over
            the whole map (isolated GPS fixes — the outliers).
        road_fraction: Share of points along road-like segments.
        seed: RNG seed.

    Returns:
        ``(n_points, 2)`` array in scaled-degree units (degrees * 1e7):
        longitude in [-1.8e9, 1.8e9], latitude in [-0.9e9, 0.9e9].
    """
    if n_cities < 1:
        raise ParameterError(f"n_cities must be >= 1, got {n_cities}")
    if not 0.0 <= background_fraction <= 1.0:
        raise ParameterError(
            f"background_fraction must be in [0, 1], got {background_fraction}"
        )
    rng = np.random.default_rng(seed)
    scale = 1.0e7  # degrees -> OSM bulk-GPS integer units
    n_background = int(n_points * background_fraction)
    n_roads = int(n_points * road_fraction)
    n_city_points = n_points - n_background - n_roads

    city_centers = np.column_stack(
        [
            rng.uniform(-175.0, 175.0, n_cities),
            rng.uniform(-65.0, 75.0, n_cities),
        ]
    ) * scale
    ranks = np.arange(1, n_cities + 1, dtype=np.float64)
    weights = (1.0 / ranks) / (1.0 / ranks).sum()  # Zipf-like sizes
    which = rng.choice(n_cities, size=n_city_points, p=weights)
    # City area scales with population (sigma ~ sqrt(weight)), so all
    # cities have comparable point density and stay dense even at
    # laptop-scale n; only the thin background is genuinely isolated.
    city_sigma = (
        0.35 * np.sqrt(weights / weights[0]) * rng.uniform(0.7, 1.3, n_cities)
    ) * scale
    cities = city_centers[which] + rng.normal(
        size=(n_city_points, 2)
    ) * city_sigma[which][:, None]

    road_anchor_city = rng.choice(n_cities, size=1)[0]
    roads = _track_segments(
        rng,
        n_roads,
        n_segments=20,
        anchor=city_centers[road_anchor_city],
        spread=8.0 * scale,
        thickness=0.02 * scale,
        n_dims=2,
    )

    background = np.column_stack(
        [
            rng.uniform(-180.0, 180.0, n_background),
            rng.uniform(-90.0, 90.0, n_background),
        ]
    ) * scale

    points = np.vstack([cities, roads, background])
    return points[rng.permutation(n_points)]


def make_geolife_like_labeled(
    n_points: int = 20_000,
    anomaly_fraction: float = 0.01,
    seed: int = 0,
):
    """Geolife-like 3-D GPS data with ground-truth anomaly labels.

    The structured mass (hotspot + tracks) forms the inliers; anomalies
    are rejection-sampled isolated fixes, at least five kilometers from
    any inlier — spoofed or glitched positions.  Enables quality
    evaluation (F1/AUC) on the geospatial workload, which the unlabeled
    simulators cannot provide.

    Returns:
        A :class:`~repro.datasets.synthetic.LabelledDataset`.
    """
    from repro.datasets.synthetic import LabelledDataset, scatter_outliers

    if not 0.0 < anomaly_fraction < 0.5:
        raise ParameterError(
            f"anomaly_fraction must be in (0, 0.5), got {anomaly_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_anomalies = max(1, int(round(n_points * anomaly_fraction)))
    n_inliers = n_points - n_anomalies
    inliers = make_geolife_like(
        n_inliers,
        hotspot_fraction=0.72,
        track_fraction=0.28,  # no world scatter: inliers only
        seed=seed,
    )
    anomalies = scatter_outliers(
        inliers, n_anomalies, rng, clearance=5_000.0, expand=0.3
    )
    points = np.vstack([inliers, anomalies])
    labels = np.concatenate(
        [
            np.zeros(n_inliers, dtype=np.int64),
            np.ones(n_anomalies, dtype=np.int64),
        ]
    )
    order = rng.permutation(points.shape[0])
    return LabelledDataset(points[order], labels[order], "geolife-labeled")


def enlarge_with_jitter(
    points: np.ndarray,
    factor: int,
    noise_scale: float,
    seed: int = 0,
) -> np.ndarray:
    """Duplicate the dataset ``factor`` times with small random noise.

    This is how the paper built the 200%-1000% OpenStreetMap variants:
    each replica of a point is perturbed slightly "to avoid creating
    too many overlaps".

    Args:
        points: ``(n, d)`` base dataset.
        factor: Total size multiplier (>= 1); ``factor=2`` gives 200%.
        noise_scale: Standard deviation of the per-replica jitter.
        seed: RNG seed.

    Returns:
        ``(n * factor, d)`` array; the first ``n`` rows are the
        originals.
    """
    if factor < 1:
        raise ParameterError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return np.array(points, dtype=np.float64)
    rng = np.random.default_rng(seed)
    replicas = [np.asarray(points, dtype=np.float64)]
    for _copy in range(factor - 1):
        jitter = rng.normal(0.0, noise_scale, size=points.shape)
        replicas.append(points + jitter)
    return np.vstack(replicas)


def sample_fraction(
    points: np.ndarray, fraction: float, seed: int = 0
) -> np.ndarray:
    """Uniform random sample of ``fraction`` of the rows."""
    if not 0.0 < fraction <= 1.0:
        raise ParameterError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    n_keep = max(1, int(round(points.shape[0] * fraction)))
    indices = rng.choice(points.shape[0], size=n_keep, replace=False)
    return np.asarray(points, dtype=np.float64)[np.sort(indices)]
