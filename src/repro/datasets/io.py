"""Loading and saving point datasets (CSV and NPY).

The CLI and examples use these helpers; they are deliberately plain:
CSV files are headerless rows of floats (optionally with a header line
that is auto-detected and skipped), NPY files are 2-D float arrays.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.grid import validate_points
from repro.exceptions import DataValidationError

__all__ = ["load_points", "save_points", "save_outliers"]


def _looks_like_header(first_line: str, delimiter: str) -> bool:
    for token in first_line.strip().split(delimiter):
        try:
            float(token)
        except ValueError:
            return True
    return False


def load_points(path: str | pathlib.Path, delimiter: str = ",") -> np.ndarray:
    """Load a 2-D float array from a ``.npy`` or delimited text file.

    Args:
        path: Input file; ``.npy`` loads binary, anything else is
            parsed as delimited text.  A non-numeric first line is
            treated as a header and skipped.
        delimiter: Column separator for text files.

    Returns:
        Validated ``(n, d)`` float array.

    Raises:
        DataValidationError: If the file cannot be parsed into a valid
            point array.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise DataValidationError(f"input file does not exist: {path}")
    if path.suffix == ".npy":
        array = np.load(path)
    else:
        with open(path) as handle:
            first_line = handle.readline()
        skip = 1 if _looks_like_header(first_line, delimiter) else 0
        try:
            array = np.loadtxt(
                path, delimiter=delimiter, skiprows=skip, ndmin=2
            )
        except ValueError as exc:
            raise DataValidationError(
                f"could not parse {path} as delimited floats: {exc}"
            ) from exc
    return validate_points(array)


def save_points(
    points: np.ndarray, path: str | pathlib.Path, delimiter: str = ","
) -> None:
    """Save a point array as ``.npy`` or delimited text (by suffix)."""
    path = pathlib.Path(path)
    array = validate_points(points)
    if path.suffix == ".npy":
        np.save(path, array)
    else:
        np.savetxt(path, array, delimiter=delimiter)


def save_outliers(
    outlier_indices: np.ndarray, path: str | pathlib.Path
) -> None:
    """Save outlier point indices, one per line."""
    np.savetxt(path, np.asarray(outlier_indices, dtype=np.int64), fmt="%d")
