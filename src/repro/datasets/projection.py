"""Geographic projection helpers for GPS workloads.

DBSCOUT measures Euclidean distances, but real GPS data (the paper's
Geolife and OpenStreetMap inputs) comes as latitude/longitude degrees,
where one degree of longitude shrinks with latitude.  For city- to
country-scale regions the standard practice is to project into a local
equirectangular plane (meters), run the detector there, and map back.

:func:`haversine_distance` (the great-circle reference) is provided so
the projection error can be quantified; for regions a few hundred
kilometers across it stays well below typical ``eps`` values.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.grid import validate_points
from repro.exceptions import DataValidationError

__all__ = [
    "EARTH_RADIUS_METERS",
    "project_to_meters",
    "unproject_to_degrees",
    "haversine_distance",
]

EARTH_RADIUS_METERS = 6_371_008.8


def _validate_latlon(latlon: np.ndarray) -> np.ndarray:
    array = validate_points(latlon)
    if array.shape[1] != 2:
        raise DataValidationError(
            f"lat/lon input must have 2 columns, got {array.shape[1]}"
        )
    if array.size:
        if np.abs(array[:, 0]).max() > 90.0:
            raise DataValidationError("latitude out of [-90, 90]")
        if np.abs(array[:, 1]).max() > 180.0:
            raise DataValidationError("longitude out of [-180, 180]")
    return array


def project_to_meters(
    latlon_degrees: np.ndarray,
    origin: tuple[float, float] | None = None,
) -> tuple[np.ndarray, tuple[float, float]]:
    """Equirectangular projection of (lat, lon) degrees to local meters.

    Args:
        latlon_degrees: ``(n, 2)`` array of (latitude, longitude).
        origin: Projection origin (lat, lon); defaults to the centroid.

    Returns:
        ``(xy_meters, origin)``: x is easting, y is northing relative
        to the origin; pass the origin to
        :func:`unproject_to_degrees` to invert.
    """
    array = _validate_latlon(latlon_degrees)
    if origin is None:
        if array.shape[0] == 0:
            raise DataValidationError(
                "cannot infer a projection origin from an empty array"
            )
        origin = (float(array[:, 0].mean()), float(array[:, 1].mean()))
    lat0, lon0 = origin
    lat0_rad = math.radians(lat0)
    meters_per_deg = EARTH_RADIUS_METERS * math.pi / 180.0
    x = (array[:, 1] - lon0) * meters_per_deg * math.cos(lat0_rad)
    y = (array[:, 0] - lat0) * meters_per_deg
    return np.column_stack([x, y]), origin


def unproject_to_degrees(
    xy_meters: np.ndarray, origin: tuple[float, float]
) -> np.ndarray:
    """Invert :func:`project_to_meters` for the same origin."""
    array = validate_points(xy_meters)
    if array.shape[1] != 2:
        raise DataValidationError(
            f"xy input must have 2 columns, got {array.shape[1]}"
        )
    lat0, lon0 = origin
    lat0_rad = math.radians(lat0)
    meters_per_deg = EARTH_RADIUS_METERS * math.pi / 180.0
    lat = lat0 + array[:, 1] / meters_per_deg
    lon = lon0 + array[:, 0] / (meters_per_deg * math.cos(lat0_rad))
    return np.column_stack([lat, lon])


def haversine_distance(
    latlon_a: np.ndarray, latlon_b: np.ndarray
) -> np.ndarray:
    """Great-circle distance in meters between paired (lat, lon) rows."""
    a = _validate_latlon(np.atleast_2d(latlon_a))
    b = _validate_latlon(np.atleast_2d(latlon_b))
    if a.shape != b.shape:
        raise DataValidationError(
            f"paired inputs differ in shape: {a.shape} vs {b.shape}"
        )
    lat_a, lon_a = np.radians(a[:, 0]), np.radians(a[:, 1])
    lat_b, lon_b = np.radians(b[:, 0]), np.radians(b[:, 1])
    sin_dlat = np.sin((lat_b - lat_a) / 2.0)
    sin_dlon = np.sin((lon_b - lon_a) / 2.0)
    h = sin_dlat**2 + np.cos(lat_a) * np.cos(lat_b) * sin_dlon**2
    return 2.0 * EARTH_RADIUS_METERS * np.arcsin(np.sqrt(np.clip(h, 0, 1)))
