"""Labelled synthetic 2-D datasets for the Table III quality study.

Each generator returns a :class:`LabelledDataset` whose ``outlier_labels``
are ground truth by construction: inliers are drawn from the structured
distribution, outliers are drawn uniformly over an expanded bounding box
and **rejection-sampled away from the inlier structure**, so that the
label noise that would otherwise plague density-based ground truth is
avoided.

The four shapes mirror the paper's scikit-learn-style datasets: *Blobs*
(isotropic Gaussians), *Blobs-vd* (blobs with varying density),
*Circles* (two concentric rings), and *Moons* (two interleaving half
circles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "LabelledDataset",
    "make_blobs",
    "make_blobs_varying_density",
    "make_circles",
    "make_moons",
    "scatter_outliers",
]


@dataclass(frozen=True)
class LabelledDataset:
    """Points with ground-truth outlier labels.

    Attributes:
        points: ``(n, d)`` float array.
        outlier_labels: ``(n,)`` int array; 1 marks a true outlier.
        name: Human-readable dataset name.
    """

    points: np.ndarray
    outlier_labels: np.ndarray
    name: str

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def n_outliers(self) -> int:
        return int(self.outlier_labels.sum())

    @property
    def contamination(self) -> float:
        """True outlier fraction, the ``nu`` handed to the baselines."""
        return self.n_outliers / max(self.n_points, 1)

    def __repr__(self) -> str:
        return (
            f"LabelledDataset(name={self.name!r}, n_points={self.n_points}, "
            f"n_outliers={self.n_outliers})"
        )


def _check_counts(n_inliers: int, n_outliers: int) -> None:
    if n_inliers < 1:
        raise ParameterError(f"n_inliers must be >= 1, got {n_inliers}")
    if n_outliers < 0:
        raise ParameterError(f"n_outliers must be >= 0, got {n_outliers}")


def scatter_outliers(
    inliers: np.ndarray,
    n_outliers: int,
    rng: np.random.Generator,
    clearance: float,
    expand: float = 0.25,
) -> np.ndarray:
    """Uniform outliers over the expanded bounding box of ``inliers``,
    rejection-sampled to stay at least ``clearance`` from every inlier.

    Args:
        inliers: ``(n, d)`` inlier points.
        n_outliers: Number of outliers to draw.
        rng: Source of randomness.
        clearance: Minimum allowed distance to the nearest inlier.
        expand: Bounding-box expansion fraction per side.

    Returns:
        ``(n_outliers, d)`` array.
    """
    if n_outliers == 0:
        return np.empty((0, inliers.shape[1]), dtype=np.float64)
    from scipy.spatial import cKDTree

    lo = inliers.min(axis=0)
    hi = inliers.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    lo = lo - expand * span
    hi = hi + expand * span
    tree = cKDTree(inliers)
    accepted: list[np.ndarray] = []
    needed = n_outliers
    for _attempt in range(200):
        draw = rng.uniform(lo, hi, size=(max(needed * 4, 16), inliers.shape[1]))
        nearest, _ = tree.query(draw, k=1)
        good = draw[nearest >= clearance]
        if good.shape[0]:
            accepted.append(good[:needed])
            needed -= min(needed, good.shape[0])
        if needed == 0:
            break
    if needed > 0:
        raise ParameterError(
            "could not place outliers with the requested clearance "
            f"({clearance}); the inlier structure fills the box"
        )
    return np.vstack(accepted)


def _assemble(
    name: str,
    inliers: np.ndarray,
    outliers: np.ndarray,
    rng: np.random.Generator,
) -> LabelledDataset:
    points = np.vstack([inliers, outliers])
    labels = np.concatenate(
        [
            np.zeros(inliers.shape[0], dtype=np.int64),
            np.ones(outliers.shape[0], dtype=np.int64),
        ]
    )
    order = rng.permutation(points.shape[0])
    return LabelledDataset(points[order], labels[order], name)


def make_blobs(
    n_inliers: int = 990,
    n_outliers: int = 10,
    n_centers: int = 3,
    cluster_std: float = 0.6,
    center_box: float = 8.0,
    seed: int = 0,
) -> LabelledDataset:
    """Isotropic Gaussian blobs plus scattered outliers (*Blobs*)."""
    _check_counts(n_inliers, n_outliers)
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-center_box, center_box, size=(n_centers, 2))
    assignment = rng.integers(0, n_centers, size=n_inliers)
    inliers = centers[assignment] + rng.normal(
        0.0, cluster_std, size=(n_inliers, 2)
    )
    outliers = scatter_outliers(
        inliers, n_outliers, rng, clearance=4.0 * cluster_std
    )
    return _assemble("blobs", inliers, outliers, rng)


def make_blobs_varying_density(
    n_inliers: int = 990,
    n_outliers: int = 10,
    cluster_stds: tuple[float, ...] = (0.3, 0.8, 1.4),
    center_box: float = 10.0,
    seed: int = 0,
) -> LabelledDataset:
    """Gaussian blobs of different densities (*Blobs-vd*)."""
    _check_counts(n_inliers, n_outliers)
    rng = np.random.default_rng(seed)
    n_centers = len(cluster_stds)
    if n_centers < 1:
        raise ParameterError("cluster_stds must not be empty")
    centers = rng.uniform(-center_box, center_box, size=(n_centers, 2))
    assignment = rng.integers(0, n_centers, size=n_inliers)
    stds = np.array(cluster_stds)[assignment]
    inliers = centers[assignment] + rng.normal(size=(n_inliers, 2)) * stds[:, None]
    outliers = scatter_outliers(
        inliers, n_outliers, rng, clearance=4.0 * min(cluster_stds)
    )
    return _assemble("blobs-vd", inliers, outliers, rng)


def make_circles(
    n_inliers: int = 990,
    n_outliers: int = 10,
    factor: float = 0.5,
    noise: float = 0.02,
    seed: int = 0,
) -> LabelledDataset:
    """Two concentric circles plus scattered outliers (*Circles*)."""
    _check_counts(n_inliers, n_outliers)
    rng = np.random.default_rng(seed)
    n_outer = n_inliers // 2
    n_inner = n_inliers - n_outer
    angles_outer = rng.uniform(0.0, 2.0 * np.pi, n_outer)
    angles_inner = rng.uniform(0.0, 2.0 * np.pi, n_inner)
    outer = np.column_stack([np.cos(angles_outer), np.sin(angles_outer)])
    inner = factor * np.column_stack(
        [np.cos(angles_inner), np.sin(angles_inner)]
    )
    inliers = np.vstack([outer, inner]) + rng.normal(
        0.0, noise, size=(n_inliers, 2)
    )
    outliers = scatter_outliers(inliers, n_outliers, rng, clearance=8.0 * noise)
    return _assemble("circles", inliers, outliers, rng)


def make_moons(
    n_inliers: int = 990,
    n_outliers: int = 10,
    noise: float = 0.03,
    seed: int = 0,
) -> LabelledDataset:
    """Two interleaving half circles plus scattered outliers (*Moons*)."""
    _check_counts(n_inliers, n_outliers)
    rng = np.random.default_rng(seed)
    n_upper = n_inliers // 2
    n_lower = n_inliers - n_upper
    t_upper = rng.uniform(0.0, np.pi, n_upper)
    t_lower = rng.uniform(0.0, np.pi, n_lower)
    upper = np.column_stack([np.cos(t_upper), np.sin(t_upper)])
    lower = np.column_stack([1.0 - np.cos(t_lower), 0.5 - np.sin(t_lower)])
    inliers = np.vstack([upper, lower]) + rng.normal(
        0.0, noise, size=(n_inliers, 2)
    )
    outliers = scatter_outliers(inliers, n_outliers, rng, clearance=8.0 * noise)
    return _assemble("moons", inliers, outliers, rng)
