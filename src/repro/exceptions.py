"""Exception hierarchy for the DBSCOUT reproduction library.

Every error raised by the public API derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (e.g. non-positive ``eps``)."""


class DataValidationError(ReproError, ValueError):
    """The input data does not satisfy the algorithm's requirements."""


class EngineError(ReproError, RuntimeError):
    """A computation engine failed or was configured inconsistently."""


class KernelBuildError(EngineError):
    """The compiled distance kernel could not be built or loaded.

    Raised internally by :mod:`repro.core.kernels`; the public
    ``resolve_kernel`` entry point catches it and falls back to the
    NumPy kernel (recording a ``kernel.fallback`` metric), so user code
    never sees this error unless it builds the C kernel directly.
    """


class NotFittedError(ReproError, RuntimeError):
    """A result or model attribute was accessed before ``fit`` ran."""


class ArtifactError(ReproError, RuntimeError):
    """A detector artifact could not be saved, loaded, or validated."""


class ServeError(ReproError, RuntimeError):
    """Base class for errors raised by the serving layer."""


class ServiceOverloadedError(ServeError):
    """The micro-batching queue is full; the caller should back off."""


class DeadlineExceededError(ServeError, TimeoutError):
    """A queued request missed its deadline before a batch ran it."""


class UnknownDetectorError(ServeError, KeyError):
    """The requested detector name is not registered with the service."""

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes the message; keep it readable.
        return Exception.__str__(self)


class SparkLiteError(ReproError, RuntimeError):
    """Base class for errors raised by the SparkLite execution engine."""


class ShuffleError(SparkLiteError):
    """A shuffle stage failed (e.g. unhashable key)."""


class TaskFailure(SparkLiteError):
    """A (transient) task failure; the engine retries these.

    Raised by failure injectors to exercise the engine's lineage-based
    recovery, or by user code that wants a task attempt re-executed.
    Anything else a task raises is treated as a deterministic error
    and propagates without retry.
    """


class BroadcastError(SparkLiteError):
    """A broadcast variable was used after being destroyed."""


class ExecutorMemoryError(SparkLiteError, MemoryError):
    """A simulated executor exceeded its memory budget.

    Raised by the cluster memory model (``repro.sparklite.cluster``)
    when broadcasts plus shuffle buckets overflow an executor — the
    engine's analogue of a Spark executor OOM.
    """
