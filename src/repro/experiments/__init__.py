"""Experiment harness: timed runs, table rendering, terminal plots."""

from repro.experiments.plotting import ascii_curve, ascii_loglog, ascii_scatter
from repro.experiments.persistence import load_experiment, save_experiment
from repro.experiments.runner import Measurement, run_timed, time_callable
from repro.experiments.sweeps import (
    SweepCell,
    SweepResult,
    stability_report,
    sweep_grid,
)
from repro.experiments.tables import format_series, format_table

__all__ = [
    "Measurement",
    "run_timed",
    "time_callable",
    "format_table",
    "format_series",
    "ascii_scatter",
    "ascii_curve",
    "ascii_loglog",
    "save_experiment",
    "load_experiment",
    "sweep_grid",
    "stability_report",
    "SweepCell",
    "SweepResult",
]
