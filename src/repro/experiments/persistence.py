"""Persisting experiment results as JSON.

Benchmarks write their paper-style tables both to stdout and (via
``save_experiment``) to ``results/<name>.json`` so that runs can be
diffed, archived, and re-rendered without re-measuring.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from repro.exceptions import DataValidationError
from repro.experiments.runner import Measurement

__all__ = ["save_experiment", "load_experiment", "measurement_to_dict"]


def measurement_to_dict(measurement: Measurement) -> dict[str, Any]:
    """JSON-safe form of a :class:`Measurement` (payload omitted)."""
    return {
        "label": measurement.label,
        "seconds": list(measurement.seconds),
        "mean": measurement.mean,
        "std": measurement.std,
        "best": measurement.best,
    }


def _jsonify(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and Measurements."""
    import numpy as np

    if isinstance(value, Measurement):
        return measurement_to_dict(value)
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def save_experiment(
    name: str,
    payload: Mapping[str, Any],
    directory: str | pathlib.Path = "results",
) -> pathlib.Path:
    """Write an experiment record to ``<directory>/<name>.json``.

    Args:
        name: Experiment id (used as the file stem; no separators).
        payload: JSON-serializable mapping (numpy values and
            Measurements are converted automatically).
        directory: Target directory, created if missing.

    Returns:
        The path written.
    """
    if not name or "/" in name or "\\" in name:
        raise DataValidationError(f"invalid experiment name: {name!r}")
    target_dir = pathlib.Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(_jsonify(dict(payload)), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_experiment(
    name: str, directory: str | pathlib.Path = "results"
) -> dict[str, Any]:
    """Load a previously saved experiment record."""
    path = pathlib.Path(directory) / f"{name}.json"
    if not path.exists():
        raise DataValidationError(f"no saved experiment at {path}")
    with open(path) as handle:
        return json.load(handle)
