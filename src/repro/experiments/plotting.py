"""Terminal (ASCII) plotting for examples and experiment reports.

No plotting library is available offline, so the examples render
results directly in the terminal: 2-D scatter plots with per-class
markers, descending curves (the k-distance plot), and log-log series
(the scalability figures).  Output is deterministic and therefore
testable.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["ascii_scatter", "ascii_curve", "ascii_loglog"]


def _prepare_canvas(width: int, height: int) -> list[list[str]]:
    if width < 8 or height < 4:
        raise ParameterError(
            f"canvas must be at least 8x4, got {width}x{height}"
        )
    return [[" "] * width for _ in range(height)]


def ascii_scatter(
    points: np.ndarray,
    mask: np.ndarray | None = None,
    width: int = 72,
    height: int = 24,
    marker: str = ".",
    masked_marker: str = "X",
) -> str:
    """Render a 2-D scatter plot; masked points get a loud marker.

    Args:
        points: ``(n, 2)`` array.
        mask: Optional boolean array; ``True`` rows are drawn with
            ``masked_marker`` (e.g. the detected outliers) and always
            win over ordinary points sharing a character cell.
        width: Canvas width in characters.
        height: Canvas height in characters.
        marker: Character for unmasked points.
        masked_marker: Character for masked points.

    Returns:
        The plot as a multi-line string framed by a border.
    """
    array = np.asarray(points, dtype=np.float64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ParameterError(
            f"ascii_scatter needs (n, 2) points, got {array.shape}"
        )
    canvas = _prepare_canvas(width, height)
    if array.shape[0]:
        lo = array.min(axis=0)
        hi = array.max(axis=0)
        span = np.maximum(hi - lo, 1e-12)
        cols = ((array[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int)
        rows = ((array[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int)
        flags = (
            np.zeros(array.shape[0], dtype=bool)
            if mask is None
            else np.asarray(mask, dtype=bool)
        )
        # Draw plain points first so masked markers overwrite them.
        for order_pass, symbol in ((False, marker), (True, masked_marker)):
            for col, row, flagged in zip(cols, rows, flags):
                if flagged == order_pass:
                    canvas[height - 1 - row][col] = symbol
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in canvas)
    return f"{border}\n{body}\n{border}"


def ascii_curve(
    values: Sequence[float],
    width: int = 72,
    height: int = 16,
    mark_value: float | None = None,
    mark_label: str = "<-",
) -> str:
    """Render a 1-D curve (index vs value), optionally marking a level.

    Used for the k-distance plot: pass the descending distances and
    mark the chosen ``eps``.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ParameterError("ascii_curve needs at least one value")
    canvas = _prepare_canvas(width, height)
    lo = float(data.min())
    hi = float(data.max())
    span = max(hi - lo, 1e-12)
    xs = np.linspace(0, data.size - 1, width).astype(int)
    sampled = data[xs]
    rows = ((sampled - lo) / span * (height - 1)).astype(int)
    for col, row in enumerate(rows):
        canvas[height - 1 - row][col] = "*"
    lines = []
    mark_row = None
    if mark_value is not None:
        clipped = min(max(mark_value, lo), hi)
        mark_row = height - 1 - int((clipped - lo) / span * (height - 1))
    for row_index, line in enumerate(canvas):
        level = hi - span * row_index / (height - 1)
        suffix = (
            f" {mark_label} {mark_value:.4g}"
            if mark_row == row_index
            else ""
        )
        lines.append(f"{level:12.4g} |{''.join(line)}|{suffix}")
    return "\n".join(lines)


def ascii_loglog(
    series: Mapping[str, Mapping[float, float]],
    width: int = 72,
    height: int = 20,
) -> str:
    """Render several (x, y) series on shared log-log axes.

    Each series gets a distinct marker (its first letter); overlapping
    cells show the later series.  Used for the scalability figures.
    """
    if not series:
        raise ParameterError("ascii_loglog needs at least one series")
    xs_all = [
        x for mapping in series.values() for x in mapping if x > 0
    ]
    ys_all = [
        y for mapping in series.values() for y in mapping.values() if y > 0
    ]
    if not xs_all or not ys_all:
        raise ParameterError("ascii_loglog needs positive x and y values")
    lx_lo, lx_hi = math.log10(min(xs_all)), math.log10(max(xs_all))
    ly_lo, ly_hi = math.log10(min(ys_all)), math.log10(max(ys_all))
    lx_span = max(lx_hi - lx_lo, 1e-12)
    ly_span = max(ly_hi - ly_lo, 1e-12)
    canvas = _prepare_canvas(width, height)
    for name, mapping in series.items():
        symbol = name[0].upper() if name else "?"
        for x, y in mapping.items():
            if x <= 0 or y <= 0:
                continue
            col = int((math.log10(x) - lx_lo) / lx_span * (width - 1))
            row = int((math.log10(y) - ly_lo) / ly_span * (height - 1))
            canvas[height - 1 - row][col] = symbol
    legend = "   ".join(f"{name[0].upper()} = {name}" for name in series)
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in canvas)
    return f"{border}\n{body}\n{border}\n{legend}"
