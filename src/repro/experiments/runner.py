"""Timed experiment execution with repeats.

The paper runs every configuration five times and reports mean and
standard deviation of the elapsed time; :func:`run_timed` mirrors that
protocol (with a configurable repeat count so the laptop-scale benches
stay quick).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ParameterError

__all__ = ["Measurement", "time_callable", "run_timed"]


@dataclass(frozen=True)
class Measurement:
    """Aggregated timing of repeated runs of one configuration.

    Attributes:
        label: Configuration name (algorithm, dataset, parameter, ...).
        seconds: Per-repeat wall-clock times.
        payload: The last run's return value (e.g. a DetectionResult).
    """

    label: str
    seconds: tuple[float, ...]
    payload: Any = field(compare=False, default=None)

    @property
    def mean(self) -> float:
        """Mean elapsed seconds."""
        return sum(self.seconds) / len(self.seconds)

    @property
    def std(self) -> float:
        """Population standard deviation of the elapsed seconds."""
        mean = self.mean
        return math.sqrt(
            sum((s - mean) ** 2 for s in self.seconds) / len(self.seconds)
        )

    @property
    def best(self) -> float:
        """Fastest repeat."""
        return min(self.seconds)

    def __str__(self) -> str:
        return f"{self.label}: {self.mean:.4f}s ± {self.std:.4f}s"


def time_callable(func: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``func`` once; return (elapsed_seconds, return_value)."""
    start = time.perf_counter()
    value = func()
    return time.perf_counter() - start, value


def run_timed(
    label: str, func: Callable[[], Any], repeats: int = 3
) -> Measurement:
    """Run ``func`` ``repeats`` times and aggregate the wall-clock times."""
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    seconds: list[float] = []
    payload: Any = None
    for _ in range(repeats):
        elapsed, payload = time_callable(func)
        seconds.append(elapsed)
    return Measurement(label=label, seconds=tuple(seconds), payload=payload)
