"""Parameter sweeps: outlier-count and runtime surfaces over (eps, minPts).

Practitioners tune DBSCOUT by looking at how the outlier count reacts
to the parameters: a *stable plateau* in the (eps, minPts) surface
marks robust settings, while cliffs mark phase changes (everything
outlier / nothing outlier).  :func:`sweep_grid` measures the surface;
:func:`stability_report` finds the plateau.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.dbscout import DBSCOUT
from repro.core.grid import validate_points
from repro.exceptions import ParameterError

__all__ = ["SweepCell", "SweepResult", "sweep_grid", "stability_report"]


@dataclass(frozen=True)
class SweepCell:
    """One (eps, minPts) evaluation."""

    eps: float
    min_pts: int
    n_outliers: int
    outlier_fraction: float
    seconds: float


@dataclass(frozen=True)
class SweepResult:
    """The full surface: one :class:`SweepCell` per grid point."""

    cells: tuple[SweepCell, ...]
    n_points: int

    def outlier_matrix(self) -> tuple[list[float], list[int], np.ndarray]:
        """Return (eps_values, min_pts_values, counts[min_pts, eps])."""
        eps_values = sorted({cell.eps for cell in self.cells})
        min_pts_values = sorted({cell.min_pts for cell in self.cells})
        matrix = np.full((len(min_pts_values), len(eps_values)), -1, dtype=int)
        for cell in self.cells:
            row = min_pts_values.index(cell.min_pts)
            col = eps_values.index(cell.eps)
            matrix[row, col] = cell.n_outliers
        return eps_values, min_pts_values, matrix

    def at(self, eps: float, min_pts: int) -> SweepCell:
        """Lookup one grid point."""
        for cell in self.cells:
            if cell.eps == eps and cell.min_pts == min_pts:
                return cell
        raise ParameterError(
            f"(eps={eps}, min_pts={min_pts}) was not part of the sweep"
        )


def sweep_grid(
    points: np.ndarray,
    eps_values: Sequence[float],
    min_pts_values: Sequence[int],
) -> SweepResult:
    """Run DBSCOUT for every (eps, minPts) combination.

    Args:
        points: ``(n, d)`` dataset.
        eps_values: Radii to evaluate (each positive).
        min_pts_values: Density thresholds to evaluate.

    Returns:
        A :class:`SweepResult` with one cell per combination.
    """
    array = validate_points(points)
    if not eps_values or not min_pts_values:
        raise ParameterError("sweep needs at least one value per axis")
    n_points = array.shape[0]
    cells: list[SweepCell] = []
    for min_pts in min_pts_values:
        for eps in eps_values:
            start = time.perf_counter()
            result = DBSCOUT(eps=eps, min_pts=min_pts).fit(array)
            elapsed = time.perf_counter() - start
            cells.append(
                SweepCell(
                    eps=float(eps),
                    min_pts=int(min_pts),
                    n_outliers=result.n_outliers,
                    outlier_fraction=result.n_outliers / max(n_points, 1),
                    seconds=elapsed,
                )
            )
    return SweepResult(cells=tuple(cells), n_points=n_points)


def stability_report(
    sweep: SweepResult, tolerance: float = 0.25
) -> list[SweepCell]:
    """Cells whose outlier count is stable against parameter nudges.

    A cell is *stable* when every grid neighbor (adjacent eps or
    adjacent minPts) has an outlier count within ``tolerance``
    (relative) of its own — the plateau a practitioner should pick
    from.  Cells with zero outliers are excluded (trivially stable and
    useless).

    Returns:
        Stable cells, most-stable (lowest max relative change) first.
    """
    if not 0.0 < tolerance:
        raise ParameterError(f"tolerance must be positive, got {tolerance}")
    eps_values, min_pts_values, matrix = sweep.outlier_matrix()
    stable: list[tuple[float, SweepCell]] = []
    for row, min_pts in enumerate(min_pts_values):
        for col, eps in enumerate(eps_values):
            count = matrix[row, col]
            if count <= 0:
                continue
            worst = 0.0
            for d_row, d_col in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                n_row, n_col = row + d_row, col + d_col
                if 0 <= n_row < len(min_pts_values) and 0 <= n_col < len(
                    eps_values
                ):
                    neighbor = matrix[n_row, n_col]
                    worst = max(
                        worst, abs(neighbor - count) / max(count, 1)
                    )
            if worst <= tolerance:
                stable.append((worst, sweep.at(eps, min_pts)))
    stable.sort(key=lambda pair: pair[0])
    return [cell for _worst, cell in stable]
