"""Plain-text rendering of result tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}" if abs(value) < 1e5 else f"{value:.4e}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column names.
        rows: Row values (any printable types).
        title: Optional caption printed above the table.

    Returns:
        The formatted multi-line string (no trailing newline).
    """
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            "  ".join(value.ljust(width) for value, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: dict[str, dict[Any, float | None]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one row per x value, one column per series.

    Args:
        x_label: Name of the swept parameter (the figure's x axis).
        series: Mapping from series name (algorithm) to a mapping from
            x value to y value; ``None`` marks DNF/OOM, printed as "-"
            like the paper's missing entries.
        title: Optional caption.
    """
    x_values: list[Any] = []
    for mapping in series.values():
        for x in mapping:
            if x not in x_values:
                x_values.append(x)
    headers = [x_label] + list(series)
    rows = []
    for x in x_values:
        row: list[Any] = [x]
        for name in series:
            value = series[name].get(x)
            row.append("-" if value is None else f"{value:.4f}")
        rows.append(row)
    return format_table(headers, rows, title=title)
