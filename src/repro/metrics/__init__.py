"""Evaluation metrics: outlier-class F1, rankings, set comparisons."""

from repro.metrics.classification import (
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
)
from repro.metrics.comparison import OutlierSetComparison, compare_outlier_sets
from repro.metrics.ranking import (
    average_precision_score,
    precision_at_n,
    roc_auc_score,
)

__all__ = [
    "f1_score",
    "precision_score",
    "recall_score",
    "confusion_counts",
    "OutlierSetComparison",
    "compare_outlier_sets",
    "roc_auc_score",
    "average_precision_score",
    "precision_at_n",
]
