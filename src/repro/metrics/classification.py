"""Binary classification metrics for the outlier class.

The paper scores detectors with the F1 of the *outlier* class
(positive label 1).  All functions take boolean or 0/1 arrays of equal
shape and reduce over all elements.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["confusion_counts", "precision_score", "recall_score", "f1_score"]


def _normalize(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    true = np.asarray(y_true).astype(bool).ravel()
    pred = np.asarray(y_pred).astype(bool).ravel()
    if true.shape != pred.shape:
        raise DataValidationError(
            f"label shapes differ: {true.shape} vs {pred.shape}"
        )
    return true, pred


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[int, int, int, int]:
    """Return (TP, FP, FN, TN) for the positive (outlier) class."""
    true, pred = _normalize(y_true, y_pred)
    tp = int(np.sum(true & pred))
    fp = int(np.sum(~true & pred))
    fn = int(np.sum(true & ~pred))
    tn = int(np.sum(~true & ~pred))
    return tp, fp, fn, tn


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FP); 0.0 when nothing was predicted positive."""
    tp, fp, _fn, _tn = confusion_counts(y_true, y_pred)
    if tp + fp == 0:
        return 0.0
    return tp / (tp + fp)


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FN); 0.0 when there are no true positives to find."""
    tp, _fp, fn, _tn = confusion_counts(y_true, y_pred)
    if tp + fn == 0:
        return 0.0
    return tp / (tp + fn)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall on the outlier class."""
    tp, fp, fn, _tn = confusion_counts(y_true, y_pred)
    denominator = 2 * tp + fp + fn
    if denominator == 0:
        return 0.0
    return 2 * tp / denominator
