"""Outlier-set comparison against an exact reference (Tables IV/V).

The paper evaluates RP-DBSCAN's approximation quality by comparing its
outlier set against DBSCOUT's exact set: true positives are outliers
both agree on, false positives are points RP-DBSCAN flags but the exact
algorithm does not, false negatives are exact outliers RP-DBSCAN
misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.classification import confusion_counts

__all__ = ["OutlierSetComparison", "compare_outlier_sets"]


@dataclass(frozen=True)
class OutlierSetComparison:
    """Counts comparing an approximate outlier set to the exact one.

    Attributes mirror the columns of Tables IV/V: the exact detector's
    outlier count, the approximate detector's count, and TP/FP/FN of
    the approximation with the exact set as ground truth.
    """

    n_exact: int
    n_approx: int
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def false_positive_rate_of_output(self) -> float:
        """FP as a fraction of the approximate output (7-19% in Table IV)."""
        if self.n_approx == 0:
            return 0.0
        return self.false_positives / self.n_approx

    @property
    def false_negative_rate(self) -> float:
        """FN as a fraction of the exact outliers (~0.01% in the paper)."""
        if self.n_exact == 0:
            return 0.0
        return self.false_negatives / self.n_exact

    @property
    def is_superset(self) -> bool:
        """True when the approximation found every exact outlier."""
        return self.false_negatives == 0

    def as_row(self) -> tuple[int, int, int, int, int]:
        """(exact, approx, TP, FP, FN) — one row of Table IV/V."""
        return (
            self.n_exact,
            self.n_approx,
            self.true_positives,
            self.false_positives,
            self.false_negatives,
        )


def compare_outlier_sets(
    exact_mask: np.ndarray, approx_mask: np.ndarray
) -> OutlierSetComparison:
    """Compare an approximate outlier mask against the exact one."""
    tp, fp, fn, _tn = confusion_counts(exact_mask, approx_mask)
    return OutlierSetComparison(
        n_exact=int(np.asarray(exact_mask).astype(bool).sum()),
        n_approx=int(np.asarray(approx_mask).astype(bool).sum()),
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )
