"""Ranking metrics for score-based detectors (LOF, IF, OC-SVM).

The thresholded F1 of Table III depends on the contamination cutoff;
these metrics evaluate the *ranking* a detector induces, independent
of any cutoff: ROC-AUC (probability a random outlier outscores a
random inlier, with tie correction), average precision (area under the
precision-recall curve), and precision@n.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError, ParameterError

__all__ = ["roc_auc_score", "average_precision_score", "precision_at_n"]


def _validate(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(y_true).astype(bool).ravel()
    values = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != values.shape:
        raise DataValidationError(
            f"labels and scores differ in shape: "
            f"{labels.shape} vs {values.shape}"
        )
    if labels.size == 0:
        raise DataValidationError("need at least one sample")
    if not np.isfinite(values).all():
        raise DataValidationError("scores contain NaN or infinity")
    return labels, values


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) form.

    Ties receive half credit (midrank convention), matching the
    standard trapezoidal ROC area.

    Raises:
        DataValidationError: If only one class is present.
    """
    labels, values = _validate(y_true, scores)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataValidationError(
            "ROC-AUC needs both positive and negative samples"
        )
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_values = values[order]
    # Midranks for tied scores.
    index = 0
    position = 1.0
    while index < labels.size:
        tie_end = index
        while (
            tie_end + 1 < labels.size
            and sorted_values[tie_end + 1] == sorted_values[index]
        ):
            tie_end += 1
        midrank = (position + position + (tie_end - index)) / 2.0
        ranks[order[index : tie_end + 1]] = midrank
        position += tie_end - index + 1
        index = tie_end + 1
    rank_sum = ranks[labels].sum()
    return float(
        (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    )


def average_precision_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Average precision: sum of precision@k at each positive hit.

    Ties are broken pessimistically against the positives (tied
    negatives rank first), so the value is a lower bound under ties.
    """
    labels, values = _validate(y_true, scores)
    n_pos = int(labels.sum())
    if n_pos == 0:
        raise DataValidationError(
            "average precision needs at least one positive sample"
        )
    # Sort by descending score; within ties, negatives first.
    order = np.lexsort((~labels, -values))
    hits = labels[order]
    cum_hits = np.cumsum(hits)
    ranks = np.arange(1, labels.size + 1)
    precision_at_hits = cum_hits[hits] / ranks[hits]
    return float(precision_at_hits.sum() / n_pos)


def precision_at_n(
    y_true: np.ndarray, scores: np.ndarray, n: int | None = None
) -> float:
    """Fraction of true outliers among the ``n`` highest-scored points.

    Args:
        y_true: Ground-truth labels (1/True = outlier).
        scores: Anomaly scores, higher = more anomalous.
        n: Cutoff; defaults to the number of true outliers (the
            standard "precision@|O|" protocol, where it equals
            recall@|O|).
    """
    labels, values = _validate(y_true, scores)
    if n is None:
        n = int(labels.sum())
    if n < 1 or n > labels.size:
        raise ParameterError(
            f"n must be in [1, {labels.size}], got {n}"
        )
    top = np.argsort(-values, kind="mergesort")[:n]
    return float(labels[top].mean())
