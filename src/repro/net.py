"""Shared wire-protocol helpers for every TCP subsystem.

Both the serving layer (:mod:`repro.serve`) and the multi-host
SparkLite executor (:mod:`repro.sparklite.netexec`) speak the same
two-layer protocol:

* **Control messages** are JSON objects, one per line (UTF-8, ``\\n``
  terminated) — human-readable, debuggable with ``nc``.
* **Bulk payloads** (point arrays, partition shards, broadcast values)
  travel as length-prefixed binary frames *following* the control
  message that announces them via a ``"frames": N`` field.  Arrays are
  ``.npz``-packed (raw float64 buffers, never JSON-encoded floats);
  everything else is pickled.

Error responses carry ``"ok": false`` with ``"error"`` (message) and
``"error_type"`` (exception class name).  :data:`ERROR_TYPES` maps the
names back onto the library's exception hierarchy so a remote failure
raises the same type as a local one — on the query client
(``ServiceOverloadedError`` → back off and retry) and on the SparkLite
driver (``TaskFailure`` → re-run the task from lineage).
"""

from __future__ import annotations

import asyncio
import io
import json
import pickle
import struct
from typing import Any, Iterable

import numpy as np

from repro.exceptions import (
    ArtifactError,
    BroadcastError,
    DataValidationError,
    DeadlineExceededError,
    EngineError,
    ExecutorMemoryError,
    NotFittedError,
    ParameterError,
    ReproError,
    ServeError,
    ServiceOverloadedError,
    ShuffleError,
    SparkLiteError,
    TaskFailure,
    UnknownDetectorError,
)

try:  # Closures need cloudpickle; plain data does not.
    import cloudpickle as _closure_pickle

    HAVE_CLOUDPICKLE = True
except ImportError:  # pragma: no cover - depends on environment
    _closure_pickle = pickle
    HAVE_CLOUDPICKLE = False

__all__ = [
    "MAX_LINE_BYTES",
    "MAX_FRAME_BYTES",
    "HAVE_CLOUDPICKLE",
    "ERROR_TYPES",
    "encode_line",
    "decode_line",
    "ok_payload",
    "error_payload",
    "exception_from_payload",
    "pack_payload",
    "unpack_payload",
    "pack_closure",
    "unpack_closure",
    "send_message",
    "read_message",
]

#: Refuse control lines larger than this many bytes (64 MiB of JSON is
#: ~2M two-dimensional points — beyond micro-batching territory).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Refuse binary frames larger than this (1 GiB): a corrupted length
#: prefix must not trigger an unbounded allocation.
MAX_FRAME_BYTES = 1024 * 1024 * 1024

#: Length prefix of one binary frame: 8-byte big-endian unsigned.
_LENGTH_PREFIX = struct.Struct(">Q")

#: ``error_type`` names mapped back onto library exceptions.  Shared
#: by the serve client and the netexec driver so both raise the same
#: types their local counterparts would.
ERROR_TYPES: dict[str, type[Exception]] = {
    "ReproError": ReproError,
    "ParameterError": ParameterError,
    "DataValidationError": DataValidationError,
    "EngineError": EngineError,
    "NotFittedError": NotFittedError,
    "ArtifactError": ArtifactError,
    "ServeError": ServeError,
    "ServiceOverloadedError": ServiceOverloadedError,
    "DeadlineExceededError": DeadlineExceededError,
    "UnknownDetectorError": UnknownDetectorError,
    "SparkLiteError": SparkLiteError,
    "ShuffleError": ShuffleError,
    "TaskFailure": TaskFailure,
    "BroadcastError": BroadcastError,
    "ExecutorMemoryError": ExecutorMemoryError,
}


# ----------------------------------------------------------------------
# JSON-lines control layer
# ----------------------------------------------------------------------


def encode_line(payload: dict[str, Any]) -> bytes:
    """One control message as a JSON line (UTF-8, newline-terminated)."""
    return json.dumps(payload).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one control line; raises :class:`ServeError` when invalid."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"malformed JSON request: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServeError("request must be a JSON object")
    return payload


def ok_payload(request_id: Any, **payload: Any) -> dict[str, Any]:
    """A success response, echoing the request id when present."""
    out: dict[str, Any] = {"ok": True}
    if request_id is not None:
        out["id"] = request_id
    out.update(payload)
    return out


def error_payload(
    request_id: Any,
    exc: BaseException,
    default_type: str = "ServeError",
) -> dict[str, Any]:
    """An error response carrying the mappable exception class name.

    Library exceptions travel under their own class name; anything
    else is downgraded to ``default_type`` so the peer never tries to
    reconstruct an arbitrary type.
    """
    out: dict[str, Any] = {
        "ok": False,
        "error": str(exc) or type(exc).__name__,
        "error_type": type(exc).__name__
        if isinstance(exc, ReproError)
        else default_type,
    }
    if request_id is not None:
        out["id"] = request_id
    return out


def exception_from_payload(
    payload: dict[str, Any],
    default: type[Exception] = ServeError,
) -> Exception:
    """Rebuild the library exception an error response describes."""
    error_cls = ERROR_TYPES.get(payload.get("error_type", ""), default)
    return error_cls(payload.get("error", "unknown remote error"))


# ----------------------------------------------------------------------
# Binary payload layer
# ----------------------------------------------------------------------


def _npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _npz_load(frame: bytes) -> dict[str, np.ndarray]:
    with np.load(io.BytesIO(frame), allow_pickle=False) as bundle:
        return {name: bundle[name] for name in bundle.files}


def pack_payload(obj: Any) -> tuple[str, bytes]:
    """Serialize a bulk payload; returns ``(encoding, frame)``.

    Arrays (and dicts/lists of arrays) are ``.npz``-packed so float
    buffers travel raw; anything else is pickled (with cloudpickle
    when available, so closures survive too).
    """
    if isinstance(obj, np.ndarray):
        return "npz", _npz_bytes({"array": obj})
    if (
        isinstance(obj, dict)
        and obj
        and all(isinstance(key, str) for key in obj)
        and all(isinstance(value, np.ndarray) for value in obj.values())
    ):
        return "npz-dict", _npz_bytes(dict(obj))
    if (
        isinstance(obj, (list, tuple))
        and obj
        and all(isinstance(value, np.ndarray) for value in obj)
    ):
        return "npz-list", _npz_bytes(
            {f"a{index}": value for index, value in enumerate(obj)}
        )
    return "pickle", _closure_pickle.dumps(
        obj, protocol=pickle.HIGHEST_PROTOCOL
    )


def unpack_payload(encoding: str, frame: bytes) -> Any:
    """Inverse of :func:`pack_payload`."""
    if encoding == "npz":
        return _npz_load(frame)["array"]
    if encoding == "npz-dict":
        return _npz_load(frame)
    if encoding == "npz-list":
        loaded = _npz_load(frame)
        return [loaded[f"a{index}"] for index in range(len(loaded))]
    if encoding == "pickle":
        return pickle.loads(frame)
    raise ServeError(f"unknown payload encoding {encoding!r}")


def pack_closure(obj: Any) -> bytes:
    """Serialize a closure chain (requires cloudpickle for lambdas)."""
    return _closure_pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_closure(frame: bytes) -> Any:
    """Inverse of :func:`pack_closure`."""
    return pickle.loads(frame)


# ----------------------------------------------------------------------
# Asyncio stream framing
# ----------------------------------------------------------------------


async def send_message(
    writer: asyncio.StreamWriter,
    payload: dict[str, Any],
    frames: Iterable[bytes] = (),
) -> int:
    """Write one control message plus its binary frames; returns bytes.

    When ``frames`` is non-empty the control message is annotated with
    ``"frames": N`` and each frame follows as an 8-byte big-endian
    length prefix plus the raw bytes.
    """
    frames = list(frames)
    if frames:
        payload = {**payload, "frames": len(frames)}
    line = encode_line(payload)
    writer.write(line)
    total = len(line)
    for frame in frames:
        writer.write(_LENGTH_PREFIX.pack(len(frame)))
        writer.write(frame)
        total += _LENGTH_PREFIX.size + len(frame)
    await writer.drain()
    return total


async def read_message(
    reader: asyncio.StreamReader,
) -> tuple[dict[str, Any], list[bytes], int] | None:
    """Read one control message and its frames.

    Returns ``(payload, frames, n_bytes)`` or ``None`` on a clean EOF
    at a message boundary.  A connection dropped mid-message raises
    :class:`ServeError`.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ServeError(
            f"control line exceeds the stream limit: {exc}"
        ) from exc
    if not line:
        return None
    payload = decode_line(line)
    total = len(line)
    frames: list[bytes] = []
    for _ in range(int(payload.get("frames", 0) or 0)):
        try:
            header = await reader.readexactly(_LENGTH_PREFIX.size)
            (length,) = _LENGTH_PREFIX.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise ServeError(
                    f"binary frame of {length} bytes exceeds the "
                    f"{MAX_FRAME_BYTES} byte limit"
                )
            frames.append(await reader.readexactly(length))
        except asyncio.IncompleteReadError as exc:
            raise ServeError(
                "connection closed mid-frame"
            ) from exc
        total += _LENGTH_PREFIX.size + length
    return payload, frames, total
