"""Unified observability: tracing, metrics, and run records.

The paper reads its systems evidence off the Spark web UI (per-stage
times, shuffle volumes, task counts).  This package is the
reproduction's equivalent, shared by both engines and every extension:

* :mod:`repro.obs.trace` — nestable, thread/process-aware span tracer
  with a zero-overhead no-op mode for fine-grained instrumentation;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, one namespaced
  counter schema over the vectorized engine's pruning counters,
  SparkLite's :class:`~repro.sparklite.EngineMetrics`, and the
  process-pool stats;
* :mod:`repro.obs.memory` — peak-RSS and optional ``tracemalloc``
  accounting;
* :mod:`repro.obs.record` — the structured run record (one JSON
  document per ``fit()``) plus pluggable sinks;
* :mod:`repro.obs.report` — span-tree rendering and record diffing
  for regression triage;
* :mod:`repro.obs.names` — the canonical registry of every emitted
  metric family (kind + help text);
* :mod:`repro.obs.expose` — live telemetry exposition: Prometheus
  text / JSON rendering and the ``--metrics-port`` HTTP listener;
* :mod:`repro.obs.top` — the ``repro top`` terminal dashboard.

Typical use::

    import repro.obs as obs

    obs.enable_tracing()                     # fine-grained spans too
    with obs.recording(obs.JsonlSink("runs.jsonl")):
        result = DBSCOUT(eps=0.5, min_pts=10).fit(points)
    print(obs.format_record(result.record))
"""

from repro.obs import names
from repro.obs.expose import (
    MetricsHTTPServer,
    render_json,
    render_prometheus,
    telemetry_text,
)
from repro.obs.metrics import MetricsRegistry, to_builtin
from repro.obs.memory import memory_snapshot, peak_rss_bytes
from repro.obs.record import (
    SCHEMA_VERSION,
    InMemorySink,
    JsonlSink,
    RunRecord,
    RunRecorder,
    add_sink,
    installed_sinks,
    iter_jsonl,
    recording,
    remove_sink,
)
from repro.obs.report import (
    DiffEntry,
    RecordDiff,
    diff_records,
    format_diff,
    format_record,
    format_span_tree,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
    current_tracer,
    disable_profiling,
    disable_tracing,
    enable_profiling,
    enable_tracing,
    profiling_enabled,
    propagation_context,
    span,
    tracing_enabled,
)

__all__ = [
    # trace
    "Tracer",
    "Span",
    "SpanRecord",
    "TraceContext",
    "span",
    "NOOP_SPAN",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "current_tracer",
    "propagation_context",
    # metrics
    "MetricsRegistry",
    "to_builtin",
    # memory
    "peak_rss_bytes",
    "memory_snapshot",
    # record
    "SCHEMA_VERSION",
    "RunRecord",
    "RunRecorder",
    "JsonlSink",
    "InMemorySink",
    "add_sink",
    "remove_sink",
    "installed_sinks",
    "recording",
    "iter_jsonl",
    # report
    "RecordDiff",
    "DiffEntry",
    "diff_records",
    "format_diff",
    "format_record",
    "format_span_tree",
    # names + exposition
    "names",
    "MetricsHTTPServer",
    "render_prometheus",
    "render_json",
    "telemetry_text",
]
