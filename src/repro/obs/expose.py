"""Live telemetry exposition: Prometheus text, JSON, and HTTP.

The long-running components (the serving front-end and the net-executor
driver) describe themselves with a *telemetry snapshot* — a plain dict
of the shape::

    {
        "kind": "serve" | "netdriver",
        "host": "127.0.0.1", "port": 7227,
        "counters": {"serve.requests": 12, ...},      # dotted names
        "workers": [{"name": ..., "inflight": ...}],  # netdriver only
        ...
    }

This module renders such snapshots as Prometheus exposition-format 0.0.4
text (:func:`render_prometheus` / :func:`telemetry_text`) or JSON
(:func:`render_json`), and can serve them to real scrapers over a
stdlib HTTP listener (:class:`MetricsHTTPServer`, the ``--metrics-port``
flag).  ``HELP``/``TYPE`` metadata comes from the canonical family
registry in :mod:`repro.obs.names`.

Naming rules: dotted counter names become ``repro_``-prefixed
underscore names (``serve.requests`` -> ``repro_serve_requests``);
per-worker counters ``worker.<id>.<metric>`` become one family
``repro_worker_<metric>`` with a ``worker="<id>"`` label; the
netdriver's live per-worker state renders as ``repro_net_worker_*``
gauges.  Non-numeric values (e.g. detector name lists) are skipped.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Callable, Iterable, Mapping

from repro.obs import names as _names
from repro.obs.metrics import to_builtin

__all__ = [
    "sanitize_metric_name",
    "escape_label_value",
    "render_prometheus",
    "render_json",
    "telemetry_text",
    "MetricsHTTPServer",
]

#: Prometheus metric names must match this (colons are legal but
#: reserved for recording rules, so we do not emit them).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: Live per-worker state fields exposed as ``repro_net_worker_*``.
_WORKER_FIELDS = (
    "alive",
    "inflight",
    "straggler",
    "tasks",
    "task_seconds",
    "ewma_ms",
    "bytes_out",
    "bytes_in",
)


def sanitize_metric_name(name: str) -> str:
    """Force ``name`` into the Prometheus metric-name charset."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _numeric(value: Any) -> float | int | None:
    """Numeric form of a sample value, or ``None`` to skip it."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return None


def _format_value(value: float | int) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.10g}"


class _Family:
    """One metric family being assembled: metadata plus samples."""

    __slots__ = ("kind", "help", "samples")

    def __init__(self, kind: str, help_text: str) -> None:
        self.kind = kind
        self.help = help_text
        # (rendered label string, value) in insertion order
        self.samples: list[tuple[str, float | int]] = []


def render_prometheus(
    counters: Mapping[str, Any],
    *,
    workers: Iterable[Mapping[str, Any]] = (),
    prefix: str = "repro",
) -> str:
    """Render counters (+ optional live worker state) as 0.0.4 text.

    Args:
        counters: Dotted-name counter mapping (a registry snapshot or
            the ``counters`` field of a telemetry snapshot).
        workers: Optional per-worker state dicts (the ``workers`` field
            of a netdriver snapshot); rendered as labeled gauges.
        prefix: Metric-name prefix (default ``repro``).
    """
    families: dict[str, _Family] = {}

    def add(
        metric: str,
        canonical: str,
        labels: Mapping[str, str],
        value: Any,
        kind: str | None = None,
    ) -> None:
        numeric = _numeric(value)
        if numeric is None:
            return
        fam_kind, fam_help = _names.family(canonical)
        if fam_kind == "info":
            return
        family = families.get(metric)
        if family is None:
            family = _Family(kind or fam_kind, fam_help)
            families[metric] = family
        if labels:
            rendered = (
                "{"
                + ",".join(
                    f'{key}="{escape_label_value(val)}"'
                    for key, val in labels.items()
                )
                + "}"
            )
        else:
            rendered = ""
        family.samples.append((rendered, numeric))

    for name, value in counters.items():
        parts = name.split(".")
        if parts[0] == "worker" and len(parts) >= 3:
            metric_tail = "_".join(parts[2:])
            add(
                f"{prefix}_worker_{sanitize_metric_name(metric_tail)}",
                name,
                {"worker": parts[1]},
                value,
            )
        else:
            add(
                f"{prefix}_{sanitize_metric_name('_'.join(parts))}",
                name,
                {},
                value,
            )
    for worker in workers:
        worker_id = str(worker.get("name", "?"))
        for field in _WORKER_FIELDS:
            if field not in worker:
                continue
            add(
                f"{prefix}_net_worker_{field}",
                f"net_worker.{field}",
                {"worker": worker_id},
                worker[field],
                kind="counter" if field in (
                    "tasks", "task_seconds", "bytes_out", "bytes_in"
                ) else "gauge",
            )

    lines: list[str] = []
    for metric, family in families.items():
        lines.append(f"# HELP {metric} {family.help}")
        kind = family.kind if family.kind in ("counter", "gauge") else (
            "gauge"
        )
        lines.append(f"# TYPE {metric} {kind}")
        for rendered_labels, value in family.samples:
            lines.append(
                f"{metric}{rendered_labels} {_format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def telemetry_text(snapshot: Mapping[str, Any]) -> str:
    """Prometheus text for a full telemetry snapshot dict."""
    return render_prometheus(
        snapshot.get("counters", {}),
        workers=snapshot.get("workers", ()),
    )


def render_json(snapshot: Mapping[str, Any]) -> str:
    """Strict-JSON form of a telemetry snapshot (non-finite -> null)."""
    return json.dumps(
        to_builtin(dict(snapshot), finite=True),
        sort_keys=True,
        allow_nan=False,
    )


class MetricsHTTPServer:
    """Minimal stdlib HTTP listener for real scrapers.

    Serves ``GET /metrics`` (Prometheus text, content type
    ``text/plain; version=0.0.4``) and ``GET /telemetry``
    (``application/json``) from the telemetry snapshot returned by
    ``telemetry_fn`` at request time.  Runs a daemonized
    ``ThreadingHTTPServer`` — pass ``port=0`` to pick a free port and
    read it back from :attr:`port`.
    """

    def __init__(
        self,
        telemetry_fn: Callable[[], Mapping[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = telemetry_text(telemetry_fn()).encode()
                        content_type = "text/plain; version=0.0.4"
                    elif path in ("/telemetry", "/metrics.json"):
                        body = render_json(telemetry_fn()).encode()
                        content_type = "application/json"
                    else:
                        self.send_error(404, "unknown path")
                        return
                except Exception as exc:  # noqa: BLE001 - boundary
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # keep scraper traffic out of stderr

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        """Stop the listener (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"MetricsHTTPServer({self.host}:{self.port})"
