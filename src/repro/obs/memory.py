"""Process memory accounting for run records.

Two tiers, matching the tracer's:

* :func:`peak_rss_bytes` — the high-water resident set size of the
  process, read from ``getrusage`` (no dependencies, effectively
  free).  Every run record carries it.
* ``tracemalloc`` deltas — per-span Python allocation accounting,
  opt-in via :func:`repro.obs.trace.enable_profiling` because the
  interpreter hooks are expensive.
"""

from __future__ import annotations

import sys

__all__ = ["peak_rss_bytes", "memory_snapshot"]


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process in bytes.

    Returns ``None`` on platforms without ``resource`` (Windows).
    Note the value is a process-lifetime high-water mark, not a
    per-run delta.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(peak)
    return int(peak) * 1024


def memory_snapshot() -> dict[str, int]:
    """Current memory facts for a run record (JSON-safe dict).

    Always includes ``peak_rss_bytes`` when measurable; adds
    ``tracemalloc_current_bytes`` / ``tracemalloc_peak_bytes`` when
    ``tracemalloc`` is tracing (profiling mode).
    """
    out: dict[str, int] = {}
    peak = peak_rss_bytes()
    if peak is not None:
        out["peak_rss_bytes"] = peak
    import tracemalloc

    if tracemalloc.is_tracing():
        current, peak_traced = tracemalloc.get_traced_memory()
        out["tracemalloc_current_bytes"] = int(current)
        out["tracemalloc_peak_bytes"] = int(peak_traced)
    return out
