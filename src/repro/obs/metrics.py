"""Namespaced counter registry unifying every engine's statistics.

Counters from the vectorized engine (pruning/distance budgets), the
SparkLite substrate (shuffle/task counts), and the process pool all
land in one :class:`MetricsRegistry` under dotted names:

* ``engine.*`` — per-run detector counters
  (``engine.distance_computations``, ``engine.pruned_cells``, ...);
* ``sparklite.*`` — substrate counters for the run
  (``sparklite.records_shuffled``, ``sparklite.tasks_executed``, ...);
* ``pool.*`` — multi-core sharding stats (``pool.dispatches``,
  ``pool.shards``).

The registry is thread-safe and stores plain Python ints/floats only,
so a snapshot is always ``json.dumps``-able.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Mapping

import numpy as np

__all__ = ["MetricsRegistry", "to_builtin"]


def to_builtin(value: Any, *, finite: bool = False) -> Any:
    """Recursively convert NumPy scalars/arrays to JSON-safe builtins.

    Containers keep their type (tuples stay tuples — ``json`` encodes
    them as arrays); unknown objects pass through unchanged.

    With ``finite=True``, non-finite floats (``nan``/``inf``, Python or
    NumPy, including inside arrays) become ``None`` so the result
    survives strict JSON encoders (``allow_nan=False``) and non-Python
    JSON parsers.  Leave it off for arithmetic paths where ``nan``
    must propagate.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if finite and not math.isfinite(value):
            return None
        return value
    if isinstance(value, np.ndarray):
        return to_builtin(value.tolist(), finite=finite)
    if isinstance(value, dict):
        return {
            key: to_builtin(item, finite=finite)
            for key, item in value.items()
        }
    if isinstance(value, tuple):
        return tuple(to_builtin(item, finite=finite) for item in value)
    if isinstance(value, list):
        return [to_builtin(item, finite=finite) for item in value]
    return value


class MetricsRegistry:
    """Thread-safe mapping of dotted counter names to numeric values."""

    def __init__(self) -> None:
        self._values: dict[str, int | float] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, delta: int | float = 1) -> None:
        """Add ``delta`` to counter ``name`` (created at zero)."""
        delta = to_builtin(delta)
        with self._lock:
            self._values[name] = self._values.get(name, 0) + delta

    def set(self, name: str, value: int | float) -> None:
        """Overwrite counter ``name``."""
        with self._lock:
            self._values[name] = to_builtin(value)

    def get(self, name: str, default: int | float = 0) -> int | float:
        """Current value of ``name`` (``default`` when absent)."""
        with self._lock:
            return self._values.get(name, default)

    def merge(
        self,
        counters: Mapping[str, int | float],
        namespace: str | None = None,
    ) -> None:
        """Accumulate a counter mapping into the registry.

        Keys that already contain a dot are taken as fully qualified
        (e.g. a ``pool.shards`` entry inside an engine counter dict);
        bare keys get the ``namespace`` prefix.
        """
        for key, value in counters.items():
            if namespace and "." not in key:
                key = f"{namespace}.{key}"
            self.increment(key, value)

    def snapshot(self) -> dict[str, int | float]:
        """Sorted plain-dict copy of every counter."""
        with self._lock:
            return {key: self._values[key] for key in sorted(self._values)}

    def namespace(self, prefix: str) -> dict[str, int | float]:
        """Counters under ``prefix.``, with the prefix stripped."""
        prefix = prefix.rstrip(".") + "."
        with self._lock:
            return {
                key[len(prefix) :]: value
                for key, value in sorted(self._values.items())
                if key.startswith(prefix)
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.snapshot()!r})"
