"""Canonical registry of every metric family the library emits.

Each counter that can appear in a run record, an
:class:`~repro.obs.MetricsRegistry` snapshot, or the telemetry
exposition plane (:mod:`repro.obs.expose`) is declared here with its
kind (``counter`` — monotonically accumulated; ``gauge`` — last-value;
``info`` — non-numeric, excluded from Prometheus text) and a one-line
help string.  The registry serves two purposes:

* the exposition renderer reads ``HELP``/``TYPE`` metadata from it, so
  ``GET /metrics`` output is self-describing;
* :func:`undeclared` lets a test fail the suite when a new counter is
  emitted without being declared, so the exposition surface cannot
  silently drift.

Per-worker counters are namespaced ``worker.<id>.<metric>`` with an
arbitrary worker id in the middle; :func:`canonical` collapses the id
segment so those names resolve to one declared family.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "FAMILIES",
    "canonical",
    "family",
    "is_declared",
    "undeclared",
]

#: Canonical metric name -> ``(kind, help)``.  Kinds: ``counter``,
#: ``gauge``, ``info`` (non-numeric; skipped by the Prometheus text).
FAMILIES: dict[str, tuple[str, str]] = {
    # -- engine.* : per-run detector work counters ---------------------
    "engine.distance_computations": (
        "counter", "point pairs whose exact distance was evaluated"),
    "engine.pruned_cells": (
        "counter", "neighbor cells skipped by geometric pruning"),
    "engine.cells_no_candidates": (
        "counter", "cells settled with no candidate neighbors to test"),
    "engine.cells_settled_core": (
        "counter", "cells settled all-core by the Lemma 1 shortcut"),
    "engine.cells_settled_covered": (
        "counter", "cells settled by covered-cell population counting"),
    "engine.pairs_self_covered": (
        "counter", "same-cell point pairs counted as near via Lemma 1"),
    "engine.pairs_skipped_covered": (
        "counter", "pairs skipped because the cell pair is covered"),
    "engine.pairs_skipped_excluded": (
        "counter", "pairs skipped because the cell pair is excluded"),
    # -- approx.* : the approximate quality tier -----------------------
    "approx.sampled_points": (
        "gauge", "points in the density-check sample (DBSCAN++ subset)"),
    "approx.rp_cell_pairs_pruned": (
        "counter", "cell pairs dropped by the random-projection prefilter"),
    "approx.rp_pairs_pruned": (
        "counter", "point pairs dropped by the random-projection prefilter"),
    "approx.flagged_outliers": (
        "gauge", "outliers flagged by the approximate run"),
    "approx.exact_outliers": (
        "gauge", "audited exact outliers inside the flagged set"),
    "approx.false_outliers": (
        "gauge", "flagged points the audit proved are exact inliers"),
    "approx.precision": (
        "gauge", "outlier precision of the run vs the exact labels"),
    "approx.recall": (
        "gauge", "outlier recall of the run vs the exact labels "
                 "(1.0 by construction)"),
    "approx.f1": (
        "gauge", "outlier F1 of the run vs the exact labels"),
    "approx.audit_candidate_points": (
        "gauge", "ring members whose exact core status the audit computed"),
    "approx.audit_distance_computations": (
        "counter", "distances evaluated by the exactness audit"),
    # -- kernel.* : distance-kernel tier -------------------------------
    "kernel.fallback": (
        "counter", "compiled-kernel builds that fell back to NumPy"),
    # -- planner.* / tree.* : cell adjacency planning ------------------
    "planner.cell_pairs_examined": (
        "counter", "cell pairs probed while building adjacency"),
    "tree.nodes": (
        "gauge", "nodes in the grid-tree cell index"),
    "tree.node_visits": (
        "counter", "grid-tree nodes visited during adjacency queries"),
    "tree.subtrees_pruned": (
        "counter", "grid-tree subtrees pruned by bounding-box distance"),
    "tree.leaf_cell_tests": (
        "counter", "leaf cells distance-tested by grid-tree queries"),
    # -- pool.* : multi-core sharding ----------------------------------
    "pool.dispatches": (
        "counter", "shard batches dispatched to the process pool"),
    "pool.shards": (
        "counter", "shards executed by pool workers"),
    "pool.shared_bytes": (
        "counter", "bytes placed in shared memory for pool workers"),
    # -- sparklite.* : substrate counters ------------------------------
    "sparklite.tasks_executed": (
        "counter", "partition-level tasks computed"),
    "sparklite.shuffles": (
        "counter", "shuffle stages materialized"),
    "sparklite.records_shuffled": (
        "counter", "records that crossed a shuffle boundary"),
    "sparklite.broadcasts": (
        "counter", "broadcast variables created"),
    "sparklite.collects": (
        "counter", "actions that returned data to the driver"),
    "sparklite.task_retries": (
        "counter", "task attempts re-executed after a TaskFailure"),
    # -- sparklite.net.* : the wire ------------------------------------
    "sparklite.net.bytes_out": (
        "counter", "bytes sent by the net driver"),
    "sparklite.net.bytes_in": (
        "counter", "bytes received by the net driver"),
    "sparklite.net.tasks": (
        "counter", "tasks shipped to remote workers"),
    "sparklite.net.broadcast_bytes_out": (
        "counter", "broadcast replica bytes shipped (once per worker)"),
    "sparklite.net.worker_failures": (
        "counter", "workers declared lost (disconnect or timeout)"),
    "sparklite.net.lineage_reruns": (
        "counter", "in-flight tasks re-run after a worker loss"),
    "sparklite.net.task_seconds": (
        "counter", "cumulative remote task round-trip seconds"),
    "sparklite.net.straggler_suspected": (
        "counter", "straggler suspicions raised by the EWMA detector"),
    # -- incremental.* : exact streaming maintenance -------------------
    "incremental.inserts": (
        "counter", "insert batches accepted by the incremental engine"),
    "incremental.points_inserted": (
        "counter", "points inserted into the incremental engine"),
    "incremental.removes": (
        "counter", "remove calls applied by the incremental engine"),
    "incremental.points_removed": (
        "counter", "points logically deleted from the incremental engine"),
    "incremental.detects": (
        "counter", "detect() refreshes of the incremental result"),
    "incremental.core_cells_recomputed": (
        "counter", "cells whose core status was re-evaluated"),
    "incremental.outlier_cells_recomputed": (
        "counter", "cells whose outlier status was re-evaluated"),
    "incremental.window_points": (
        "gauge", "active (non-removed) points in the incremental engine"),
    "incremental.dirty_cells": (
        "gauge", "cells pending re-evaluation at the last detect"),
    # -- stream.* : live streaming detectors ---------------------------
    "stream.batches": ("counter", "ingest batches accepted"),
    "stream.points_ingested": ("counter", "points ingested into the window"),
    "stream.points_evicted": (
        "counter", "points evicted by the sliding-window policy"),
    "stream.window_points": ("gauge", "active points in the sliding window"),
    "stream.snapshots": ("counter", "point-in-time CoreModel snapshots built"),
    "stream.snapshot_age_s": (
        "gauge", "seconds since the served model was snapshotted"),
    "stream.snapshot_latency_ms": (
        "gauge", "latency of the last snapshot build (ms)"),
    "stream.swaps": ("counter", "snapshots hot-swapped into the service"),
    "stream.ingest_lag_ms": (
        "gauge", "processing latency of the last ingest batch (ms)"),
    "stream.drift": (
        "gauge", "label-change fraction between consecutive snapshots"),
    # -- serve.* : query service ---------------------------------------
    "serve.requests": ("counter", "classify requests accepted"),
    "serve.batches": ("counter", "micro-batches served"),
    "serve.rows_submitted": ("counter", "points submitted for classify"),
    "serve.rows_classified": ("counter", "points classified"),
    "serve.outliers_found": ("counter", "outlier labels returned"),
    "serve.queue_depth": ("gauge", "requests currently queued"),
    "serve.queue_depth_peak": ("gauge", "maximum observed queue depth"),
    "serve.last_batch_rows": ("gauge", "rows in the last served batch"),
    "serve.max_batch_rows": ("gauge", "largest batch served, in rows"),
    "serve.models_registered": ("gauge", "detectors currently registered"),
    "serve.models_evicted": ("counter", "detectors evicted by the LRU"),
    "serve.rejected_overload": (
        "counter", "submits rejected by backpressure"),
    "serve.swap.total": (
        "counter", "model versions hot-swapped into the registry"),
    "serve.swap.reregister": (
        "counter", "register() replacements routed through the swap path"),
    "serve.swap.latency_ms": (
        "gauge", "install latency of the last hot swap (ms)"),
    "serve.swap.latency_max_ms": (
        "gauge", "largest observed hot-swap install latency (ms)"),
    "serve.swap.dims_mismatch": (
        "counter",
        "queued requests failed because a swap changed dimensionality"),
    "serve.versions": ("info", "per-detector installed model versions"),
    "serve.deadline_exceeded": (
        "counter", "requests that missed their deadline"),
    "serve.latency_p50_ms": ("gauge", "p50 request latency (ms)"),
    "serve.latency_p90_ms": ("gauge", "p90 request latency (ms)"),
    "serve.latency_p99_ms": ("gauge", "p99 request latency (ms)"),
    "serve.latency_mean_ms": ("gauge", "mean request latency (ms)"),
    "serve.models": ("info", "registered detector names"),
    # classify counters merged into serve batch records:
    "serve.distance_computations": (
        "counter", "point pairs distance-tested while classifying"),
    "serve.cells_settled_core": (
        "counter", "query cells settled via the core-cell shortcut"),
    "serve.cells_no_candidates": (
        "counter", "query cells with no candidate core neighbors"),
    # -- worker.* : telemetry harvested from remote workers ------------
    "worker.tasks": ("counter", "tasks executed on workers (total)"),
    "worker.records_in": (
        "counter", "records decoded by workers (total)"),
    "worker.records_out": (
        "counter", "records produced by workers (total)"),
    "worker.bytes_in": (
        "counter", "task input frame bytes decoded by workers (total)"),
    "worker.bytes_out": (
        "counter", "result frame bytes encoded by workers (total)"),
    "worker.task_seconds": (
        "counter", "cumulative in-worker task seconds (total)"),
    # -- net_worker.* : the driver's live view of each worker ----------
    "net_worker.alive": ("gauge", "1 while the worker is registered"),
    "net_worker.inflight": ("gauge", "tasks in flight on the worker"),
    "net_worker.straggler": (
        "gauge", "1 while the worker is a suspected straggler"),
    "net_worker.tasks": (
        "counter", "tasks the driver completed on the worker"),
    "net_worker.task_seconds": (
        "counter", "round-trip seconds of the worker's tasks"),
    "net_worker.ewma_ms": (
        "gauge", "EWMA of the worker's task round-trip (ms)"),
    "net_worker.bytes_out": (
        "counter", "bytes the driver sent to the worker"),
    "net_worker.bytes_in": (
        "counter", "bytes the driver received from the worker"),
    "worker.<id>.tasks": ("counter", "tasks executed on one worker"),
    "worker.<id>.records_in": (
        "counter", "records decoded by one worker"),
    "worker.<id>.records_out": (
        "counter", "records produced by one worker"),
    "worker.<id>.bytes_in": (
        "counter", "task input frame bytes decoded by one worker"),
    "worker.<id>.bytes_out": (
        "counter", "result frame bytes encoded by one worker"),
    "worker.<id>.task_seconds": (
        "counter", "cumulative in-worker task seconds on one worker"),
}


def canonical(name: str) -> str:
    """Collapse instance segments to the declared family name.

    ``worker.loopback-0.tasks`` -> ``worker.<id>.tasks``; everything
    else is already canonical.
    """
    parts = name.split(".")
    if parts[0] == "worker" and len(parts) >= 3:
        return "worker.<id>." + ".".join(parts[2:])
    return name


def family(name: str) -> tuple[str, str]:
    """``(kind, help)`` for a metric name (canonicalized first).

    Unknown names resolve to ``("gauge", "undeclared metric")`` so the
    exposition renderer always has metadata; declare real families in
    :data:`FAMILIES` instead of relying on this fallback.
    """
    return FAMILIES.get(canonical(name), ("gauge", "undeclared metric"))


def is_declared(name: str) -> bool:
    """Whether ``name`` resolves to a declared family."""
    return canonical(name) in FAMILIES


def undeclared(names: Iterable[str]) -> list[str]:
    """The subset of ``names`` not covered by :data:`FAMILIES`.

    Feed this every counter name a test run produced; a non-empty
    result means someone added a metric without declaring it.
    """
    return sorted({name for name in names if not is_declared(name)})
