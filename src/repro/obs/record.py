"""Structured run records: one JSON document per detector fit.

A :class:`RunRecord` is the machine-readable account of a single
``detect()``/``fit()`` call — parameters, dataset shape, per-phase
spans, unified counters, memory facts, and library versions — the
reproduction's stand-in for reading evidence off the Spark web UI.

Engines produce records through a :class:`RunRecorder`: open phase
spans on it, merge counters into its registry, then ``finish()``.
Finished records go to every installed sink (:class:`JsonlSink` for
files, :class:`InMemorySink` for harnesses); install one globally with
:func:`add_sink` / :func:`remove_sink` or scoped with
:func:`recording`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.obs.memory import memory_snapshot
from repro.obs.metrics import MetricsRegistry, to_builtin
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "RunRecorder",
    "JsonlSink",
    "InMemorySink",
    "add_sink",
    "remove_sink",
    "recording",
    "installed_sinks",
]

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1

_SINK_LOCK = threading.Lock()
_SINKS: list[Any] = []


def library_versions() -> dict[str, str]:
    """Versions of the moving parts, for cross-run comparability."""
    import platform

    import numpy

    versions = {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }
    try:
        from repro import __version__

        versions["repro"] = __version__
    except ImportError:  # pragma: no cover - partial-import edge
        pass
    return versions


@dataclass(frozen=True)
class RunRecord:
    """One detector run, fully described.

    Attributes:
        schema_version: Layout version (:data:`SCHEMA_VERSION`).
        run_id: Random hex id unique to this run.
        created_at: Unix timestamp the run finished at.
        engine: Engine/detector name (``"vectorized"``, ...).
        params: Detector parameters (``eps``, ``min_pts``, ...).
        dataset: Input shape facts (``n_points``, ``n_dims``).
        spans: Closed span dicts (see
            :meth:`repro.obs.trace.SpanRecord.to_dict`).
        counters: Namespaced counter snapshot (``engine.*``,
            ``sparklite.*``, ``pool.*``).
        context: Engine configuration and derived structure facts
            (``n_jobs``, ``join_strategy``, ``n_cells``, ...).
        memory: Memory facts (``peak_rss_bytes``, optional
            ``tracemalloc_*`` when profiling).
        versions: Library versions (python/numpy/repro).
    """

    engine: str
    params: dict[str, Any] = field(default_factory=dict)
    dataset: dict[str, int] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    counters: dict[str, int | float] = field(default_factory=dict)
    context: dict[str, Any] = field(default_factory=dict)
    memory: dict[str, int] = field(default_factory=dict)
    versions: dict[str, str] = field(default_factory=dict)
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:16])
    created_at: float = field(default_factory=time.time)
    schema_version: int = SCHEMA_VERSION

    # -- views ---------------------------------------------------------

    def phase_durations(self) -> dict[str, float]:
        """Duration per top-level span name, in first-seen order."""
        out: dict[str, float] = {}
        for payload in self.spans:
            if payload.get("depth", 0) == 0:
                name = payload["name"]
                out[name] = out.get(name, 0.0) + payload.get(
                    "duration_s", 0.0
                )
        return out

    def timing_breakdown(self):
        """The record's top-level spans as a ``TimingBreakdown`` view."""
        from repro.types import TimingBreakdown

        return TimingBreakdown(self.phase_durations())

    def flat_stats(self) -> dict[str, Any]:
        """Legacy flat ``DetectionResult.stats`` view over the record.

        Strips the ``engine.`` and ``sparklite.`` counter namespaces
        (their bare names are the long-standing stats keys) and keeps
        other namespaces (``pool.*``) fully qualified; configuration
        context is merged in alongside.
        """
        out: dict[str, Any] = dict(self.context)
        for name, value in self.counters.items():
            for prefix in ("engine.", "sparklite."):
                if name.startswith(prefix):
                    out[name[len(prefix) :]] = value
                    break
            else:
                out[name] = value
        return out

    def span_records(self) -> list[SpanRecord]:
        """Spans rehydrated as :class:`SpanRecord` objects."""
        return [SpanRecord.from_dict(payload) for payload in self.spans]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-builtins dict form (stable key order, JSON-safe).

        Non-finite floats (``nan``/``inf``) anywhere in the payload are
        mapped to ``None`` so the record survives strict JSON encoders
        and non-Python parsers.
        """
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "engine": self.engine,
            "params": to_builtin(dict(self.params), finite=True),
            "dataset": to_builtin(dict(self.dataset), finite=True),
            "spans": [
                to_builtin(dict(payload), finite=True)
                for payload in self.spans
            ],
            "counters": to_builtin(dict(self.counters), finite=True),
            "context": to_builtin(dict(self.context), finite=True),
            "memory": to_builtin(dict(self.memory), finite=True),
            "versions": dict(self.versions),
        }

    def to_json(self) -> str:
        """One-line JSON form (the JSONL record)."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict` (tolerates missing optionals)."""
        return cls(
            engine=payload["engine"],
            params=dict(payload.get("params", {})),
            dataset=dict(payload.get("dataset", {})),
            spans=[dict(s) for s in payload.get("spans", [])],
            counters=dict(payload.get("counters", {})),
            context=dict(payload.get("context", {})),
            memory=dict(payload.get("memory", {})),
            versions=dict(payload.get("versions", {})),
            run_id=payload.get("run_id", "unknown"),
            created_at=payload.get("created_at", 0.0),
            schema_version=payload.get("schema_version", SCHEMA_VERSION),
        )


class RunRecorder:
    """Builder for one run's record: spans + counters + context.

    Engines hold one per ``detect()`` call:

    1. ``with recorder.span("grid"): ...`` for each phase (always
       recorded — these become the per-phase breakdown);
    2. ``recorder.metrics.merge(counters, namespace="engine")`` once
       counters are final;
    3. ``record = recorder.finish(n_points=..., n_dims=...)``.

    ``recorder.activate()`` additionally routes fine-grained
    module-level spans (see :func:`repro.obs.trace.span`) into the
    same record while tracing is enabled.
    """

    def __init__(
        self,
        engine: str,
        params: Mapping[str, Any] | None = None,
        context: Mapping[str, Any] | None = None,
        profile_memory: bool | None = None,
    ) -> None:
        self.engine = engine
        self.params = dict(params or {})
        self.context = dict(context or {})
        self.tracer = Tracer(profile_memory=profile_memory)
        self.metrics = MetricsRegistry()
        self._finished: RunRecord | None = None

    def span(self, name: str, **attrs: Any):
        """Open a phase span on this run's tracer."""
        return self.tracer.span(name, **attrs)

    def activate(self):
        """Route fine-grained library spans into this run."""
        return self.tracer.activate()

    def add_context(self, **facts: Any) -> None:
        """Attach configuration/structure facts discovered mid-run."""
        self.context.update(facts)

    def finish(
        self, n_points: int, n_dims: int | None = None
    ) -> RunRecord:
        """Seal the record, emit it to installed sinks, and return it."""
        dataset: dict[str, int] = {"n_points": int(n_points)}
        if n_dims is not None:
            dataset["n_dims"] = int(n_dims)
        record = RunRecord(
            engine=self.engine,
            params=to_builtin(self.params),
            dataset=dataset,
            spans=[span.to_dict() for span in self.tracer.spans()],
            counters=self.metrics.snapshot(),
            context=to_builtin(self.context),
            memory=memory_snapshot(),
            versions=library_versions(),
        )
        self._finished = record
        for sink in installed_sinks():
            sink.write(record)
        return record


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class JsonlSink:
    """Append each finished record as one JSON line to a file."""

    def __init__(self, path) -> None:
        import pathlib

        self.path = pathlib.Path(path)
        self._lock = threading.Lock()

    def write(self, record: RunRecord) -> None:
        line = record.to_json() + os.linesep
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)

    @staticmethod
    def load(path) -> list[RunRecord]:
        """Read every record of a JSONL file written by this sink."""
        records: list[RunRecord] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(RunRecord.from_dict(json.loads(line)))
        return records


class InMemorySink:
    """Collect finished records in a list (for tests and harnesses)."""

    def __init__(self) -> None:
        self.records: list[RunRecord] = []
        self._lock = threading.Lock()

    def write(self, record: RunRecord) -> None:
        with self._lock:
            self.records.append(record)


def add_sink(sink: Any) -> None:
    """Install a sink; every subsequent finished record is written."""
    with _SINK_LOCK:
        _SINKS.append(sink)


def remove_sink(sink: Any) -> None:
    """Uninstall a sink installed with :func:`add_sink`."""
    with _SINK_LOCK:
        try:
            _SINKS.remove(sink)
        except ValueError:
            pass


def installed_sinks() -> list[Any]:
    """Currently installed sinks (copy)."""
    with _SINK_LOCK:
        return list(_SINKS)


class recording:
    """Scoped sink installation::

        with obs.recording(obs.JsonlSink("runs.jsonl")) as sink:
            DBSCOUT(eps, min_pts).fit(points)
    """

    def __init__(self, sink: Any | None = None) -> None:
        self.sink = sink if sink is not None else InMemorySink()

    def __enter__(self) -> Any:
        add_sink(self.sink)
        return self.sink

    def __exit__(self, *exc_info: object) -> bool:
        remove_sink(self.sink)
        return False


def iter_jsonl(path) -> Iterator[RunRecord]:
    """Stream records from a JSONL file without loading them all."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield RunRecord.from_dict(json.loads(line))
