"""Human-readable rendering and regression diffing of run records.

``format_span_tree`` renders one record's spans as an indented tree
(the CLI's ``--trace`` output); ``diff_records`` compares two records
phase-by-phase and counter-by-counter, which is what
``benchmarks/check_regression.py`` enforces thresholds on.

Distributed runs graft worker-side spans into the record (tagged with
``host``/``worker_id``) and harvest per-worker ``worker.*`` counters.
The tree rendering shows the provenance as an ``@worker (host)``
suffix, and the default diff skips counters that vary run-to-run by
construction — the ``worker.*`` namespace (worker names embed pids)
and wall-clock-valued ``*_seconds`` counters — so a distributed run is
not flagged as a regression of itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.record import RunRecord
from repro.obs.trace import iter_tree

__all__ = [
    "format_span_tree",
    "format_record",
    "diff_records",
    "format_diff",
    "RecordDiff",
    "DiffEntry",
    "DEFAULT_DIFF_EXCLUDED_PREFIXES",
]

#: Counter namespaces skipped by the default (counters=None) diff:
#: per-worker harvests carry worker names that differ between runs.
DEFAULT_DIFF_EXCLUDED_PREFIXES = ("worker.",)


def _diff_excluded(name: str) -> bool:
    """Whether a counter is nondeterministic by construction."""
    if name.startswith(DEFAULT_DIFF_EXCLUDED_PREFIXES):
        return True
    if name.endswith("_seconds"):  # wall clock, not work
        return True
    # Straggler suspicion depends on scheduling jitter, never on the
    # amount of work done.
    return name.endswith(".straggler_suspected")


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def format_span_tree(record: RunRecord) -> str:
    """Indented tree of the record's spans with durations."""
    lines = [
        f"run {record.run_id} engine={record.engine} "
        f"n_points={record.dataset.get('n_points', '?')}"
    ]
    for depth, span in iter_tree(record.span_records()):
        attrs = dict(span.attrs)
        worker_id = attrs.pop("worker_id", None)
        host = attrs.pop("host", None)
        provenance = ""
        if worker_id is not None:
            provenance = f" @{worker_id}"
            if host:
                provenance += f" ({host})"
        elif host:  # pragma: no cover - host without worker id
            provenance = f" @{host}"
        extras = []
        if attrs:
            extras.append(
                " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            )
        if span.alloc_bytes is not None:
            extras.append(f"alloc={_fmt_bytes(span.alloc_bytes)}")
        if span.error is not None:
            extras.append(f"error={span.error}")
        suffix = f"  [{' '.join(extras)}]" if extras else ""
        lines.append(
            f"{'  ' * (depth + 1)}{span.name}: "
            f"{span.duration_s * 1000.0:.2f}ms{provenance}{suffix}"
        )
    return "\n".join(lines)


def format_record(record: RunRecord) -> str:
    """Span tree plus counters and memory, for terminal output."""
    lines = [format_span_tree(record)]
    for name, value in record.counters.items():
        lines.append(f"  {name}: {value}")
    for name, value in record.memory.items():
        if name.endswith("_bytes"):
            lines.append(f"  memory.{name}: {_fmt_bytes(value)}")
        else:  # pragma: no cover - no such keys today
            lines.append(f"  memory.{name}: {value}")
    return "\n".join(lines)


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity between a baseline and a candidate run."""

    name: str
    kind: str  # "phase" | "counter" | "total"
    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def ratio(self) -> float:
        """candidate / baseline; ``inf`` when appearing from zero."""
        if self.baseline == 0:
            return float("inf") if self.candidate else 1.0
        return self.candidate / self.baseline

    def regression_fraction(self) -> float:
        """Fractional increase over the baseline (0 when improved)."""
        if self.baseline == 0:
            return float("inf") if self.candidate > 0 else 0.0
        return max(0.0, (self.candidate - self.baseline) / self.baseline)


@dataclass(frozen=True)
class RecordDiff:
    """Structured comparison of two run records."""

    phases: list[DiffEntry] = field(default_factory=list)
    counters: list[DiffEntry] = field(default_factory=list)
    total: DiffEntry | None = None

    def entries(self) -> list[DiffEntry]:
        out = list(self.phases) + list(self.counters)
        if self.total is not None:
            out.append(self.total)
        return out

    def regressions(
        self,
        max_wall_fraction: float,
        max_counter_fraction: float,
    ) -> list[DiffEntry]:
        """Entries whose growth exceeds the given thresholds."""
        flagged = [
            entry
            for entry in self.phases
            + ([self.total] if self.total is not None else [])
            if entry.regression_fraction() > max_wall_fraction
        ]
        flagged.extend(
            entry
            for entry in self.counters
            if entry.regression_fraction() > max_counter_fraction
        )
        return flagged


def diff_records(
    baseline: RunRecord,
    candidate: RunRecord,
    counters: Iterable[str] | None = None,
) -> RecordDiff:
    """Compare two run records phase-by-phase and counter-by-counter.

    Args:
        baseline: The reference run.
        candidate: The run under scrutiny.
        counters: Optional subset of counter names to compare (full
            dotted names); default: every counter present in either
            record except the nondeterministic-by-construction ones
            (the ``worker.*`` namespace, ``*_seconds`` wall totals,
            and straggler suspicions).  An explicit list is compared
            verbatim, exclusions and all.

    Returns:
        A :class:`RecordDiff`; phases/counters missing on one side are
        compared against zero.
    """
    base_phases = baseline.phase_durations()
    cand_phases = candidate.phase_durations()
    phase_names = list(base_phases) + [
        name for name in cand_phases if name not in base_phases
    ]
    phases = [
        DiffEntry(
            name=name,
            kind="phase",
            baseline=base_phases.get(name, 0.0),
            candidate=cand_phases.get(name, 0.0),
        )
        for name in phase_names
    ]
    if counters is None:
        names = [
            name
            for name in sorted(
                set(baseline.counters) | set(candidate.counters)
            )
            if not _diff_excluded(name)
        ]
    else:
        names = list(counters)
    counter_entries = [
        DiffEntry(
            name=name,
            kind="counter",
            baseline=float(baseline.counters.get(name, 0)),
            candidate=float(candidate.counters.get(name, 0)),
        )
        for name in names
    ]
    total = DiffEntry(
        name="total_wall",
        kind="total",
        baseline=sum(base_phases.values()),
        candidate=sum(cand_phases.values()),
    )
    return RecordDiff(phases=phases, counters=counter_entries, total=total)


def format_diff(diff: RecordDiff) -> str:
    """Plain-text table of a :class:`RecordDiff`."""
    rows = []
    for entry in diff.entries():
        if entry.kind in ("phase", "total"):
            base = f"{entry.baseline * 1000.0:.2f}ms"
            cand = f"{entry.candidate * 1000.0:.2f}ms"
        else:
            base = f"{entry.baseline:g}"
            cand = f"{entry.candidate:g}"
        ratio = (
            "new" if entry.ratio == float("inf") else f"{entry.ratio:.3f}x"
        )
        rows.append((entry.name, entry.kind, base, cand, ratio))
    widths = [
        max(len(str(row[col])) for row in rows + [_HEADER])
        for col in range(len(_HEADER))
    ]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        for row in [_HEADER] + rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


_HEADER = ("name", "kind", "baseline", "candidate", "ratio")
