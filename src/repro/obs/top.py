"""Terminal telemetry dashboard: the engine behind ``repro top``.

Both long-running components — an :class:`~repro.serve.OutlierServer`
and a :class:`~repro.sparklite.netexec.NetDriver` — answer a
``{"op": "telemetry"}`` JSON-lines control message on their normal
listening port.  :func:`fetch_telemetry` performs one such call over a
plain blocking socket; :func:`render_dashboard` turns the snapshot
(plus the previous one, for rates) into a fixed-width text panel with
per-worker rows, straggler flags, and serve latency percentiles.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.net import encode_line, exception_from_payload

__all__ = ["fetch_telemetry", "render_dashboard"]


def fetch_telemetry(
    host: str, port: int, timeout: float | None = 10.0
) -> dict[str, Any]:
    """One blocking ``telemetry`` call; returns the snapshot dict."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(encode_line({"op": "telemetry", "id": 1}))
            reader = sock.makefile("rb")
            try:
                line = reader.readline()
            finally:
                reader.close()
    except OSError as exc:
        raise ReproError(
            f"could not fetch telemetry from {host}:{port}: {exc}"
        ) from exc
    if not line:
        raise ReproError(f"{host}:{port} closed the telemetry connection")
    try:
        response = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed telemetry response: {exc}") from exc
    if not response.get("ok"):
        raise exception_from_payload(response, default=ReproError)
    return dict(response.get("telemetry", {}))


def _fmt_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _rate(
    counters: Mapping[str, Any],
    previous: Mapping[str, Any] | None,
    name: str,
    interval: float | None,
) -> float | None:
    """Per-second rate of counter ``name`` between two snapshots."""
    if previous is None or not interval or interval <= 0:
        return None
    now = counters.get(name)
    before = previous.get(name)
    if not isinstance(now, (int, float)) or not isinstance(
        before, (int, float)
    ):
        return None
    return max(0.0, (float(now) - float(before)) / interval)


def render_dashboard(
    snapshot: Mapping[str, Any],
    previous: Mapping[str, Any] | None = None,
    interval: float | None = None,
) -> str:
    """Render one telemetry snapshot as a terminal panel.

    Args:
        snapshot: The current telemetry dict.
        previous: The previous snapshot (for request/task rates);
            ``None`` on the first refresh.
        interval: Seconds between the two snapshots.
    """
    kind = snapshot.get("kind", "?")
    counters: Mapping[str, Any] = snapshot.get("counters", {})
    if previous is not None:
        previous = previous.get("counters", {})
    lines = [
        f"repro top — {kind} @ "
        f"{snapshot.get('host', '?')}:{snapshot.get('port', '?')}"
    ]
    if kind == "serve":
        detectors = snapshot.get("detectors", [])
        lines.append(
            f"detectors: {', '.join(detectors) if detectors else 'none'}"
        )
        qps = _rate(counters, previous, "serve.requests", interval)
        row = (
            f"requests: {counters.get('serve.requests', 0)}"
            f"  batches: {counters.get('serve.batches', 0)}"
            f"  queue: {counters.get('serve.queue_depth', 0)}"
            f"  rejected: {counters.get('serve.rejected_overload', 0)}"
        )
        if qps is not None:
            row += f"  qps: {qps:.1f}"
        lines.append(row)
        lines.append(
            "latency ms  "
            f"p50: {counters.get('serve.latency_p50_ms', 0.0):.2f}"
            f"  p90: {counters.get('serve.latency_p90_ms', 0.0):.2f}"
            f"  p99: {counters.get('serve.latency_p99_ms', 0.0):.2f}"
        )
    else:
        tasks_ps = _rate(
            counters, previous, "sparklite.net.tasks", interval
        )
        row = (
            f"workers: {snapshot.get('n_workers', 0)}"
            f"  tasks: {counters.get('sparklite.net.tasks', 0)}"
            f"  out: "
            f"{_fmt_bytes(counters.get('sparklite.net.bytes_out', 0))}"
            f"  in: "
            f"{_fmt_bytes(counters.get('sparklite.net.bytes_in', 0))}"
            "  stragglers: "
            f"{counters.get('sparklite.net.straggler_suspected', 0)}"
        )
        if tasks_ps is not None:
            row += f"  tasks/s: {tasks_ps:.1f}"
        lines.append(row)
        workers = snapshot.get("workers", [])
        if workers:
            lines.append(
                f"{'worker':<16} {'state':<6} {'inflight':>8} "
                f"{'tasks':>7} {'ewma_ms':>8} {'out':>10} {'in':>10}"
            )
            for worker in workers:
                state = "alive" if worker.get("alive") else "lost"
                if worker.get("straggler"):
                    state = "SLOW"
                ewma = worker.get("ewma_ms")
                lines.append(
                    f"{str(worker.get('name', '?')):<16} "
                    f"{state:<6} "
                    f"{worker.get('inflight', 0):>8} "
                    f"{worker.get('tasks', 0):>7} "
                    f"{ewma if ewma is not None else '-':>8} "
                    f"{_fmt_bytes(worker.get('bytes_out', 0)):>10} "
                    f"{_fmt_bytes(worker.get('bytes_in', 0)):>10}"
                )
    return "\n".join(lines)
