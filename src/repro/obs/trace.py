"""Span-based tracing for the DBSCOUT engines and substrate.

A :class:`Tracer` collects :class:`SpanRecord` entries from nested
``with tracer.span("core_points"):`` blocks.  Spans are thread- and
process-aware (each records the thread name and PID it closed on) and
exception-safe: a span whose body raises is still closed and recorded,
tagged with the exception type.

Two usage tiers share this module:

* **Per-run phase spans.**  Every engine ``detect()`` creates its own
  tracer (via :class:`repro.obs.record.RunRecorder`) and wraps its
  pipeline phases.  These spans always record — a handful per fit, so
  the cost is negligible — and become the run record's per-phase
  breakdown.
* **Fine-grained library spans.**  Instrumentation points deep in the
  substrate (SparkLite shuffle materialization, pool dispatch, ...)
  call the module-level :func:`span` helper.  That helper is a strict
  no-op unless tracing has been switched on with
  :func:`enable_tracing` *and* a tracer is active (made current with
  :meth:`Tracer.activate`), so the default hot path pays one global
  flag check and nothing else.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "TraceContext",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "current_tracer",
    "propagation_context",
]

#: Process-wide switch for the fine-grained (module-level) spans.
_TRACING = False
#: Process-wide switch for per-span ``tracemalloc`` accounting.
_PROFILING = False

_STATE_LOCK = threading.Lock()
#: Stack of tracers made current with :meth:`Tracer.activate`; the top
#: receives fine-grained spans.  A plain list (not a context var) so
#: SparkLite executor threads spawned mid-run still attach their spans.
_ACTIVE_TRACERS: list["Tracer"] = []


def enable_tracing() -> None:
    """Turn on fine-grained library spans (sparklite, pool, ...)."""
    global _TRACING
    _TRACING = True


def disable_tracing() -> None:
    """Return the module-level :func:`span` helper to no-op mode."""
    global _TRACING
    _TRACING = False


def tracing_enabled() -> bool:
    """Whether fine-grained spans are being collected."""
    return _TRACING


def enable_profiling() -> None:
    """Record per-span ``tracemalloc`` deltas on every tracer.

    Starts ``tracemalloc`` if it is not already tracing.  Expect a
    substantial slowdown — this is a diagnostics mode, not a default.
    """
    global _PROFILING
    import tracemalloc

    if not tracemalloc.is_tracing():
        tracemalloc.start()
    _PROFILING = True


def disable_profiling() -> None:
    """Stop per-span memory accounting (leaves ``tracemalloc`` running)."""
    global _PROFILING
    _PROFILING = False


def profiling_enabled() -> bool:
    """Whether per-span ``tracemalloc`` accounting is on."""
    return _PROFILING


def current_tracer() -> "Tracer | None":
    """The innermost active tracer, or ``None`` outside any run."""
    with _STATE_LOCK:
        return _ACTIVE_TRACERS[-1] if _ACTIVE_TRACERS else None


@dataclass(frozen=True)
class TraceContext:
    """Wire-able coordinates of an open span in some tracer.

    Shipped inside task/control frames so a remote process can run its
    work under a fresh :class:`Tracer` and the originating driver can
    graft the resulting spans back under the right parent (see
    :meth:`Tracer.graft`).

    Attributes:
        trace_id: The originating tracer's run id.
        parent_id: Span id the remote spans should hang under
            (``None`` = top level).
        depth: Nesting depth of the graft point (remote depths are
            offset by this).
    """

    trace_id: str
    parent_id: int | None = None
    depth: int = 0

    def to_wire(self) -> dict[str, Any]:
        """Compact JSON-safe form carried in protocol messages."""
        return {
            "run": self.trace_id,
            "parent": self.parent_id,
            "depth": self.depth,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "TraceContext":
        """Inverse of :meth:`to_wire` (tolerates missing optionals)."""
        return cls(
            trace_id=str(payload.get("run", "")),
            parent_id=payload.get("parent"),
            depth=int(payload.get("depth", 0)),
        )


def propagation_context() -> "TraceContext | None":
    """Trace context to attach to outgoing cross-process work.

    Returns ``None`` unless fine-grained tracing is enabled *and* a
    tracer is active on this thread — the same gate as :func:`span` —
    so protocols that attach the result to their messages add zero
    bytes when telemetry is off.
    """
    if not _TRACING:
        return None
    tracer = current_tracer()
    if tracer is None:
        return None
    return tracer.propagation_context()


@dataclass
class SpanRecord:
    """One closed span.

    Attributes:
        name: Dotted span name (e.g. ``"core_points"``,
            ``"sparklite.shuffle"``).
        span_id: Id unique within the owning tracer.
        parent_id: Id of the enclosing span, ``None`` at the top level.
        depth: Nesting depth (0 = top level).
        start_s: Start offset in seconds from the tracer's epoch.
        duration_s: Wall-clock duration in seconds.
        thread: Name of the thread the span ran on.
        pid: OS process id the span ran in.
        attrs: Free-form attributes attached via ``span.set(...)`` or
            the ``span(...)`` keyword arguments.  JSON-safe builtins.
        error: Exception type name if the body raised, else ``None``.
        alloc_bytes: Net ``tracemalloc`` allocation delta across the
            span (profiling mode only, else ``None``).
    """

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start_s: float
    duration_s: float = 0.0
    thread: str = ""
    pid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    alloc_bytes: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-builtins form used by the run-record schema."""
        out: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "pid": self.pid,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.alloc_bytes is not None:
            out["alloc_bytes"] = self.alloc_bytes
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            depth=payload.get("depth", 0),
            start_s=payload.get("start_s", 0.0),
            duration_s=payload.get("duration_s", 0.0),
            thread=payload.get("thread", ""),
            pid=payload.get("pid", 0),
            attrs=dict(payload.get("attrs", {})),
            error=payload.get("error"),
            alloc_bytes=payload.get("alloc_bytes"),
        )


class Span:
    """Live handle yielded by :meth:`Tracer.span`; set attrs on it."""

    __slots__ = ("_record",)

    def __init__(self, record: SpanRecord) -> None:
        self._record = record

    @property
    def name(self) -> str:
        return self._record.name

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to the span (JSON-safe values please)."""
        self._record.attrs[key] = value


class _NoopSpan:
    """Shared, allocation-free stand-in used when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    @property
    def name(self) -> str:
        return ""


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_record", "_span", "_mem0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None
        self._span: Span | None = None
        self._mem0 = 0

    def __enter__(self) -> Span:
        self._record = self._tracer._open(self._name, self._attrs)
        if self._tracer.profile_memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                self._mem0 = tracemalloc.get_traced_memory()[0]
        self._span = Span(self._record)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._record is not None
        if exc_type is not None:
            self._record.error = exc_type.__name__
        if self._tracer.profile_memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                self._record.alloc_bytes = (
                    tracemalloc.get_traced_memory()[0] - self._mem0
                )
        self._tracer._close(self._record)
        return False  # propagate any exception


class Tracer:
    """Collects spans for one logical run.

    Args:
        profile_memory: Record per-span ``tracemalloc`` allocation
            deltas (requires ``tracemalloc`` to be tracing; see
            :func:`enable_profiling`).

    Thread-safety: spans opened on different threads nest per-thread
    (each thread keeps its own open-span stack) and append to the same
    record list under a lock.
    """

    def __init__(self, profile_memory: bool | None = None) -> None:
        self.profile_memory = (
            _PROFILING if profile_memory is None else bool(profile_memory)
        )
        self.trace_id = uuid.uuid4().hex[:16]
        self.epoch = time.perf_counter()
        self._spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, name: str, attrs: dict) -> SpanRecord:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = next(self._ids)
        record = SpanRecord(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(stack),
            start_s=time.perf_counter() - self.epoch,
            attrs=dict(attrs),
        )
        stack.append(record)
        return record

    def _close(self, record: SpanRecord) -> None:
        record.duration_s = (
            time.perf_counter() - self.epoch - record.start_s
        )
        record.thread = threading.current_thread().name
        record.pid = os.getpid()
        stack = self._stack()
        # The record is somewhere on this thread's stack (normally the
        # top); remove it even if an inner span leaked open.
        while stack:
            top = stack.pop()
            if top is record:
                break
        with self._lock:
            self._spans.append(record)

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a (nestable) span; use as a context manager."""
        return _SpanContext(self, name, attrs)

    # -- cross-process propagation -------------------------------------

    def propagation_context(self) -> TraceContext:
        """Coordinates of this thread's innermost open span.

        The returned :class:`TraceContext` names the graft point for
        remote spans: the top of the calling thread's open-span stack
        (or the top level when no span is open).
        """
        stack = self._stack()
        top = stack[-1] if stack else None
        return TraceContext(
            trace_id=self.trace_id,
            parent_id=top.span_id if top is not None else None,
            depth=len(stack),
        )

    def graft(
        self,
        spans: Iterable[SpanRecord],
        *,
        parent_id: int | None = None,
        base_depth: int = 0,
        start_offset_s: float = 0.0,
        tags: Mapping[str, Any] | None = None,
    ) -> list[SpanRecord]:
        """Adopt spans recorded by another tracer (usually remotely).

        Every span is re-identified against this tracer's id space;
        remote parent links are remapped, and remote *roots* (parent
        ids that do not resolve within the batch) hang under
        ``parent_id``.  Depths shift by ``base_depth``, start offsets
        by ``start_offset_s`` (the dispatch time relative to this
        tracer's epoch — remote tracers start their clock at task
        start), and ``tags`` (e.g. ``host``/``worker_id`` provenance)
        are merged into every span's attrs.

        Returns the grafted (re-identified) records.
        """
        tags = dict(tags or {})
        batch = list(spans)
        grafted: list[SpanRecord] = []
        with self._lock:
            id_map = {
                remote.span_id: next(self._ids) for remote in batch
            }
            for remote in batch:
                record = SpanRecord(
                    name=remote.name,
                    span_id=id_map[remote.span_id],
                    parent_id=(
                        id_map.get(remote.parent_id, parent_id)
                        if remote.parent_id is not None
                        else parent_id
                    ),
                    depth=base_depth + remote.depth,
                    start_s=start_offset_s + remote.start_s,
                    duration_s=remote.duration_s,
                    thread=remote.thread,
                    pid=remote.pid,
                    attrs={**remote.attrs, **tags},
                    error=remote.error,
                    alloc_bytes=remote.alloc_bytes,
                )
                grafted.append(record)
                self._spans.append(record)
        return grafted

    # -- results -------------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        """Closed spans, in closing order."""
        with self._lock:
            return list(self._spans)

    def phase_durations(self) -> dict[str, float]:
        """Total duration per top-level span name, in first-seen order."""
        out: dict[str, float] = {}
        for record in self.spans():
            if record.depth == 0:
                out[record.name] = out.get(record.name, 0.0) + (
                    record.duration_s
                )
        return out

    # -- activation for fine-grained spans -----------------------------

    def activate(self) -> "_Activation":
        """Make this tracer the target of module-level :func:`span`."""
        return _Activation(self)


class _Activation:
    __slots__ = ("_tracer",)

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        with _STATE_LOCK:
            _ACTIVE_TRACERS.append(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info: object) -> bool:
        with _STATE_LOCK:
            try:
                _ACTIVE_TRACERS.remove(self._tracer)
            except ValueError:
                pass
        return False


def span(name: str, **attrs: Any):
    """Fine-grained span: records only when tracing is enabled.

    With tracing disabled (the default) this returns a shared no-op
    context manager without touching any lock or allocating anything —
    safe to leave in hot paths.
    """
    if not _TRACING:
        return NOOP_SPAN
    tracer = current_tracer()
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def iter_tree(
    spans: list[SpanRecord],
) -> Iterator[tuple[int, SpanRecord]]:
    """Yield ``(depth, span)`` in tree (pre-order start-time) order."""
    children: dict[int | None, list[SpanRecord]] = {}
    for record in spans:
        children.setdefault(record.parent_id, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.start_s)

    def walk(parent_id: int | None, depth: int) -> Iterator:
        for record in children.get(parent_id, []):
            yield depth, record
            yield from walk(record.span_id, depth + 1)

    return walk(None, 0)
