"""Correctness tooling: differential fuzzing of the exactness contract.

DBSCOUT's value proposition is *exact* outlier detection, and the repo
now has four independent implementations that must agree bit-for-bit
(vectorized, distributed, incremental, out-of-sample classify).  This
package is the standing oracle that keeps them honest:

* :mod:`repro.qa.generators` — seeded adversarial dataset generators
  targeting the boundaries where grid implementations silently diverge
  (exact-eps pairs, cell-boundary lattices, same-cell float corners,
  huge magnitudes, duplicates, degenerate sizes);
* :mod:`repro.qa.runner` — the differential runner: every engine plus
  both classify paths against the brute-force reference, diffing full
  label vectors and error semantics;
* :mod:`repro.qa.shrink` — greedy row-removal minimization of failing
  datasets down to human-readable witnesses;
* :mod:`repro.qa.corpus` — the committed witness corpus
  (``tests/qa/corpus/``) replayed on every pytest run.

Run a fuzz session from the command line::

    python -m repro.qa --seeds 0:200 --budget 120

which exits non-zero on any divergence, shrinks each failure, and
writes the witnesses for committing.  See ``docs/testing.md``.
"""

from repro.qa.corpus import Witness, iter_corpus, load_witness, save_witness
from repro.qa.generators import (
    GENERATOR_KINDS,
    AdversarialDataset,
    generate_dataset,
)
from repro.qa.runner import (
    VARIANT_NAMES,
    CaseResult,
    DifferentialRunner,
    Divergence,
)
from repro.qa.shrink import shrink_dataset, shrink_rows

__all__ = [
    "AdversarialDataset",
    "CaseResult",
    "DifferentialRunner",
    "Divergence",
    "GENERATOR_KINDS",
    "VARIANT_NAMES",
    "Witness",
    "generate_dataset",
    "iter_corpus",
    "load_witness",
    "save_witness",
    "shrink_dataset",
    "shrink_rows",
]
