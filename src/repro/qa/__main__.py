"""Command-line fuzz sessions: ``python -m repro.qa --seeds 0:200``.

Runs the differential engine matrix over a seed range (time-boxed by
``--budget``), prints a per-kind summary, and exits non-zero if any
divergence is found.  Failures are shrunk to minimal witnesses and
written to ``--out`` (default ``tests/qa/corpus/`` when run from the
repo root) ready to be committed for permanent regression replay.

``--replay DIR`` instead replays an existing witness corpus — the same
check the tier-1 test suite performs on every pytest run.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from pathlib import Path

from repro.qa.corpus import iter_corpus, save_witness
from repro.qa.generators import GENERATOR_KINDS
from repro.qa.runner import ALL_VARIANT_NAMES, DifferentialRunner
from repro.qa.shrink import shrink_dataset

__all__ = ["main"]


def _parse_seed_range(text: str) -> range:
    if ":" in text:
        low, high = text.split(":", 1)
        start = int(low or 0)
        stop = int(high)
        if stop <= start:
            raise argparse.ArgumentTypeError(
                f"empty seed range {text!r}: need start < stop"
            )
        return range(start, stop)
    single = int(text)
    return range(single, single + 1)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description=(
            "Differential exactness fuzzing: every DBSCOUT engine plus "
            "classify against the brute-force reference."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seed_range,
        default=range(0, 200),
        metavar="A:B",
        help="Seed range to fuzz, half-open (default 0:200).",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="Stop starting new seeds after this many seconds.",
    )
    parser.add_argument(
        "--kind",
        choices=sorted(GENERATOR_KINDS),
        default=None,
        help="Force one generator kind instead of per-seed selection.",
    )
    parser.add_argument(
        "--variants",
        nargs="+",
        choices=list(ALL_VARIANT_NAMES),
        default=None,
        help=(
            "Engine variants to run (default: every in-process variant; "
            "distributed_net — two TCP worker subprocesses — is opt-in)."
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("tests/qa/corpus"),
        metavar="DIR",
        help="Directory for shrunk witnesses of new failures.",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="DIR",
        help="Replay an existing witness corpus instead of fuzzing.",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="Only print the summary."
    )
    return parser


def _shrink_and_save(runner, result, out_dir: Path, quiet: bool) -> Path:
    dataset = result.dataset

    def still_failing(candidate) -> bool:
        return not runner.run_case(candidate).ok

    witness = shrink_dataset(dataset, still_failing)
    first = result.divergences[0]
    name = f"seed{dataset.seed}_{dataset.kind}_{first.variant}"
    path = save_witness(
        out_dir,
        name,
        witness.points,
        witness.eps,
        witness.min_pts,
        kind=dataset.kind,
        seed=dataset.seed,
        note="; ".join(str(d) for d in result.divergences[:3]),
    )
    if not quiet:
        print(
            f"  shrunk {dataset.n_points} -> {witness.n_points} rows, "
            f"wrote {path}"
        )
    return path


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    runner = DifferentialRunner(
        variants=tuple(args.variants) if args.variants else None,
        emit_records=False,
    )
    started = time.perf_counter()
    kind_counts: Counter[str] = Counter()
    failures = []

    if args.replay is not None:
        witnesses = list(iter_corpus(args.replay))
        if not witnesses:
            print(f"no witnesses found under {args.replay}")
            return 2
        for witness in witnesses:
            result = runner.run_case(witness.dataset())
            kind_counts[witness.kind] += 1
            if not result.ok:
                failures.append(result)
                for divergence in result.divergences:
                    print(f"DIVERGENCE [{witness.name}] {divergence}")
        n_cases = len(witnesses)
    else:

        def on_case(result) -> None:
            kind_counts[result.dataset.kind] += 1
            if not result.ok:
                failures.append(result)
                for divergence in result.divergences:
                    print(f"DIVERGENCE {divergence}")
                _shrink_and_save(runner, result, args.out, args.quiet)
            elif not args.quiet and result.dataset.seed % 50 == 0:
                print(f"  seed {result.dataset.seed} ok")

        if args.kind is None:
            results = runner.run_seeds(
                args.seeds, budget_s=args.budget, on_case=on_case
            )
        else:
            results = []
            for seed in args.seeds:
                if (
                    args.budget is not None
                    and time.perf_counter() - started > args.budget
                ):
                    break
                result = runner.run_seed(seed, kind=args.kind)
                on_case(result)
                results.append(result)
        n_cases = len(results)

    elapsed = time.perf_counter() - started
    per_kind = ", ".join(
        f"{kind}={count}" for kind, count in sorted(kind_counts.items())
    )
    print(
        f"ran {n_cases} case(s) x {len(runner.variants)} variant(s) "
        f"in {elapsed:.1f}s ({per_kind})"
    )
    if failures:
        print(f"FAIL: {len(failures)} case(s) diverged")
        return 1
    print("OK: zero divergences")
    return 0


if __name__ == "__main__":
    sys.exit(main())
