"""The witness corpus: shrunk failing datasets kept for permanent replay.

Every divergence the fuzzer ever finds is minimized
(:mod:`repro.qa.shrink`) and saved here as one ``.npz`` file holding
the points plus a JSON header (eps, min_pts, generator kind and seed,
and a human note about the bug it witnessed).  The committed corpus
lives in ``tests/qa/corpus/`` and is replayed through the
differential runner on every pytest invocation — a fixed bug stays
fixed, across every engine, forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.qa.generators import AdversarialDataset

__all__ = ["Witness", "save_witness", "load_witness", "iter_corpus"]

_HEADER_KEY = "header_json"
_POINTS_KEY = "points"
_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Witness:
    """One corpus entry: a minimal dataset plus its provenance."""

    name: str
    points: np.ndarray
    eps: float
    min_pts: int
    kind: str = "manual"
    seed: int = -1
    note: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def dataset(self) -> AdversarialDataset:
        """View this witness as a runnable differential case."""
        return AdversarialDataset(
            kind=self.kind,
            seed=self.seed,
            points=self.points,
            eps=self.eps,
            min_pts=self.min_pts,
            notes={"witness": self.name, **self.extra},
        )


def save_witness(
    directory,
    name: str,
    points: np.ndarray,
    eps: float,
    min_pts: int,
    kind: str = "manual",
    seed: int = -1,
    note: str = "",
    **extra: Any,
) -> Path:
    """Write one witness file and return its path.

    Coordinates are stored as raw float64 bits inside the ``.npz``, so
    sub-ulp geometry (jittered lattices, nextafter corners) survives
    the round-trip exactly.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    array = np.ascontiguousarray(
        np.atleast_2d(np.asarray(points, dtype=np.float64))
    )
    header = {
        "schema": _SCHEMA_VERSION,
        "name": str(name),
        "eps": float(eps),
        "min_pts": int(min_pts),
        "kind": str(kind),
        "seed": int(seed),
        "note": str(note),
        "extra": extra,
    }
    path = directory / f"{name}.npz"
    with open(path, "wb") as handle:
        np.savez(
            handle,
            **{
                _POINTS_KEY: array,
                _HEADER_KEY: np.frombuffer(
                    json.dumps(header).encode(), dtype=np.uint8
                ),
            },
        )
    return path


def load_witness(path) -> Witness:
    """Load one witness file."""
    path = Path(path)
    with np.load(path) as archive:
        points = np.ascontiguousarray(archive[_POINTS_KEY])
        header = json.loads(bytes(archive[_HEADER_KEY]).decode())
    return Witness(
        name=str(header.get("name", path.stem)),
        points=points,
        eps=float(header["eps"]),
        min_pts=int(header["min_pts"]),
        kind=str(header.get("kind", "manual")),
        seed=int(header.get("seed", -1)),
        note=str(header.get("note", "")),
        extra=dict(header.get("extra", {})),
    )


def iter_corpus(directory) -> Iterator[Witness]:
    """Iterate the witnesses in a corpus directory, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.npz")):
        yield load_witness(path)
