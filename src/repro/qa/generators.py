"""Adversarial dataset generators for differential exactness testing.

Every generator targets a boundary that grid-exact DBSCAN
implementations historically get wrong (see GriT-DBSCAN and
Wang/Gu/Shun's parallel-exact DBSCAN):

* pairs at distance *exactly* eps (the ``<= eps`` predicate edge);
* coincident duplicates and constant columns (degenerate geometry);
* points on cell boundaries ``k * l`` for side ``l = eps / sqrt(d)``,
  with sub-ulp jitter so ``floor(x / l)`` lands on either side;
* cell-corner diagonals where the computed same-cell distance can
  exceed ``eps**2`` by one ulp (the Lemma 1 float edge);
* huge magnitudes near the >62-bit packer fallback and at the 2**52
  exact-grid-domain limit (where every path must reject uniformly);
* degenerate sizes ``n in {0, 1, min_pts - 1}``.

Determinism contract: :func:`generate_dataset` is a pure function of
``seed`` — it draws every random value from one
``np.random.default_rng(seed)`` stream in a fixed order, so a failing
seed reproduces the exact same dataset forever.  Do not reorder rng
calls inside a generator without bumping the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.grid import MAX_ABS_CELL_COORD, cell_side_length

__all__ = ["AdversarialDataset", "GENERATOR_KINDS", "generate_dataset"]

#: Sub-ulp nudge used to land on either side of a cell boundary.
_JITTER = 5e-17


@dataclass(frozen=True)
class AdversarialDataset:
    """One generated differential-test case."""

    kind: str
    seed: int
    points: np.ndarray
    eps: float
    min_pts: int
    notes: dict[str, Any] = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def n_dims(self) -> int:
        return int(self.points.shape[1]) if self.points.ndim == 2 else 0


def _clustered(rng: np.random.Generator) -> tuple[np.ndarray, float, int]:
    """Plain gaussian mixture + uniform noise (the control group)."""
    n_dims = int(rng.integers(1, 5))
    n_clusters = int(rng.integers(1, 4))
    centers = rng.uniform(-10.0, 10.0, size=(n_clusters, n_dims))
    rows = [
        centers[int(rng.integers(n_clusters))]
        + rng.normal(scale=0.5, size=n_dims)
        for _ in range(int(rng.integers(8, 40)))
    ]
    rows.extend(rng.uniform(-15.0, 15.0, size=(int(rng.integers(0, 5)), n_dims)))
    points = np.asarray(rows, dtype=np.float64).round(3)
    return points, float(rng.uniform(0.3, 2.0)), int(rng.integers(2, 7))


def _exact_eps_pairs(rng: np.random.Generator) -> tuple[np.ndarray, float, int]:
    """Points placed at float-exactly eps apart along random axes."""
    n_dims = int(rng.integers(1, 4))
    eps = float(rng.choice([0.5, 0.7, 1.0, 1.5, 3.0]))
    anchors = rng.integers(-3, 4, size=(int(rng.integers(2, 6)), n_dims))
    rows = []
    for anchor in anchors.astype(np.float64):
        rows.append(anchor)
        axis = int(rng.integers(n_dims))
        partner = anchor.copy()
        partner[axis] += eps * float(rng.choice([-1.0, 1.0]))
        rows.append(partner)
    return np.asarray(rows, dtype=np.float64), eps, int(rng.integers(2, 5))


def _duplicates(rng: np.random.Generator) -> tuple[np.ndarray, float, int]:
    """Coincident duplicates, some with constant columns."""
    n_dims = int(rng.integers(1, 4))
    n_sites = int(rng.integers(1, 4))
    sites = rng.uniform(-5.0, 5.0, size=(n_sites, n_dims)).round(2)
    if n_dims > 1 and rng.random() < 0.5:
        sites[:, int(rng.integers(n_dims))] = 7.0  # constant column
    rows = [
        sites[int(rng.integers(n_sites))]
        for _ in range(int(rng.integers(4, 20)))
    ]
    return np.asarray(rows, dtype=np.float64), float(rng.uniform(0.1, 1.0)), int(
        rng.integers(2, 8)
    )


def _boundary_lattice(rng: np.random.Generator) -> tuple[np.ndarray, float, int]:
    """Points on cell boundaries ``k * l`` with sub-ulp jitter.

    This generator found the exact-eps stencil bug: jittered lattice
    points can sit at a float distance of exactly eps while living two
    cells apart.
    """
    n_dims = int(rng.integers(1, 4))
    eps = float(rng.uniform(0.1, 4.0))
    side = cell_side_length(eps, n_dims)
    n = int(rng.integers(4, 16))
    ks = rng.integers(-3, 4, size=(n, n_dims)).astype(np.float64)
    jitter = rng.choice([0.0, _JITTER, -_JITTER], size=(n, n_dims))
    return ks * side + jitter, eps, int(rng.integers(2, 6))


def _corner_diagonal(rng: np.random.Generator) -> tuple[np.ndarray, float, int]:
    """Same-cell corner pairs whose computed distance can exceed eps**2.

    Both corners of one epsilon-cell: ``(0, ..., 0)`` and
    ``(nextafter(l, 0), ...)``.  Real distance is below the cell
    diagonal eps, but the float kernel can round the squared sum one
    ulp above ``eps**2`` — the case that forces the same-cell clause of
    the exactness contract.
    """
    n_dims = int(rng.integers(1, 4))
    eps = float(rng.uniform(0.5, 5.0))
    side = cell_side_length(eps, n_dims)
    base = rng.integers(-2, 3, size=n_dims).astype(np.float64) * side
    low = base
    high = base + np.nextafter(side, 0.0)
    copies = int(rng.integers(1, 4))
    rows = [low, high] * copies
    rows.extend(
        base + rng.uniform(0.0, side, size=(int(rng.integers(0, 4)), n_dims))
    )
    return np.asarray(rows, dtype=np.float64), eps, int(rng.integers(2, 5))


def _huge_magnitude(rng: np.random.Generator) -> tuple[np.ndarray, float, int]:
    """Coordinates near the packer fallback and the 2**52 domain limit.

    Most draws stay in-domain (up to ~2**45 cells — far past the
    62-bit packer, well below 2**52); occasionally the offset crosses
    the domain limit, where every path must reject uniformly.
    """
    n_dims = int(rng.integers(1, 3))
    eps = float(rng.choice([0.5, 1.0, 2.0]))
    side = cell_side_length(eps, n_dims)
    exponent = int(rng.integers(35, 46))
    if rng.random() < 0.15:  # out-of-domain draw
        exponent = 53
    offset = float(2.0**exponent) * side
    assert (offset / side >= MAX_ABS_CELL_COORD) == (exponent >= 52)
    n = int(rng.integers(3, 10))
    near = rng.uniform(-2.0 * eps, 2.0 * eps, size=(n, n_dims)).round(2)
    points = near + offset
    if rng.random() < 0.5:
        points = np.vstack([points, np.zeros((1, n_dims))])
    return points, eps, int(rng.integers(2, 5))


def _degenerate(rng: np.random.Generator) -> tuple[np.ndarray, float, int]:
    """n in {0, 1, min_pts - 1} across small dimensionalities."""
    n_dims = int(rng.integers(1, 5))
    min_pts = int(rng.integers(2, 8))
    n = int(rng.choice([0, 1, max(1, min_pts - 1)]))
    points = rng.uniform(-3.0, 3.0, size=(n, n_dims)).round(2)
    return points, float(rng.uniform(0.2, 2.0)), min_pts


#: Registered generator kinds, in rng-draw order.  Append only — the
#: selection index below is part of the determinism contract.
GENERATOR_KINDS: dict[
    str, Callable[[np.random.Generator], tuple[np.ndarray, float, int]]
] = {
    "clustered": _clustered,
    "exact_eps_pairs": _exact_eps_pairs,
    "duplicates": _duplicates,
    "boundary_lattice": _boundary_lattice,
    "corner_diagonal": _corner_diagonal,
    "huge_magnitude": _huge_magnitude,
    "degenerate": _degenerate,
}


def generate_dataset(seed: int, kind: str | None = None) -> AdversarialDataset:
    """Deterministically generate the adversarial dataset for ``seed``.

    Args:
        seed: Any non-negative integer; fully determines the output.
        kind: Optional generator name from :data:`GENERATOR_KINDS` to
            force; by default the seed picks the kind (first rng draw).

    Returns:
        The generated :class:`AdversarialDataset`.
    """
    rng = np.random.default_rng(seed)
    names = list(GENERATOR_KINDS)
    chosen = names[int(rng.integers(len(names)))] if kind is None else kind
    if chosen not in GENERATOR_KINDS:
        raise KeyError(
            f"unknown generator kind {chosen!r}; known: {names}"
        )
    points, eps, min_pts = GENERATOR_KINDS[chosen](rng)
    points = np.ascontiguousarray(
        np.atleast_2d(np.asarray(points, dtype=np.float64))
    )
    if points.size == 0:
        points = points.reshape(0, max(1, points.shape[-1] if points.ndim else 1))
    return AdversarialDataset(
        kind=chosen,
        seed=int(seed),
        points=points,
        eps=float(eps),
        min_pts=int(min_pts),
    )
