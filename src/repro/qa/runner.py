"""The differential runner: every engine against the brute-force oracle.

For each dataset the runner executes the full engine matrix —
vectorized (pruned and unpruned NumPy, compiled C kernel, grid-tree
cell planner), distributed (all three join strategies), incremental
(split insert and insert+remove churn) — plus
both out-of-sample classification paths
(:meth:`repro.core.classify.CoreModel.classify` on the training points
and :meth:`repro.core.cellmap.CellMap.classify`), and diffs the *full*
core and outlier label vectors against
:func:`repro.core.reference.brute_force_detect`.  Outlier counts are
never compared alone: two engines can agree on the count while
disagreeing on which points are outliers.

Error semantics are part of the contract: when the reference rejects a
dataset (e.g. coordinates beyond the exact grid domain) every variant
must raise the same exception type — an engine that silently returns
labels for data the oracle refuses is a divergence.

Each case emits a :mod:`repro.obs` run record (engine ``qa.diff``)
carrying the generator seed and kind, so any discrepancy is
reproducible with ``generate_dataset(seed)`` alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.cellmap import CellMap
from repro.core.classify import CoreModel
from repro.core.distributed import DistributedEngine
from repro.core.grid import Grid, cell_side_length
from repro.core.incremental import IncrementalDBSCOUT
from repro.core.reference import brute_force_detect
from repro.core.vectorized import VectorizedEngine
from repro.exceptions import ReproError
from repro.obs import RunRecorder
from repro.qa.generators import AdversarialDataset, generate_dataset
from repro.stream import CountWindow, LiveDetector

__all__ = [
    "Divergence",
    "CaseResult",
    "DifferentialRunner",
    "VARIANT_NAMES",
    "ALL_VARIANT_NAMES",
]


@dataclass(frozen=True)
class Divergence:
    """One engine/oracle disagreement on one dataset."""

    seed: int
    kind: str
    variant: str
    field: str
    detail: str

    def __str__(self) -> str:
        return (
            f"seed={self.seed} kind={self.kind} variant={self.variant} "
            f"field={self.field}: {self.detail}"
        )


@dataclass
class CaseResult:
    """Outcome of one differential case."""

    dataset: AdversarialDataset
    divergences: list[Divergence] = field(default_factory=list)
    record: Any = None

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class _Outcome:
    """Label masks or the exception type a variant produced."""

    core: np.ndarray | None = None
    outlier: np.ndarray | None = None
    error: type | None = None


def _masks(result: Any, n: int) -> _Outcome:
    return _Outcome(
        core=np.asarray(result.core_mask, dtype=bool)[:n],
        outlier=np.asarray(result.outlier_mask, dtype=bool)[:n],
    )


def _run_vectorized(**options):
    def run(points: np.ndarray, eps: float, min_pts: int) -> _Outcome:
        result = VectorizedEngine(**options).detect(points, eps, min_pts)
        return _masks(result, points.shape[0])

    return run


def _run_distributed(join_strategy: str):
    def run(points: np.ndarray, eps: float, min_pts: int) -> _Outcome:
        engine = DistributedEngine(
            num_partitions=2, join_strategy=join_strategy
        )
        return _masks(engine.detect(points, eps, min_pts), points.shape[0])

    return run


#: Lazily started loopback cluster shared by every ``distributed_net``
#: case in the process (spawning workers per case would dominate the
#: fuzz budget).  Reaped at interpreter exit.
_NET_CLUSTER = None


def _net_cluster():
    global _NET_CLUSTER
    if _NET_CLUSTER is None:
        import atexit

        from repro.sparklite.netexec import LoopbackCluster

        _NET_CLUSTER = LoopbackCluster(
            n_workers=2, default_parallelism=2, task_timeout=60.0
        )
        atexit.register(_NET_CLUSTER.close)
    return _NET_CLUSTER


def _run_distributed_net(
    points: np.ndarray, eps: float, min_pts: int
) -> _Outcome:
    """The multi-host executor: two real worker processes over TCP.

    Cell-partitioned on top, so this row exercises both PR surfaces —
    wire execution and spatial sharding — against the oracle at once.
    """
    engine = DistributedEngine(
        num_partitions=2,
        context=_net_cluster().context,
        partitioner="cells",
    )
    return _masks(engine.detect(points, eps, min_pts), points.shape[0])


def _run_incremental_split(points: np.ndarray, eps: float, min_pts: int) -> _Outcome:
    detector = IncrementalDBSCOUT(eps, min_pts)
    n = points.shape[0]
    if n > 1:
        detector.insert(points[: n // 2])
        detector.insert(points[n // 2 :])
    elif n:
        detector.insert(points)
    return _masks(detector.detect(), n)


def _run_incremental_churn(points: np.ndarray, eps: float, min_pts: int) -> _Outcome:
    """Insert everything plus decoys, then remove the decoys.

    Exercises the dirty-region recomputation: the surviving prefix must
    match a from-scratch fit exactly.
    """
    n = points.shape[0]
    if n == 0:
        return _run_incremental_split(points, eps, min_pts)
    detector = IncrementalDBSCOUT(eps, min_pts)
    detector.insert(points)
    decoys = points[: max(1, n // 2)] + 0.25 * eps
    detector.insert(decoys)
    detector.remove(range(n, n + decoys.shape[0]))
    return _masks(detector.detect(), n)


def _run_incremental_live(
    points: np.ndarray, eps: float, min_pts: int
) -> _Outcome:
    """Streamed churn through :class:`repro.stream.LiveDetector`.

    Decoys are ingested first, then the dataset in chunks; a count
    window sized to the dataset ages the decoys out, so the active
    window ends up holding exactly ``points`` in arrival order.  The
    window labels — the consistency contract live serving snapshots
    rely on — must match the brute-force oracle bit-for-bit.
    """
    n = points.shape[0]
    if n == 0:
        return _run_incremental_split(points, eps, min_pts)
    live = LiveDetector(eps, min_pts, window=CountWindow(n))
    decoys = points[: max(1, n // 2)] + 0.25 * eps
    live.ingest(decoys, timestamps=0.0)
    chunk = max(1, n // 3)
    for tick, start in enumerate(range(0, n, chunk), start=1):
        live.ingest(points[start : start + chunk], timestamps=float(tick))
    return _masks(live.result(), n)


def _run_quality_exact(
    points: np.ndarray, eps: float, min_pts: int
) -> _Outcome:
    """The facade with ``quality="exact"`` — the exactness guardrail.

    The quality knob must leave the exact pipeline untouched: routing
    through :class:`repro.core.dbscout.DBSCOUT` with the default
    preset has to reproduce the oracle bit-for-bit, proving no
    approximate-tier code leaks into exact runs.
    """
    from repro.core.dbscout import DBSCOUT

    detector = DBSCOUT(
        eps,
        min_pts,
        quality="exact",
        seed=0,
        kernel="numpy",
        cell_planner="stencil",
    )
    return _masks(detector.fit(points), points.shape[0])


def _run_classify(points: np.ndarray, eps: float, min_pts: int) -> _Outcome:
    """CoreModel.classify over the training points themselves.

    The model is built from the *reference* fit, so this isolates the
    classify path: its labels must reproduce the oracle's outlier mask
    bit-for-bit on the training data.
    """
    reference = brute_force_detect(points, eps, min_pts)
    model = CoreModel.from_fit(points, reference, eps, min_pts)
    labels = model.classify(points)
    return _Outcome(
        core=np.asarray(reference.core_mask, dtype=bool),
        outlier=np.asarray(labels, dtype=bool),
    )


def _run_cellmap(points: np.ndarray, eps: float, min_pts: int) -> _Outcome:
    """Record-at-a-time CellMap.classify against the reference fit."""
    reference = brute_force_detect(points, eps, min_pts)
    if points.shape[0] == 0:
        return _Outcome(
            core=np.zeros(0, dtype=bool), outlier=np.zeros(0, dtype=bool)
        )
    grid = Grid(points, eps)
    counts = {
        tuple(int(c) for c in cell): int(count)
        for cell, count in zip(grid.cells, grid.counts)
    }
    cell_map = CellMap.from_counts(counts, min_pts)
    side = cell_side_length(eps, points.shape[1])
    coords = np.floor(points / side).astype(np.int64)
    core_by_cell: dict[tuple, list[list[float]]] = {}
    for index in np.flatnonzero(reference.core_mask):
        cell = tuple(int(c) for c in coords[index])
        core_by_cell.setdefault(cell, []).append(
            [float(v) for v in points[index]]
        )
        cell_map.mark_core(cell)
    labels = cell_map.classify(points, core_by_cell, eps)
    return _Outcome(
        core=np.asarray(reference.core_mask, dtype=bool),
        outlier=np.asarray(labels, dtype=bool),
    )


#: The engine matrix, name -> runner(points, eps, min_pts) -> _Outcome.
#: The vectorized rows pin kernel/planner so each performance layer is
#: exercised in isolation: the two legacy rows run the NumPy kernel
#: with the stencil planner, ``vectorized_ckernel`` swaps in the
#: compiled kernel (NumPy fallback without a compiler — still a valid
#: differential run), and ``vectorized_tree`` swaps in the grid-tree
#: cell planner.
_VARIANTS: dict[str, Callable[[np.ndarray, float, int], _Outcome]] = {
    "vectorized_pruned": _run_vectorized(
        pruning=True, kernel="numpy", cell_planner="stencil"
    ),
    "vectorized_unpruned": _run_vectorized(
        pruning=False, kernel="numpy", cell_planner="stencil"
    ),
    "vectorized_ckernel": _run_vectorized(
        kernel="c", cell_planner="stencil"
    ),
    "vectorized_tree": _run_vectorized(
        kernel="numpy", cell_planner="tree"
    ),
    "vectorized_quality_exact": _run_quality_exact,
    "distributed_group": _run_distributed("group"),
    "distributed_plain": _run_distributed("plain"),
    "distributed_broadcast": _run_distributed("broadcast"),
    "incremental_split": _run_incremental_split,
    "incremental_churn": _run_incremental_churn,
    "classify": _run_classify,
    "cellmap_classify": _run_cellmap,
}

#: Default matrix: every in-process variant.
VARIANT_NAMES: tuple[str, ...] = tuple(_VARIANTS)

#: Opt-in variants, selectable by name but not part of the default
#: matrix: ``distributed_net`` spawns worker subprocesses, which the
#: tier-1 suite should not pay for on every run;
#: ``incremental_live`` replays insert+evict churn through the
#: streaming window layer (run by the tier-2 streaming CI job).
_OPT_IN_VARIANTS: dict[str, Callable[[np.ndarray, float, int], _Outcome]] = {
    "distributed_net": _run_distributed_net,
    "incremental_live": _run_incremental_live,
}

ALL_VARIANT_NAMES: tuple[str, ...] = VARIANT_NAMES + tuple(_OPT_IN_VARIANTS)


def _mask_diff(expected: np.ndarray, got: np.ndarray) -> str:
    if expected.shape != got.shape:
        return f"shape {got.shape} != expected {expected.shape}"
    bad = np.flatnonzero(expected != got)
    return (
        f"{bad.size} label(s) differ at indices {bad[:10].tolist()}"
        + ("..." if bad.size > 10 else "")
    )


class DifferentialRunner:
    """Runs the engine matrix differentially against the oracle.

    Args:
        variants: Optional subset of :data:`VARIANT_NAMES` to run.
        emit_records: Emit a ``qa.diff`` run record per case (on by
            default; records reach installed :mod:`repro.obs` sinks).
    """

    def __init__(
        self,
        variants: tuple[str, ...] | None = None,
        emit_records: bool = True,
    ) -> None:
        known = {**_VARIANTS, **_OPT_IN_VARIANTS}
        names = VARIANT_NAMES if variants is None else tuple(variants)
        unknown = set(names) - set(known)
        if unknown:
            raise KeyError(
                f"unknown variants {sorted(unknown)}; known: "
                f"{list(ALL_VARIANT_NAMES)}"
            )
        self.variants = {name: known[name] for name in names}
        self.emit_records = bool(emit_records)

    # ------------------------------------------------------------------

    def run_case(self, dataset: AdversarialDataset) -> CaseResult:
        """Run every variant on one dataset and diff against the oracle."""
        recorder = None
        if self.emit_records:
            recorder = RunRecorder(
                engine="qa.diff",
                params={"eps": dataset.eps, "min_pts": dataset.min_pts},
                context={"seed": dataset.seed, "kind": dataset.kind},
            )
        oracle = self._invoke(
            lambda: _masks(
                brute_force_detect(
                    dataset.points, dataset.eps, dataset.min_pts
                ),
                dataset.n_points,
            )
        )
        divergences: list[Divergence] = []
        for name, run in self.variants.items():
            outcome = self._invoke(
                lambda run=run: run(
                    dataset.points, dataset.eps, dataset.min_pts
                )
            )
            divergences.extend(self._diff(dataset, name, oracle, outcome))
        record = None
        if recorder is not None:
            recorder.add_context(
                variants=list(self.variants),
                n_divergences=len(divergences),
                divergent_variants=sorted(
                    {d.variant for d in divergences}
                ),
            )
            record = recorder.finish(
                dataset.n_points, n_dims=dataset.n_dims or None
            )
        return CaseResult(
            dataset=dataset, divergences=divergences, record=record
        )

    def run_seed(self, seed: int, kind: str | None = None) -> CaseResult:
        """Generate the dataset for ``seed`` and run it."""
        return self.run_case(generate_dataset(seed, kind=kind))

    def run_seeds(
        self,
        seeds,
        budget_s: float | None = None,
        on_case: Callable[[CaseResult], None] | None = None,
    ) -> list[CaseResult]:
        """Run a seed range, stopping early when the budget expires."""
        started = time.perf_counter()
        results: list[CaseResult] = []
        for seed in seeds:
            if (
                budget_s is not None
                and time.perf_counter() - started > budget_s
            ):
                break
            result = self.run_seed(int(seed))
            results.append(result)
            if on_case is not None:
                on_case(result)
        return results

    # ------------------------------------------------------------------

    @staticmethod
    def _invoke(thunk: Callable[[], _Outcome]) -> _Outcome:
        try:
            return thunk()
        except ReproError as exc:
            return _Outcome(error=type(exc))

    @staticmethod
    def _diff(
        dataset: AdversarialDataset,
        variant: str,
        oracle: _Outcome,
        outcome: _Outcome,
    ) -> list[Divergence]:
        def divergence(field_name: str, detail: str) -> Divergence:
            return Divergence(
                seed=dataset.seed,
                kind=dataset.kind,
                variant=variant,
                field=field_name,
                detail=detail,
            )

        if oracle.error is not None:
            if outcome.error is not oracle.error:
                got = (
                    "no error"
                    if outcome.error is None
                    else outcome.error.__name__
                )
                return [
                    divergence(
                        "error",
                        f"reference raised {oracle.error.__name__}, "
                        f"variant raised {got}",
                    )
                ]
            return []
        if outcome.error is not None:
            return [
                divergence(
                    "error",
                    f"variant raised {outcome.error.__name__} but the "
                    "reference succeeded",
                )
            ]
        found: list[Divergence] = []
        if not np.array_equal(oracle.core, outcome.core):
            found.append(
                divergence("core_mask", _mask_diff(oracle.core, outcome.core))
            )
        if not np.array_equal(oracle.outlier, outcome.outlier):
            found.append(
                divergence(
                    "outlier_mask",
                    _mask_diff(oracle.outlier, outcome.outlier),
                )
            )
        return found
