"""Greedy witness minimization for failing differential cases.

A fuzz failure on a 40-point dataset is noise; the same failure on 3
points is a witness a human can read off.  :func:`shrink_dataset`
performs ddmin-style greedy row removal: try dropping large chunks
first, halve the chunk size when nothing removable remains, and stop
at granularity one.  The predicate decides "still failing", so the
shrinker is oblivious to *why* a case fails — it works for label
divergences and error-semantics mismatches alike.

The shrinker never changes coordinates, eps, or min_pts: the witness
stays a literal subset of the generated dataset, so the generator seed
plus the kept row indices fully explain it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.qa.generators import AdversarialDataset

__all__ = ["shrink_rows", "shrink_dataset"]


def shrink_rows(
    points: np.ndarray,
    still_failing: Callable[[np.ndarray], bool],
    max_evaluations: int = 1000,
) -> np.ndarray:
    """Minimize ``points`` row-wise while ``still_failing`` holds.

    Args:
        points: ``(n, d)`` array of a failing dataset.
        still_failing: Predicate over candidate subsets; must be True
            for ``points`` itself.
        max_evaluations: Hard cap on predicate calls.

    Returns:
        A row subset (in original order) that still fails and from
        which no single chunk at the final granularity can be removed.
    """
    current = np.asarray(points)
    evaluations = 0

    def check(candidate: np.ndarray) -> bool:
        nonlocal evaluations
        evaluations += 1
        return still_failing(candidate)

    chunk = max(1, current.shape[0] // 2)
    while chunk >= 1 and evaluations < max_evaluations:
        removed_any = False
        start = 0
        while start < current.shape[0] and evaluations < max_evaluations:
            if current.shape[0] <= 1:
                break
            candidate = np.delete(
                current, slice(start, start + chunk), axis=0
            )
            if candidate.shape[0] and check(candidate):
                current = candidate
                removed_any = True
                # Do not advance: the next chunk slid into this slot.
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return current


def shrink_dataset(
    dataset: AdversarialDataset,
    still_failing: Callable[[AdversarialDataset], bool],
    max_evaluations: int = 1000,
) -> AdversarialDataset:
    """Shrink a failing :class:`AdversarialDataset` to a small witness."""

    def predicate(points: np.ndarray) -> bool:
        return still_failing(_with_points(dataset, points))

    minimized = shrink_rows(
        dataset.points, predicate, max_evaluations=max_evaluations
    )
    return _with_points(dataset, minimized)


def _with_points(
    dataset: AdversarialDataset, points: np.ndarray
) -> AdversarialDataset:
    return AdversarialDataset(
        kind=dataset.kind,
        seed=dataset.seed,
        points=np.ascontiguousarray(points, dtype=np.float64),
        eps=dataset.eps,
        min_pts=dataset.min_pts,
        notes=dict(dataset.notes),
    )
