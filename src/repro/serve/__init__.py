"""Serving layer: persistable detector artifacts + outlier query service.

DBSCOUT's fitted grid (core points grouped by epsilon-cell, the
broadcast structure of Algorithms 2/4) is the natural persisted
"model": it answers "is this new point an outlier?" exactly, without
refitting.  This package turns that observation into a serving stack:

* :mod:`repro.serve.artifact` — versioned, schema-checked save/load of
  fitted models (one ``.npz`` file: arrays + JSON header);
* :mod:`repro.serve.service` — :class:`OutlierService`, a
  micro-batching request queue with backpressure, per-request
  deadlines, a multi-detector LRU registry, and atomic hot swap of
  model versions (:meth:`OutlierService.swap`) for live streaming
  detectors (:mod:`repro.stream`);
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — an asyncio
  JSON-lines TCP front-end and a blocking client.

Quickstart::

    from repro.serve import DetectorArtifact, OutlierService, fit_artifact

    artifact = fit_artifact(points, eps=0.5, min_pts=10, name="geo")
    artifact.save("geo.npz")

    service = OutlierService()
    service.load("geo", "geo.npz")
    labels = service.query("geo", new_points)   # 1 = outlier

Every request updates ``serve.*`` metrics and (with obs sinks or
tracing active) emits :mod:`repro.obs` run records, so serving is
observable end-to-end like the fit engines.
"""

from repro.serve.artifact import (
    ARTIFACT_MAGIC,
    ARTIFACT_SCHEMA_VERSION,
    DetectorArtifact,
    fit_artifact,
    load_artifact,
    save_artifact,
)
from repro.serve.client import OutlierClient
from repro.serve.server import OutlierServer, run_server
from repro.serve.service import OutlierService, QueryOutcome

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_SCHEMA_VERSION",
    "DetectorArtifact",
    "fit_artifact",
    "load_artifact",
    "save_artifact",
    "OutlierClient",
    "OutlierServer",
    "run_server",
    "OutlierService",
    "QueryOutcome",
]
