"""Persistable detector artifacts: versioned save/load of fitted models.

A :class:`DetectorArtifact` is the on-disk form of a fitted detector's
:class:`~repro.core.classify.CoreModel`: a single ``.npz`` file holding
the model arrays plus a schema-checked JSON header (stored as a UTF-8
byte array inside the archive, so the artifact stays one file).  A
detector fitted once on millions of points loads back in milliseconds —
the NPZ payload is the core points, typically a small fraction of the
training data — and classifies unseen points exactly, bit-identical to
the original fit on its training set.

Format (schema version 1):

* ``header`` — ``uint8`` bytes of a JSON object with ``magic``,
  ``schema_version``, the fit parameters (``eps``, ``min_pts``,
  ``n_dims``, ``n_train``, ``engine``), array shape manifests,
  ``created_at``, library ``versions``, and free-form ``metadata``;
* ``core_points`` — ``(k, d)`` float64, grouped by cell;
* ``core_cells`` — ``(m, d)`` int64 unique core-cell coordinates;
* ``core_starts`` — ``(m + 1,)`` int64 CSR offsets.

Every load cross-checks the header manifest against the actual arrays
and raises :class:`~repro.exceptions.ArtifactError` on any mismatch, so
a truncated or tampered file fails loudly instead of mis-classifying.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.classify import CoreModel
from repro.exceptions import ArtifactError
from repro.obs import to_builtin
from repro.obs.record import library_versions
from repro.obs.trace import span

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ARTIFACT_MAGIC",
    "DetectorArtifact",
    "fit_artifact",
    "load_artifact",
    "save_artifact",
]

#: Bump when the artifact layout changes incompatibly.
ARTIFACT_SCHEMA_VERSION = 1
ARTIFACT_MAGIC = "repro.dbscout-artifact"

_ARRAY_SPECS: dict[str, tuple[str, int]] = {
    # name -> (dtype, ndim)
    "core_points": ("float64", 2),
    "core_cells": ("int64", 2),
    "core_starts": ("int64", 1),
}


@dataclass(frozen=True)
class DetectorArtifact:
    """A servable fitted detector: model arrays plus header facts.

    Attributes:
        model: The fitted :class:`~repro.core.classify.CoreModel`.
        name: Detector name used by the serving registry (defaults to
            the file stem on load when the header carries none).
        created_at: Unix timestamp the artifact was created.
        versions: Library versions recorded at save time.
        metadata: Free-form facts carried in the header.
    """

    model: CoreModel
    name: str = "detector"
    created_at: float = field(default_factory=time.time)
    versions: dict[str, str] = field(default_factory=library_versions)
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- construction --------------------------------------------------

    @classmethod
    def from_model(
        cls,
        model: CoreModel,
        name: str = "detector",
        **metadata: Any,
    ) -> "DetectorArtifact":
        """Wrap a fitted model for persistence under ``name``.

        The model's own metadata (quality config, serving-sample facts)
        is carried into the header so it round-trips through
        save/load; explicit ``**metadata`` keys take precedence.
        """
        return cls(
            model=model, name=name, metadata={**model.metadata, **metadata}
        )

    # -- header --------------------------------------------------------

    def header(self) -> dict[str, Any]:
        """The JSON header dict that :meth:`save` embeds."""
        model = self.model
        return {
            "magic": ARTIFACT_MAGIC,
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "name": self.name,
            "eps": float(model.eps),
            "min_pts": int(model.min_pts),
            "n_dims": int(model.n_dims),
            "n_train": int(model.n_train),
            "engine": model.engine,
            "n_core_points": model.n_core_points,
            "n_core_cells": model.n_core_cells,
            "arrays": {
                key: {
                    "shape": list(getattr(model, key).shape),
                    "dtype": str(getattr(model, key).dtype),
                }
                for key in _ARRAY_SPECS
            },
            "created_at": float(self.created_at),
            "versions": dict(self.versions),
            "metadata": to_builtin(dict(self.metadata)),
        }

    # -- save / load ---------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the artifact as one uncompressed ``.npz`` file.

        Uncompressed on purpose: the arrays are already dense numeric
        data and ``np.load`` of an uncompressed archive is a straight
        buffer read, keeping artifact loads in the milliseconds.
        """
        path = pathlib.Path(path)
        header_bytes = np.frombuffer(
            json.dumps(self.header(), sort_keys=True).encode("utf-8"),
            dtype=np.uint8,
        )
        with span("serve.artifact.save", path=str(path)):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                np.savez(
                    path,
                    header=header_bytes,
                    core_points=self.model.core_points,
                    core_cells=self.model.core_cells,
                    core_starts=self.model.core_starts,
                )
            except OSError as exc:
                raise ArtifactError(
                    f"could not write artifact to {path}: {exc}"
                ) from exc
        # np.savez appends .npz when missing; report the real path.
        return path if path.suffix == ".npz" else path.with_name(
            path.name + ".npz"
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "DetectorArtifact":
        """Load and fully validate an artifact written by :meth:`save`.

        Raises:
            ArtifactError: If the file is missing, is not an artifact,
                has an unsupported schema version, or its arrays do not
                match the header manifest.
        """
        path = pathlib.Path(path)
        with span("serve.artifact.load", path=str(path)):
            try:
                with np.load(path) as archive:
                    payload = {key: archive[key] for key in archive.files}
            except FileNotFoundError as exc:
                raise ArtifactError(
                    f"artifact file does not exist: {path}"
                ) from exc
            except (OSError, ValueError, KeyError) as exc:
                raise ArtifactError(
                    f"could not read {path} as an artifact archive: {exc}"
                ) from exc
            header = cls._validate(payload, path)
            model = CoreModel(
                eps=header["eps"],
                min_pts=header["min_pts"],
                n_dims=header["n_dims"],
                core_points=payload["core_points"],
                core_cells=payload["core_cells"],
                core_starts=payload["core_starts"],
                n_train=header["n_train"],
                engine=header["engine"],
                metadata=dict(header.get("metadata", {})),
            )
        return cls(
            model=model,
            name=header.get("name") or path.stem,
            created_at=header.get("created_at", 0.0),
            versions=dict(header.get("versions", {})),
            metadata=dict(header.get("metadata", {})),
        )

    @staticmethod
    def _validate(
        payload: dict[str, np.ndarray], path: pathlib.Path
    ) -> dict[str, Any]:
        """Parse the header and cross-check it against the arrays."""
        if "header" not in payload:
            raise ArtifactError(f"{path} has no header entry")
        try:
            header = json.loads(bytes(payload["header"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactError(
                f"{path} has an unreadable JSON header: {exc}"
            ) from exc
        if header.get("magic") != ARTIFACT_MAGIC:
            raise ArtifactError(
                f"{path} is not a DBSCOUT detector artifact "
                f"(magic={header.get('magic')!r})"
            )
        version = header.get("schema_version")
        if version != ARTIFACT_SCHEMA_VERSION:
            raise ArtifactError(
                f"{path} has artifact schema version {version!r}; "
                f"this library reads version {ARTIFACT_SCHEMA_VERSION}"
            )
        required = ("eps", "min_pts", "n_dims", "n_train", "engine")
        missing = [key for key in required if key not in header]
        if missing:
            raise ArtifactError(f"{path} header is missing {missing}")
        manifest = header.get("arrays", {})
        for key, (dtype, ndim) in _ARRAY_SPECS.items():
            if key not in payload:
                raise ArtifactError(f"{path} is missing array {key!r}")
            array = payload[key]
            if array.ndim != ndim or str(array.dtype) != dtype:
                raise ArtifactError(
                    f"{path} array {key!r} has dtype={array.dtype} "
                    f"ndim={array.ndim}, expected {dtype}/{ndim}-D"
                )
            declared = manifest.get(key, {}).get("shape")
            if declared is not None and list(array.shape) != declared:
                raise ArtifactError(
                    f"{path} array {key!r} has shape {list(array.shape)} "
                    f"but the header declares {declared} — truncated or "
                    "tampered artifact"
                )
        metadata = header.get("metadata")
        if isinstance(metadata, dict) and metadata:
            # An artifact claiming an unknown quality preset or a bad
            # sample_fraction must fail at load, not at serve time.
            # ParameterError propagates as-is per the facade contract.
            from repro.core.approx import validate_quality_config

            validate_quality_config(metadata)
        return header

    # -- views ---------------------------------------------------------

    def classify(self, points: np.ndarray) -> np.ndarray:
        """Labels (1 outlier, 0 inlier) via the wrapped model."""
        return self.model.classify(points)

    def __repr__(self) -> str:
        return (
            f"DetectorArtifact(name={self.name!r}, eps={self.model.eps}, "
            f"min_pts={self.model.min_pts}, "
            f"n_core_points={self.model.n_core_points})"
        )


def fit_artifact(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    name: str = "detector",
    engine: str = "vectorized",
    **engine_options: Any,
) -> DetectorArtifact:
    """Fit DBSCOUT on ``points`` and wrap the model as an artifact."""
    from repro.core.dbscout import DBSCOUT

    detector = DBSCOUT(eps, min_pts, engine=engine, **engine_options)
    detector.fit(points)
    return DetectorArtifact.from_model(detector.core_model_, name=name)


def save_artifact(
    model: CoreModel, path: str | pathlib.Path, name: str = "detector"
) -> pathlib.Path:
    """Persist a fitted model; returns the path actually written."""
    return DetectorArtifact.from_model(model, name=name).save(path)


def load_artifact(path: str | pathlib.Path) -> DetectorArtifact:
    """Load an artifact; alias for :meth:`DetectorArtifact.load`."""
    return DetectorArtifact.load(path)
