"""Blocking JSON-lines client for the outlier query server.

:class:`OutlierClient` speaks the one-JSON-object-per-line protocol of
:mod:`repro.serve.server` over a plain TCP socket.  Server-side errors
come back with an ``error_type`` field that the client maps onto the
library's exception hierarchy, so remote failures raise the same types
as local ones (``ServiceOverloadedError`` → back off and retry,
``UnknownDetectorError`` → wrong name, ...).

Example::

    with OutlierClient("127.0.0.1", 7227) as client:
        labels = client.query("geo", [[116.3, 39.9], [0.0, 0.0]])
"""

from __future__ import annotations

import json
import socket
from typing import Any

import numpy as np

from repro.exceptions import ServeError
from repro.net import ERROR_TYPES, encode_line, exception_from_payload

__all__ = ["OutlierClient"]

#: ``error_type`` values mapped back onto library exceptions (the
#: shared :data:`repro.net.ERROR_TYPES` table; kept as a module name
#: for backwards compatibility).
_ERROR_TYPES: dict[str, type[Exception]] = ERROR_TYPES


class OutlierClient:
    """Blocking client for one server connection.

    Args:
        host: Server host.
        port: Server port.
        timeout: Socket timeout in seconds for connect and replies
            (``None`` blocks indefinitely).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7227,
        timeout: float | None = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServeError(
                f"could not connect to {host}:{port}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("rb")
        self._request_id = 0

    # -- protocol ------------------------------------------------------

    def call(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, await and decode one response."""
        self._request_id += 1
        payload = {"id": self._request_id, **payload}
        try:
            self._sock.sendall(encode_line(payload))
            line = self._reader.readline()
        except OSError as exc:
            raise ServeError(f"connection failed: {exc}") from exc
        if not line:
            raise ServeError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"malformed response from server: {exc}"
            ) from exc
        if not response.get("ok"):
            raise exception_from_payload(response, default=ServeError)
        return response

    # -- operations ----------------------------------------------------

    def query(
        self,
        detector: str,
        points: Any,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Classify ``points``; returns int64 labels (1 = outlier).

        ``timeout`` becomes the server-side micro-batching deadline.
        """
        array = np.asarray(points, dtype=np.float64)
        request: dict[str, Any] = {
            "op": "query",
            "detector": detector,
            "points": array.tolist(),
        }
        if timeout is not None:
            request["timeout"] = float(timeout)
        response = self.call(request)
        return np.asarray(response["labels"], dtype=np.int64)

    def query_one(self, detector: str, point: Any) -> int:
        """Classify a single point; returns its label (1 = outlier)."""
        labels = self.query(detector, np.atleast_2d(
            np.asarray(point, dtype=np.float64)
        ))
        return int(labels[0])

    def detectors(self) -> list[str]:
        """Names registered with the remote service."""
        return list(self.call({"op": "list"})["detectors"])

    def stats(self) -> dict[str, Any]:
        """The remote service's ``serve.*`` stats snapshot."""
        return dict(self.call({"op": "stats"})["stats"])

    def telemetry(self) -> dict[str, Any]:
        """The remote exposition snapshot (``repro top``'s data).

        The returned dict has numeric ``counters``, the ``detectors``
        list, and — under ``"text"`` — the server's ready-rendered
        Prometheus exposition.
        """
        response = self.call({"op": "telemetry"})
        snapshot = dict(response["telemetry"])
        snapshot["text"] = response.get("text", "")
        return snapshot

    def ping(self) -> bool:
        """Liveness check; ``True`` when the server answers."""
        return bool(self.call({"op": "ping"})["ok"])

    # -- live-stream control -------------------------------------------

    def ingest(
        self,
        stream: str,
        points: Any,
        timestamps: Any = None,
    ) -> dict[str, Any]:
        """Feed a batch into a served live detector's window.

        Returns the ingest status dict (``accepted``, ``evicted``,
        ``window_points``, ``swapped``, and ``version`` when the
        coordinator hot-swapped a fresh snapshot).
        """
        array = np.asarray(points, dtype=np.float64)
        request: dict[str, Any] = {
            "op": "ingest",
            "stream": stream,
            "points": array.tolist(),
        }
        if timestamps is not None:
            stamps = np.asarray(timestamps, dtype=np.float64)
            request["timestamps"] = (
                float(stamps) if stamps.ndim == 0 else stamps.tolist()
            )
        response = self.call(request)
        return {
            key: value
            for key, value in response.items()
            if key not in ("ok", "id")
        }

    def evict(
        self,
        stream: str,
        count: int | None = None,
        older_than: float | None = None,
    ) -> int:
        """Manually evict window points; returns how many left."""
        request: dict[str, Any] = {"op": "evict", "stream": stream}
        if count is not None:
            request["count"] = int(count)
        if older_than is not None:
            request["older_than"] = float(older_than)
        return int(self.call(request)["evicted"])

    def swap_status(self, detector: str | None = None) -> dict[str, Any]:
        """Installed model versions, swap latency, and stream status."""
        request: dict[str, Any] = {"op": "swap_status"}
        if detector is not None:
            request["detector"] = detector
        response = self.call(request)
        return {
            key: value
            for key, value in response.items()
            if key not in ("ok", "id")
        }

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        except OSError:  # pragma: no cover - close best effort
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close best effort
            pass

    def __enter__(self) -> "OutlierClient":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"OutlierClient(host={self.host!r}, port={self.port})"
