"""Asyncio JSON-lines TCP front-end over an :class:`OutlierService`.

The wire protocol is one JSON object per line, both ways.  Requests:

* ``{"op": "query", "detector": "name", "points": [[...], ...]}`` —
  classify; optional ``"timeout"`` (seconds) becomes the request's
  micro-batching deadline; optional ``"id"`` is echoed back.
* ``{"op": "stats"}`` — the service's ``serve.*`` counter snapshot with
  latency quantiles.
* ``{"op": "telemetry"}`` — exposition snapshot: numeric counters plus
  a ready-rendered Prometheus ``text`` field (what ``repro top``
  consumes).
* ``{"op": "list"}`` — registered detector names (plus attached
  stream names).
* ``{"op": "ping"}`` — liveness check.

Live-stream control ops (available for streams attached with
:meth:`OutlierServer.attach_stream`):

* ``{"op": "ingest", "stream": "name", "points": [[...], ...]}`` —
  feed a batch into the stream's sliding window; optional
  ``"timestamps"`` (scalar or per-point list).  The coordinator may
  snapshot + hot-swap per its refresh policy; the response reports
  ``accepted``/``evicted``/``window_points``/``swapped`` (and the
  installed ``version`` when a swap happened).
* ``{"op": "evict", "stream": "name", "count": N}`` (or
  ``"older_than": T``) — manual eviction; reports ``evicted``.
* ``{"op": "swap_status"}`` — installed model versions and swap
  latency facts from the service, plus per-stream window status;
  optional ``"detector"`` narrows to one name.

Ingest and evict run in a thread-pool executor, so the event loop —
and therefore in-flight ``query`` traffic — never blocks on window
maintenance or snapshot builds (the zero-downtime property the soak
test asserts).

With ``metrics_port`` set, the same telemetry is additionally served
over HTTP (``GET /metrics`` Prometheus text, ``GET /telemetry`` JSON)
by a stdlib listener, so an actual Prometheus can scrape it.

Responses carry ``"ok": true`` plus the payload, or ``"ok": false``
with ``"error"`` and ``"error_type"`` (the exception class name, which
:mod:`repro.serve.client` maps back to the library's exceptions —
``ServiceOverloadedError`` means "back off and retry").  One bad
request does not drop the connection; clients pipeline freely.

The event loop never blocks on classification: queries enqueue into the
service's micro-batcher and the handler awaits the future, so many
concurrent connections coalesce into shared vectorized batches.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

import numpy as np

from repro.exceptions import ServeError
from repro.net import MAX_LINE_BYTES, encode_line, error_payload, ok_payload
from repro.obs.expose import MetricsHTTPServer, telemetry_text
from repro.serve.service import OutlierService

__all__ = ["OutlierServer", "run_server", "MAX_LINE_BYTES"]


class OutlierServer:
    """JSON-lines TCP server wrapping an :class:`OutlierService`.

    Args:
        service: The (already populated) query service to front.
        host: Interface to bind.
        port: Port to bind; ``0`` picks a free one (see :attr:`port`
            after :meth:`start`).
        metrics_port: When set, also serve ``GET /metrics`` /
            ``GET /telemetry`` over HTTP on this port (``0`` picks a
            free one — read it back from ``server.metrics_http.port``).
    """

    def __init__(
        self,
        service: OutlierService,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._metrics_port = metrics_port
        self.metrics_http: MetricsHTTPServer | None = None
        self._server: asyncio.base_events.Server | None = None
        self._streams: dict[str, Any] = {}
        self._ingest_lock = asyncio.Lock()

    # -- live streams ---------------------------------------------------

    def attach_stream(self, name: str, coordinator: Any) -> None:
        """Expose a :class:`~repro.stream.StreamCoordinator` over the
        wire: ``ingest``/``evict`` ops addressed to ``name`` drive it,
        and its window status shows up in ``swap_status``."""
        self._streams[name] = coordinator

    def streams(self) -> list[str]:
        """Names of attached live streams."""
        return list(self._streams)

    def _stream(self, name: Any):
        if not isinstance(name, str):
            raise ServeError("op needs a string 'stream' field")
        try:
            return self._streams[name]
        except KeyError:
            raise ServeError(
                f"unknown stream {name!r}; attached: "
                f"{list(self._streams) or 'none'}"
            ) from None

    def _telemetry(self) -> dict[str, Any]:
        """The service snapshot stamped with this server's address.

        Attached live streams contribute their ``stream.*`` and
        ``incremental.*`` counters (summed across streams), so the
        Prometheus plane sees ingest lag, window size, and snapshot
        age alongside the ``serve.*`` families.
        """
        snapshot = self.service.telemetry()
        counters = snapshot.setdefault("counters", {})
        for coordinator in self._streams.values():
            for key, value in coordinator.telemetry().items():
                if isinstance(value, (int, float)):
                    counters[key] = counters.get(key, 0) + value
        snapshot["host"] = self.host
        snapshot["port"] = self.port
        return snapshot

    async def start(self) -> "OutlierServer":
        """Bind and start accepting connections; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._metrics_port is not None and self.metrics_http is None:
            self.metrics_http = MetricsHTTPServer(
                self._telemetry, host=self.host, port=self._metrics_port
            )
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        if self._server is None:
            raise ServeError("call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections and close the listener."""
        if self.metrics_http is not None:
            self.metrics_http.close()
            self.metrics_http = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line
                    await self._send(
                        writer,
                        error_payload(
                            None,
                            ServeError(
                                f"request line exceeds {MAX_LINE_BYTES} "
                                "bytes"
                            ),
                        ),
                    )
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        writer.write(encode_line(payload))
        await writer.drain()

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServeError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "query")
            if op == "ping":
                return ok_payload(request_id, op="ping")
            if op == "list":
                return ok_payload(
                    request_id,
                    detectors=self.service.detectors(),
                    streams=self.streams(),
                )
            if op == "stats":
                return ok_payload(request_id, stats=self.service.stats())
            if op == "telemetry":
                snapshot = self._telemetry()
                return ok_payload(
                    request_id,
                    telemetry=snapshot,
                    text=telemetry_text(snapshot),
                )
            if op == "query":
                return await self._handle_query(request, request_id)
            if op == "ingest":
                return await self._handle_ingest(request, request_id)
            if op == "evict":
                return await self._handle_evict(request, request_id)
            if op == "swap_status":
                return self._handle_swap_status(request, request_id)
            raise ServeError(f"unknown op {op!r}")
        except json.JSONDecodeError as exc:
            return error_payload(
                request_id, ServeError(f"malformed JSON request: {exc}")
            )
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return error_payload(request_id, exc)

    async def _handle_query(
        self, request: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        detector = request.get("detector")
        if not isinstance(detector, str):
            raise ServeError("query needs a string 'detector' field")
        points = np.asarray(request.get("points"), dtype=np.float64)
        if points.ndim == 1 and points.size:
            points = points[None, :]  # single point convenience
        timeout = request.get("timeout")
        future = self.service.submit(
            detector, points, timeout=timeout
        )
        labels = await asyncio.wrap_future(future)
        return ok_payload(
            request_id,
            labels=[int(label) for label in labels],
            n_outliers=int(labels.sum()),
        )

    async def _handle_ingest(
        self, request: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        coordinator = self._stream(request.get("stream"))
        points = np.asarray(request.get("points"), dtype=np.float64)
        if points.ndim == 1 and points.size:
            points = points[None, :]  # single point convenience
        timestamps = request.get("timestamps")
        if timestamps is not None:
            timestamps = np.asarray(timestamps, dtype=np.float64)
        loop = asyncio.get_running_loop()
        # Window maintenance and snapshot builds happen off the event
        # loop so concurrent query traffic keeps flowing; the ingest
        # lock preserves wire arrival order.
        async with self._ingest_lock:
            status = await loop.run_in_executor(
                None,
                lambda: coordinator.ingest(
                    points, timestamps=timestamps
                ),
            )
        return ok_payload(request_id, **status)

    async def _handle_evict(
        self, request: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        coordinator = self._stream(request.get("stream"))
        count = request.get("count")
        older_than = request.get("older_than")
        loop = asyncio.get_running_loop()
        async with self._ingest_lock:
            evicted = await loop.run_in_executor(
                None,
                lambda: coordinator.live.evict(
                    count=None if count is None else int(count),
                    older_than=(
                        None if older_than is None else float(older_than)
                    ),
                ),
            )
        return ok_payload(
            request_id,
            evicted=int(evicted),
            window_points=coordinator.live.window_points,
        )

    def _handle_swap_status(
        self, request: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        detector = request.get("detector")
        status = self.service.swap_status(detector)
        status["streams"] = {
            name: coordinator.status()
            for name, coordinator in self._streams.items()
            if detector is None or name == detector
        }
        return ok_payload(request_id, **status)


def run_server(
    service: OutlierService,
    host: str = "127.0.0.1",
    port: int = 7227,
    metrics_port: int | None = None,
    streams: dict[str, Any] | None = None,
) -> None:
    """Blocking convenience runner used by ``repro serve``.

    ``streams`` maps names to
    :class:`~repro.stream.StreamCoordinator` instances to attach
    (enables the ``ingest``/``evict``/``swap_status`` ops for them).
    """

    async def _run() -> None:
        server = await OutlierServer(
            service, host, port, metrics_port=metrics_port
        ).start()
        for name, coordinator in (streams or {}).items():
            server.attach_stream(name, coordinator)
        print(f"serving {len(service.detectors())} detector(s) "
              f"on {host}:{server.port}")
        if streams:
            print(f"live stream(s): {', '.join(sorted(streams))}")
        if server.metrics_http is not None:
            print(f"metrics on http://{host}:{server.metrics_http.port}"
                  "/metrics")
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
