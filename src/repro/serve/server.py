"""Asyncio JSON-lines TCP front-end over an :class:`OutlierService`.

The wire protocol is one JSON object per line, both ways.  Requests:

* ``{"op": "query", "detector": "name", "points": [[...], ...]}`` —
  classify; optional ``"timeout"`` (seconds) becomes the request's
  micro-batching deadline; optional ``"id"`` is echoed back.
* ``{"op": "stats"}`` — the service's ``serve.*`` counter snapshot with
  latency quantiles.
* ``{"op": "telemetry"}`` — exposition snapshot: numeric counters plus
  a ready-rendered Prometheus ``text`` field (what ``repro top``
  consumes).
* ``{"op": "list"}`` — registered detector names.
* ``{"op": "ping"}`` — liveness check.

With ``metrics_port`` set, the same telemetry is additionally served
over HTTP (``GET /metrics`` Prometheus text, ``GET /telemetry`` JSON)
by a stdlib listener, so an actual Prometheus can scrape it.

Responses carry ``"ok": true`` plus the payload, or ``"ok": false``
with ``"error"`` and ``"error_type"`` (the exception class name, which
:mod:`repro.serve.client` maps back to the library's exceptions —
``ServiceOverloadedError`` means "back off and retry").  One bad
request does not drop the connection; clients pipeline freely.

The event loop never blocks on classification: queries enqueue into the
service's micro-batcher and the handler awaits the future, so many
concurrent connections coalesce into shared vectorized batches.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

import numpy as np

from repro.exceptions import ServeError
from repro.net import MAX_LINE_BYTES, encode_line, error_payload, ok_payload
from repro.obs.expose import MetricsHTTPServer, telemetry_text
from repro.serve.service import OutlierService

__all__ = ["OutlierServer", "run_server", "MAX_LINE_BYTES"]


class OutlierServer:
    """JSON-lines TCP server wrapping an :class:`OutlierService`.

    Args:
        service: The (already populated) query service to front.
        host: Interface to bind.
        port: Port to bind; ``0`` picks a free one (see :attr:`port`
            after :meth:`start`).
        metrics_port: When set, also serve ``GET /metrics`` /
            ``GET /telemetry`` over HTTP on this port (``0`` picks a
            free one — read it back from ``server.metrics_http.port``).
    """

    def __init__(
        self,
        service: OutlierService,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._metrics_port = metrics_port
        self.metrics_http: MetricsHTTPServer | None = None
        self._server: asyncio.base_events.Server | None = None

    def _telemetry(self) -> dict[str, Any]:
        """The service snapshot stamped with this server's address."""
        snapshot = self.service.telemetry()
        snapshot["host"] = self.host
        snapshot["port"] = self.port
        return snapshot

    async def start(self) -> "OutlierServer":
        """Bind and start accepting connections; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._metrics_port is not None and self.metrics_http is None:
            self.metrics_http = MetricsHTTPServer(
                self._telemetry, host=self.host, port=self._metrics_port
            )
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        if self._server is None:
            raise ServeError("call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections and close the listener."""
        if self.metrics_http is not None:
            self.metrics_http.close()
            self.metrics_http = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line
                    await self._send(
                        writer,
                        error_payload(
                            None,
                            ServeError(
                                f"request line exceeds {MAX_LINE_BYTES} "
                                "bytes"
                            ),
                        ),
                    )
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        writer.write(encode_line(payload))
        await writer.drain()

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServeError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "query")
            if op == "ping":
                return ok_payload(request_id, op="ping")
            if op == "list":
                return ok_payload(
                    request_id, detectors=self.service.detectors()
                )
            if op == "stats":
                return ok_payload(request_id, stats=self.service.stats())
            if op == "telemetry":
                snapshot = self._telemetry()
                return ok_payload(
                    request_id,
                    telemetry=snapshot,
                    text=telemetry_text(snapshot),
                )
            if op == "query":
                return await self._handle_query(request, request_id)
            raise ServeError(f"unknown op {op!r}")
        except json.JSONDecodeError as exc:
            return error_payload(
                request_id, ServeError(f"malformed JSON request: {exc}")
            )
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return error_payload(request_id, exc)

    async def _handle_query(
        self, request: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        detector = request.get("detector")
        if not isinstance(detector, str):
            raise ServeError("query needs a string 'detector' field")
        points = np.asarray(request.get("points"), dtype=np.float64)
        if points.ndim == 1 and points.size:
            points = points[None, :]  # single point convenience
        timeout = request.get("timeout")
        future = self.service.submit(
            detector, points, timeout=timeout
        )
        labels = await asyncio.wrap_future(future)
        return ok_payload(
            request_id,
            labels=[int(label) for label in labels],
            n_outliers=int(labels.sum()),
        )


def run_server(
    service: OutlierService,
    host: str = "127.0.0.1",
    port: int = 7227,
    metrics_port: int | None = None,
) -> None:
    """Blocking convenience runner used by ``repro serve``."""

    async def _run() -> None:
        server = await OutlierServer(
            service, host, port, metrics_port=metrics_port
        ).start()
        print(f"serving {len(service.detectors())} detector(s) "
              f"on {host}:{server.port}")
        if server.metrics_http is not None:
            print(f"metrics on http://{host}:{server.metrics_http.port}"
                  "/metrics")
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
