"""The outlier query service: micro-batching over loaded artifacts.

:class:`OutlierService` turns fitted detectors into a query-serving
component built for heavy concurrent traffic:

* **Micro-batching.**  Requests land in a bounded FIFO queue; a worker
  thread drains consecutive requests for the same detector and
  coalesces them into *one* vectorized
  :meth:`~repro.core.classify.CoreModel.classify` call, then splits the
  label array back per request.  Per-point classification is
  independent, so batching never changes a label.
* **Backpressure.**  The queue holds at most ``max_queue`` pending
  requests; a submit beyond that raises
  :class:`~repro.exceptions.ServiceOverloadedError` immediately so
  callers shed load instead of stacking latency.
* **Deadlines.**  A request may carry a ``timeout``; expired requests
  fail with :class:`~repro.exceptions.DeadlineExceededError` without
  wasting classify work on an answer nobody is waiting for.  The
  deadline is checked everywhere a request changes hands: at submit
  (a non-positive timeout is dead on arrival and never enqueued), at
  batch pickup, and when :meth:`OutlierService.close` drains the
  queue — all three paths count under ``serve.deadline_exceeded``.
* **Multi-detector registry.**  Models register under names with LRU
  eviction beyond ``max_models``, so one service can front many fitted
  detectors within a bounded memory budget.
* **Atomic hot swap.**  :meth:`OutlierService.swap` installs a new
  :class:`~repro.core.classify.CoreModel` version under an existing
  name without dropping or blocking in-flight batches: the registry
  flips under the lock, a per-detector version counter advances, and
  the batch worker re-validates each queued request against the model
  it actually resolves — a queued request that no longer matches (a
  swap changed dimensionality) fails individually instead of sinking
  the whole coalesced batch.  Re-registering an existing name routes
  through the same path, closing the historical register/worker race.
  Swap installs count under ``serve.swap.*`` metrics.

Every batch updates ``serve.*`` counters on the service's
:class:`~repro.obs.MetricsRegistry` (requests, batches, rows, queue
depth, deadline misses) and a sliding latency window that
:meth:`OutlierService.stats` summarizes as p50/p90/p99.  When obs sinks
are installed or tracing is on, each batch additionally emits a
``repro.obs`` run record with ``serve.batch`` spans — the same
pipeline the fit engines feed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.classify import CoreModel
from repro.core.grid import validate_points
from repro.exceptions import (
    DataValidationError,
    DeadlineExceededError,
    ServeError,
    ServiceOverloadedError,
    UnknownDetectorError,
)
from repro.obs import MetricsRegistry, RunRecorder, tracing_enabled
from repro.obs.record import installed_sinks

__all__ = ["OutlierService", "QueryOutcome"]


@dataclass
class _Request:
    """One queued classify request."""

    detector: str
    points: np.ndarray
    future: Future
    enqueued_at: float
    deadline: float | None = None

    @property
    def n_rows(self) -> int:
        return int(self.points.shape[0])


@dataclass(frozen=True)
class QueryOutcome:
    """Labels plus per-request serving facts returned by :meth:`query`."""

    labels: np.ndarray
    batch_rows: int
    latency_s: float

    @property
    def n_outliers(self) -> int:
        return int(self.labels.sum())


class OutlierService:
    """Micro-batching outlier query service over registered models.

    Args:
        max_models: Registry capacity; registering beyond it evicts the
            least recently used detector.
        max_queue: Bound on pending requests (backpressure threshold).
        max_batch_rows: Cap on the number of points coalesced into one
            classify call.
        batch_wait_s: After picking up a first request, wait up to this
            long for more same-detector requests to coalesce.  ``0``
            (default) serves immediately — lowest latency; raise it to
            trade latency for throughput under bursty load.
        latency_window: Number of recent request latencies kept for the
            p50/p90/p99 summary.
    """

    def __init__(
        self,
        max_models: int = 8,
        max_queue: int = 1024,
        max_batch_rows: int = 65536,
        batch_wait_s: float = 0.0,
        latency_window: int = 4096,
    ) -> None:
        if max_models < 1:
            raise ServeError(f"max_models must be >= 1, got {max_models}")
        if max_queue < 0:
            raise ServeError(f"max_queue must be >= 0, got {max_queue}")
        if max_batch_rows < 1:
            raise ServeError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        self.max_models = int(max_models)
        self.max_queue = int(max_queue)
        self.max_batch_rows = int(max_batch_rows)
        self.batch_wait_s = float(batch_wait_s)
        self.metrics = MetricsRegistry()
        self._models: OrderedDict[str, CoreModel] = OrderedDict()
        self._versions: dict[str, int] = {}
        self._queue: deque[_Request] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._latencies: deque[float] = deque(maxlen=int(latency_window))
        self._paused = False
        self._closed = False
        self._worker: threading.Thread | None = None

    # -- registry ------------------------------------------------------

    def _resolve_model(self, model: CoreModel | Any) -> CoreModel:
        resolved = getattr(model, "model", model)
        if not isinstance(resolved, CoreModel):
            raise ServeError(
                f"cannot register {type(model).__name__}; expected a "
                "CoreModel or DetectorArtifact"
            )
        return resolved

    def _install(self, name: str, resolved: CoreModel) -> tuple[bool, int]:
        """Install under the lock; returns (replaced, version)."""
        replaced = name in self._models
        self._models[name] = resolved
        self._models.move_to_end(name)
        self._versions[name] = self._versions.get(name, 0) + 1
        while len(self._models) > self.max_models:
            evicted, _ = self._models.popitem(last=False)
            self._versions.pop(evicted, None)
            self.metrics.increment("serve.models_evicted")
        self.metrics.set("serve.models_registered", len(self._models))
        return replaced, self._versions[name]

    def _record_swap(self, elapsed_s: float) -> None:
        self.metrics.increment("serve.swap.total")
        ms = elapsed_s * 1e3
        self.metrics.set("serve.swap.latency_ms", ms)
        if ms > self.metrics.get("serve.swap.latency_max_ms"):
            self.metrics.set("serve.swap.latency_max_ms", ms)

    def register(self, name: str, model: CoreModel | Any) -> int:
        """Register ``model`` (or an artifact) under ``name``.

        Accepts a :class:`~repro.core.classify.CoreModel` or anything
        with a ``.model`` attribute holding one (a
        :class:`~repro.serve.artifact.DetectorArtifact`).  Registering
        past ``max_models`` evicts the least recently used entry.

        Re-registering an existing name is an atomic hot swap (see
        :meth:`swap`): requests already queued against the old model
        are re-validated by the batch worker against whatever model it
        resolves at classify time, so a replacement can never sink a
        coalesced in-flight batch.  Counted under
        ``serve.swap.reregister``.

        Returns:
            The installed model version (1 for a fresh name).
        """
        resolved = self._resolve_model(model)
        started = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ServeError("service is closed")
            replaced, version = self._install(name, resolved)
        if replaced:
            self.metrics.increment("serve.swap.reregister")
            self._record_swap(time.perf_counter() - started)
        return version

    def swap(self, name: str, model: CoreModel | Any) -> int:
        """Atomically install a new model version under ``name``.

        The registry entry flips under the service lock, so every
        classify batch sees either the old or the new version — never
        a mixture.  In-flight requests are neither dropped nor
        blocked: batches picked up after the swap resolve the new
        model, and any queued request whose dimensionality no longer
        matches fails individually (``serve.swap.dims_mismatch``)
        while the rest of the batch proceeds.

        Returns:
            The new version number (monotonic per registered name;
            resets when a name is evicted and later re-registered).
        """
        resolved = self._resolve_model(model)
        started = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ServeError("service is closed")
            _, version = self._install(name, resolved)
        self._record_swap(time.perf_counter() - started)
        return version

    def swap_status(self, name: str | None = None) -> dict[str, Any]:
        """Installed-version and swap-latency facts.

        Args:
            name: Restrict to one detector (raises
                :class:`~repro.exceptions.UnknownDetectorError` if it
                is not registered); ``None`` reports all.
        """
        with self._lock:
            versions = dict(self._versions)
        if name is not None and name not in versions:
            raise UnknownDetectorError(
                f"unknown detector {name!r}; registered: "
                f"{list(versions) or 'none'}"
            )
        status: dict[str, Any] = {
            "versions": (
                versions if name is None else {name: versions[name]}
            ),
            "swaps": int(self.metrics.get("serve.swap.total")),
            "reregisters": int(
                self.metrics.get("serve.swap.reregister")
            ),
            "dims_mismatches": int(
                self.metrics.get("serve.swap.dims_mismatch")
            ),
            "last_latency_ms": float(
                self.metrics.get("serve.swap.latency_ms")
            ),
            "max_latency_ms": float(
                self.metrics.get("serve.swap.latency_max_ms")
            ),
        }
        return status

    def load(self, name: str, path) -> None:
        """Load an artifact file and register it under ``name``."""
        from repro.serve.artifact import DetectorArtifact

        self.register(name, DetectorArtifact.load(path))

    def detectors(self) -> list[str]:
        """Registered detector names, least recently used first."""
        with self._lock:
            return list(self._models)

    def model(self, name: str) -> CoreModel:
        """The registered model for ``name`` (marks it recently used)."""
        with self._lock:
            try:
                model = self._models[name]
            except KeyError:
                raise UnknownDetectorError(
                    f"unknown detector {name!r}; registered: "
                    f"{list(self._models) or 'none'}"
                ) from None
            self._models.move_to_end(name)
            return model

    # -- submission ----------------------------------------------------

    def submit(
        self,
        detector: str,
        points: np.ndarray,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue a classify request; returns a ``Future`` of labels.

        Validation (shape, dimensionality, unknown detector) happens
        synchronously so the caller gets those errors immediately; the
        future resolves to an ``(n,)`` int64 label array, or raises
        :class:`~repro.exceptions.DeadlineExceededError` /
        :class:`~repro.exceptions.ServeError`.

        Raises:
            ServiceOverloadedError: If the queue is at ``max_queue``.
        """
        model = self.model(detector)  # raises UnknownDetectorError
        probe = np.asarray(points, dtype=np.float64)
        if probe.size == 0 and probe.ndim <= 2:
            # Empty query batch: resolve immediately with empty labels
            # (matching CoreModel.classify) instead of erroring.
            future: Future = Future()
            future.set_result(np.zeros(0, dtype=np.int64))
            return future
        array = validate_points(points)
        if array.shape[1] != model.n_dims:
            raise DataValidationError(
                f"detector {detector!r} expects {model.n_dims}-D points, "
                f"got {array.shape[1]}-D"
            )
        if timeout is not None and float(timeout) <= 0:
            # Dead on arrival: fail at submit time rather than letting
            # the request occupy queue capacity until batch pickup.
            self.metrics.increment("serve.deadline_exceeded")
            expired: Future = Future()
            expired.set_exception(
                DeadlineExceededError(
                    f"request for {detector!r} submitted with "
                    f"non-positive timeout {timeout!r}"
                )
            )
            return expired
        now = time.perf_counter()
        request = _Request(
            detector=detector,
            points=array,
            future=Future(),
            enqueued_at=now,
            deadline=None if timeout is None else now + float(timeout),
        )
        with self._wake:
            if self._closed:
                raise ServeError("service is closed")
            if len(self._queue) >= self.max_queue:
                self.metrics.increment("serve.rejected_overload")
                raise ServiceOverloadedError(
                    f"queue is full ({self.max_queue} pending requests)"
                )
            self._queue.append(request)
            depth = len(self._queue)
            self.metrics.increment("serve.requests")
            self.metrics.increment("serve.rows_submitted", request.n_rows)
            self.metrics.set("serve.queue_depth", depth)
            peak = self.metrics.get("serve.queue_depth_peak")
            if depth > peak:
                self.metrics.set("serve.queue_depth_peak", depth)
            self._ensure_worker()
            self._wake.notify_all()
        return request.future

    def query(
        self,
        detector: str,
        points: np.ndarray,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Blocking classify: labels (1 outlier, 0 inlier) per point."""
        return self.submit(detector, points, timeout=timeout).result()

    def query_outcome(
        self,
        detector: str,
        points: np.ndarray,
        timeout: float | None = None,
    ) -> QueryOutcome:
        """Blocking classify returning labels plus serving facts."""
        start = time.perf_counter()
        labels = self.query(detector, points, timeout=timeout)
        return QueryOutcome(
            labels=labels,
            batch_rows=int(self.metrics.get("serve.last_batch_rows")),
            latency_s=time.perf_counter() - start,
        )

    # -- draining control ---------------------------------------------

    def pause(self) -> None:
        """Stop draining the queue (requests keep accumulating)."""
        with self._wake:
            self._paused = True

    def resume(self) -> None:
        """Resume draining after :meth:`pause`."""
        with self._wake:
            self._paused = False
            self._wake.notify_all()

    # -- stats ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Snapshot of ``serve.*`` counters plus latency quantiles."""
        snapshot = self.metrics.snapshot()
        with self._lock:
            latencies = sorted(self._latencies)
            snapshot["serve.queue_depth"] = len(self._queue)
            snapshot["serve.models"] = list(self._models)
            snapshot["serve.versions"] = dict(self._versions)
        if latencies:
            def quantile(q: float) -> float:
                index = min(
                    len(latencies) - 1, int(q * (len(latencies) - 1))
                )
                return latencies[index]

            snapshot["serve.latency_p50_ms"] = quantile(0.50) * 1e3
            snapshot["serve.latency_p90_ms"] = quantile(0.90) * 1e3
            snapshot["serve.latency_p99_ms"] = quantile(0.99) * 1e3
            snapshot["serve.latency_mean_ms"] = (
                sum(latencies) / len(latencies) * 1e3
            )
        return snapshot

    def telemetry(self) -> dict[str, Any]:
        """Exposition-ready snapshot for the ``telemetry`` protocol op.

        Splits :meth:`stats` into numeric ``counters`` (what
        :func:`repro.obs.expose.render_prometheus` can render) and the
        non-numeric ``detectors`` list.
        """
        stats = self.stats()
        counters = {
            name: value
            for name, value in stats.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        return {
            "kind": "serve",
            "counters": counters,
            "detectors": list(stats.get("serve.models", [])),
        }

    # -- lifecycle -----------------------------------------------------

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop the worker and fail every still-pending request."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._wake.notify_all()
            worker = self._worker
        now = time.perf_counter()
        for request in pending:
            if request.deadline is not None and now > request.deadline:
                # A request that expired while queued misses its
                # deadline, it is not a casualty of the shutdown.
                self.metrics.increment("serve.deadline_exceeded")
                request.future.set_exception(
                    DeadlineExceededError(
                        f"request for {request.detector!r} waited "
                        f"{now - request.enqueued_at:.3f}s, past its "
                        "deadline (service closed while queued)"
                    )
                )
            else:
                request.future.set_exception(ServeError("service closed"))
        if worker is not None and worker is not threading.current_thread():
            worker.join(timeout=timeout)

    def __enter__(self) -> "OutlierService":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    # -- worker --------------------------------------------------------

    def _ensure_worker(self) -> None:
        """Start the drain thread lazily (caller holds the lock)."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._drain_loop,
                name="repro-serve-worker",
                daemon=True,
            )
            self._worker.start()

    def _next_batch(self) -> list[_Request] | None:
        """Block until a batch is available; ``None`` when closed."""
        with self._wake:
            while not self._closed and (not self._queue or self._paused):
                self._wake.wait(timeout=0.1)
            if self._closed:
                return None
            if self.batch_wait_s > 0 and len(self._queue) == 1:
                # Coalescing window: give concurrent submitters a beat
                # to land in the same batch before serving.
                self._wake.wait(timeout=self.batch_wait_s)
                if self._closed or self._paused or not self._queue:
                    return None
            batch = [self._queue.popleft()]
            detector = batch[0].detector
            rows = batch[0].n_rows
            while (
                self._queue
                and self._queue[0].detector == detector
                and rows + self._queue[0].n_rows <= self.max_batch_rows
            ):
                request = self._queue.popleft()
                batch.append(request)
                rows += request.n_rows
            self.metrics.set("serve.queue_depth", len(self._queue))
            return batch

    def _drain_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                if self._closed:
                    return
                continue
            try:
                self._run_batch(batch)
            except Exception as exc:  # pragma: no cover - defensive
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _run_batch(self, batch: list[_Request]) -> None:
        """Classify one coalesced batch and resolve its futures."""
        now = time.perf_counter()
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self.metrics.increment("serve.deadline_exceeded")
                request.future.set_exception(
                    DeadlineExceededError(
                        f"request for {request.detector!r} waited "
                        f"{now - request.enqueued_at:.3f}s, past its "
                        "deadline"
                    )
                )
            else:
                live.append(request)
        if not live:
            return
        detector = live[0].detector
        try:
            model = self.model(detector)
        except UnknownDetectorError as exc:
            # Evicted between submit and drain.
            for request in live:
                request.future.set_exception(exc)
            return
        # A hot swap between submit and pickup may have changed the
        # model; re-validate each request against the version this
        # batch actually resolved so a mismatch fails alone instead of
        # sinking the whole coalesced batch.
        matching: list[_Request] = []
        for request in live:
            if int(request.points.shape[1]) != model.n_dims:
                self.metrics.increment("serve.swap.dims_mismatch")
                request.future.set_exception(
                    DataValidationError(
                        f"detector {detector!r} now expects "
                        f"{model.n_dims}-D points, got "
                        f"{request.points.shape[1]}-D (model replaced "
                        "after submit)"
                    )
                )
            else:
                matching.append(request)
        live = matching
        if not live:
            return
        stacked = (
            live[0].points
            if len(live) == 1
            else np.concatenate([request.points for request in live])
        )
        counters: dict[str, int] = {}
        emit_record = bool(installed_sinks()) or tracing_enabled()
        recorder = None
        if emit_record:
            recorder = RunRecorder(
                engine="serve",
                params={"eps": model.eps, "min_pts": model.min_pts},
                context={
                    "detector": detector,
                    "batch_requests": len(live),
                    "batch_rows": int(stacked.shape[0]),
                },
            )
        try:
            if recorder is not None:
                with recorder.activate():
                    with recorder.span(
                        "serve.batch", detector=detector
                    ):
                        labels = model.classify(stacked, counters=counters)
            else:
                labels = model.classify(stacked, counters=counters)
        except Exception as exc:
            for request in live:
                request.future.set_exception(exc)
            return
        finally:
            if recorder is not None:
                recorder.metrics.merge(counters, namespace="serve")
                recorder.finish(
                    n_points=int(stacked.shape[0]), n_dims=model.n_dims
                )
        done = time.perf_counter()
        n_rows = int(stacked.shape[0])
        self.metrics.increment("serve.batches")
        self.metrics.increment("serve.rows_classified", n_rows)
        self.metrics.increment(
            "serve.outliers_found", int(labels.sum())
        )
        self.metrics.merge(counters, namespace="serve")
        self.metrics.set("serve.last_batch_rows", n_rows)
        peak = self.metrics.get("serve.max_batch_rows")
        if n_rows > peak:
            self.metrics.set("serve.max_batch_rows", n_rows)
        with self._lock:
            for request in live:
                self._latencies.append(done - request.enqueued_at)
        offset = 0
        for request in live:
            request.future.set_result(
                labels[offset : offset + request.n_rows]
            )
            offset += request.n_rows

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"OutlierService(models={list(self._models)}, "
                f"queue_depth={len(self._queue)}, "
                f"max_queue={self.max_queue})"
            )
