"""SparkLite: an in-process, from-scratch mini-Spark execution engine.

The DBSCOUT paper defines its algorithm as a sequence of Spark
transformations (MAP, FLATMAP, FILTER, REDUCEBYKEY, GROUPBYKEY, JOIN,
UNION, BROADCAST, FOREACH).  SparkLite provides exactly that vocabulary
over lazy, lineage-based RDDs with hash-partitioned shuffles, broadcast
variables, accumulators, and optional thread-pool executors, plus
instrumentation (records shuffled, tasks run) used by the experiment
harness to reason about communication volumes.

With ``Context(executor="net")`` the same programs run over real TCP
worker processes (see :mod:`repro.sparklite.netexec`), with spatially
aware sharding available through :class:`CellPartitioner` — results
stay bit-identical to local execution.
"""

from repro.sparklite.accumulator import Accumulator
from repro.sparklite.broadcast import Broadcast
from repro.sparklite.cluster import (
    CONFIGURATION_1,
    CONFIGURATION_2,
    ClusterConfig,
    MemoryModel,
    estimate_size,
)
from repro.sparklite.context import Context
from repro.sparklite.failures import FailFirstAttempts, RandomFailures
from repro.sparklite.metrics import EngineMetrics
from repro.sparklite.partitioner import CellPartitioner, HashPartitioner
from repro.sparklite.rdd import RDD

__all__ = [
    "Accumulator",
    "Broadcast",
    "CellPartitioner",
    "ClusterConfig",
    "MemoryModel",
    "CONFIGURATION_1",
    "CONFIGURATION_2",
    "estimate_size",
    "Context",
    "FailFirstAttempts",
    "RandomFailures",
    "EngineMetrics",
    "HashPartitioner",
    "RDD",
]
