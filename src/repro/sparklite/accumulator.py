"""Accumulators: write-only shared counters updated from tasks."""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

__all__ = ["Accumulator"]

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A thread-safe, add-only shared variable.

    Tasks call :meth:`add`; only the driver should read :attr:`value`.
    The combine function must be associative and commutative, as task
    completion order is unspecified under parallel executors.
    """

    def __init__(
        self,
        accumulator_id: int,
        zero: T,
        combine: Callable[[T, T], T] | None = None,
    ) -> None:
        self._id = accumulator_id
        self._value = zero
        self._combine = combine or (lambda a, b: a + b)  # type: ignore[operator]
        self._lock = threading.Lock()

    @property
    def id(self) -> int:
        """Engine-assigned identifier of this accumulator."""
        return self._id

    def add(self, increment: T) -> None:
        """Merge ``increment`` into the accumulated value."""
        with self._lock:
            self._value = self._combine(self._value, increment)

    @property
    def value(self) -> T:
        """Current accumulated value (driver-side read)."""
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Accumulator(id={self._id}, value={self.value!r})"
