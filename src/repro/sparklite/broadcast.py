"""Broadcast variables: read-only values shared with every task."""

from __future__ import annotations

from typing import Any, Callable, Generic, TypeVar

from repro.exceptions import BroadcastError

__all__ = ["Broadcast"]

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value logically shipped once to every executor.

    Locally the value lives in process memory; under the multi-host
    executor the driver ships the serialized value to every registered
    worker exactly once, and a pickled ``Broadcast`` carries *only its
    id* — the worker-side copy rehydrates from the worker's broadcast
    store via the class-level :attr:`_resolver` hook (installed by
    :func:`repro.sparklite.netexec.run_worker`).  Either way, access is
    funneled through ``.value`` so the engine can meter broadcast usage
    and enforce the destroy-before-use contract.
    """

    #: Process-level hook mapping a broadcast id to its local value.
    #: ``None`` outside a worker: unpickling a Broadcast then raises on
    #: first ``.value`` access instead of silently shipping a copy.
    _resolver: "Callable[[int], Any] | None" = None

    def __init__(
        self,
        broadcast_id: int,
        value: T,
        memory_model=None,
        n_bytes: int = 0,
    ) -> None:
        self._id = broadcast_id
        self._value: T | None = value
        self._destroyed = False
        self._memory_model = memory_model
        self._n_bytes = n_bytes

    @property
    def id(self) -> int:
        """Engine-assigned identifier of this broadcast."""
        return self._id

    @property
    def value(self) -> T:
        """The broadcast value.

        Raises:
            BroadcastError: If the broadcast was destroyed, or if this
                is an unresolved remote handle in a process without a
                broadcast store.
        """
        if self._destroyed:
            raise BroadcastError(f"broadcast {self._id} was destroyed")
        if self._value is _UNRESOLVED:
            resolver = type(self)._resolver
            if resolver is None:
                raise BroadcastError(
                    f"broadcast {self._id} crossed a process boundary "
                    "but no broadcast store is installed here"
                )
            self._value = resolver(self._id)
        return self._value  # type: ignore[return-value]

    def __getstate__(self) -> dict:
        """Ship only the id — never the value — across the wire."""
        return {"id": self._id}

    def __setstate__(self, state: dict) -> None:
        self._id = state["id"]
        self._value = _UNRESOLVED  # type: ignore[assignment]
        self._destroyed = False
        self._memory_model = None
        self._n_bytes = 0

    def destroy(self) -> None:
        """Release the value; later ``.value`` accesses raise.

        Under a cluster memory model the executors' replicas are
        credited back.
        """
        if not self._destroyed and self._memory_model is not None:
            self._memory_model.release_broadcast(self._n_bytes)
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "live"
        return f"Broadcast(id={self._id}, {state})"


class _Unresolved:
    """Sentinel value of a Broadcast handle that crossed the wire."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unresolved broadcast value>"


_UNRESOLVED = _Unresolved()
