"""Broadcast variables: read-only values shared with every task."""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.exceptions import BroadcastError

__all__ = ["Broadcast"]

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value logically shipped once to every executor.

    In a real cluster the value is serialized and distributed; here it
    lives in process memory, but access is still funneled through
    ``.value`` so the engine can meter broadcast usage and enforce the
    destroy-before-use contract.
    """

    def __init__(
        self,
        broadcast_id: int,
        value: T,
        memory_model=None,
        n_bytes: int = 0,
    ) -> None:
        self._id = broadcast_id
        self._value: T | None = value
        self._destroyed = False
        self._memory_model = memory_model
        self._n_bytes = n_bytes

    @property
    def id(self) -> int:
        """Engine-assigned identifier of this broadcast."""
        return self._id

    @property
    def value(self) -> T:
        """The broadcast value.

        Raises:
            BroadcastError: If the broadcast was destroyed.
        """
        if self._destroyed:
            raise BroadcastError(f"broadcast {self._id} was destroyed")
        return self._value  # type: ignore[return-value]

    def destroy(self) -> None:
        """Release the value; later ``.value`` accesses raise.

        Under a cluster memory model the executors' replicas are
        credited back.
        """
        if not self._destroyed and self._memory_model is not None:
            self._memory_model.release_broadcast(self._n_bytes)
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "live"
        return f"Broadcast(id={self._id}, {state})"
