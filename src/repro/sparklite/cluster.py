"""Cluster resource modeling: executors with bounded memory.

The paper's testing environment (Section IV-A3) assigns 100 CPU cores
and 800 GB of memory in two layouts:

* **Configuration #1** — 100 executors x 1 core x 8 GB;
* **Configuration #2** — 50 executors x 2 cores x 16 GB.

RP-DBSCAN "could not run in the first configuration due to memory
limitations" while DBSCOUT "returns consistent results independently
of the used configuration".  To reproduce that finding, SparkLite can
be given a :class:`ClusterConfig`: broadcasts are charged against
*every* executor (each holds a copy) and shuffle buckets against the
executor that owns the bucket; exceeding an executor's budget raises
:class:`~repro.exceptions.ExecutorMemoryError` — the simulated OOM.

Sizes are estimated with a sampled recursive ``sys.getsizeof`` (exact
for small objects, extrapolated for large homogeneous collections), so
accounting costs O(sample) not O(data).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass

from repro.exceptions import ExecutorMemoryError, ParameterError

__all__ = [
    "ClusterConfig",
    "MemoryModel",
    "estimate_size",
    "CONFIGURATION_1",
    "CONFIGURATION_2",
]

_SAMPLE_LIMIT = 64


def estimate_size(obj, _depth: int = 0, frame_len: int | None = None) -> int:
    """Estimate the in-memory footprint of ``obj`` in bytes.

    When the object has actually been serialized for the wire,
    ``frame_len`` — the exact length of its serialized frame — is the
    ground truth and is returned as-is; sampling is the fallback for
    objects that never leave the process.

    Containers are sampled: the first ``64`` elements are measured and
    the mean is extrapolated to the full length, so huge shuffle
    buckets and broadcast tables are charged in O(1) per container.
    NumPy arrays report their true buffer size.
    """
    if frame_len is not None:
        return int(frame_len)
    import numpy as np

    if _depth > 6:  # cycles / pathological nesting: flat cost only
        return sys.getsizeof(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 128  # buffer plus header
    base = sys.getsizeof(obj)
    if isinstance(obj, dict):
        items = list(obj.items())
        sample = items[:_SAMPLE_LIMIT]
        if not sample:
            return base
        per_item = sum(
            estimate_size(k, _depth + 1) + estimate_size(v, _depth + 1)
            for k, v in sample
        ) / len(sample)
        return int(base + per_item * len(items))
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = list(obj)[:_SAMPLE_LIMIT]
        if not items:
            return base
        per_item = sum(
            estimate_size(item, _depth + 1) for item in items
        ) / len(items)
        return int(base + per_item * len(obj))
    attributes = getattr(obj, "__dict__", None)
    if attributes:
        # Custom objects (cell maps, cell indexes, ...): charge their
        # attribute payload, which is where broadcast weight lives.
        return base + estimate_size(attributes, _depth + 1)
    return base


@dataclass(frozen=True)
class ClusterConfig:
    """A fixed pool of executors with per-executor memory budgets.

    Attributes:
        n_executors: Number of executor processes.
        cores_per_executor: Cores each executor contributes (recorded
            for reporting; SparkLite's actual parallelism is the
            context's ``max_workers``).
        memory_per_executor: Memory budget per executor, in bytes.
        name: Label used in reports.
    """

    n_executors: int
    cores_per_executor: int
    memory_per_executor: int
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.n_executors < 1:
            raise ParameterError(
                f"n_executors must be >= 1, got {self.n_executors}"
            )
        if self.cores_per_executor < 1:
            raise ParameterError(
                f"cores_per_executor must be >= 1, "
                f"got {self.cores_per_executor}"
            )
        if self.memory_per_executor < 1:
            raise ParameterError(
                f"memory_per_executor must be >= 1, "
                f"got {self.memory_per_executor}"
            )

    @property
    def total_cores(self) -> int:
        return self.n_executors * self.cores_per_executor

    @property
    def total_memory(self) -> int:
        return self.n_executors * self.memory_per_executor


#: The paper's two layouts, scaled 1:1000 (8 GB -> 8 MB) so that the
#: laptop-sized workloads stress them the way the full datasets
#: stressed the real 8/16 GB executors.
CONFIGURATION_1 = ClusterConfig(
    n_executors=100,
    cores_per_executor=1,
    memory_per_executor=8 * 1024 * 1024,
    name="configuration-1",
)
CONFIGURATION_2 = ClusterConfig(
    n_executors=50,
    cores_per_executor=2,
    memory_per_executor=16 * 1024 * 1024,
    name="configuration-2",
)


class MemoryModel:
    """Tracks per-executor memory pressure for one context.

    Broadcasts are charged to every executor (each holds a replica);
    shuffle bucket ``i`` is charged to executor ``i % n_executors``.
    Destroying a broadcast credits its memory back.  Whenever a charge
    pushes an executor past its budget, :class:`ExecutorMemoryError`
    is raised (the simulated OOM); the model also records the peak for
    reporting.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self._broadcast_bytes = 0
        self._bucket_bytes = [0] * config.n_executors
        self._peak = 0
        self._lock = threading.Lock()

    def _check(self) -> None:
        worst = self._broadcast_bytes + max(self._bucket_bytes)
        self._peak = max(self._peak, worst)
        if worst > self.config.memory_per_executor:
            raise ExecutorMemoryError(
                f"executor memory exceeded under {self.config.name}: "
                f"{worst} bytes needed, "
                f"{self.config.memory_per_executor} available "
                f"(broadcasts {self._broadcast_bytes} + busiest shuffle "
                f"{max(self._bucket_bytes)})"
            )

    def charge_broadcast(self, n_bytes: int) -> None:
        """Account a broadcast replica on every executor.

        Called exactly once per broadcast: each executor budget grows
        by one replica, matching how the net executor ships the value
        once per registered worker — never once per local thread or
        per task.
        """
        with self._lock:
            self._broadcast_bytes += int(n_bytes)
            self._check()

    def release_broadcast(self, n_bytes: int) -> None:
        """Credit a destroyed broadcast back."""
        with self._lock:
            self._broadcast_bytes = max(
                0, self._broadcast_bytes - int(n_bytes)
            )

    def charge_shuffle(self, bucket_sizes: list[int]) -> None:
        """Account one shuffle's buckets on their owning executors.

        Accounting is per shuffle (the previous shuffle's buckets are
        considered spilled, as Spark's shuffle files are): live
        executor memory is the broadcast replicas plus the buckets of
        the shuffle currently materializing.
        """
        with self._lock:
            self._bucket_bytes = [0] * self.config.n_executors
            for bucket_index, n_bytes in enumerate(bucket_sizes):
                executor = bucket_index % self.config.n_executors
                self._bucket_bytes[executor] += int(n_bytes)
            self._check()

    @property
    def peak_executor_bytes(self) -> int:
        """Largest per-executor footprint seen so far."""
        with self._lock:
            return max(
                self._peak,
                self._broadcast_bytes + max(self._bucket_bytes),
            )

    def __repr__(self) -> str:
        return (
            f"MemoryModel({self.config.name}, "
            f"peak={self.peak_executor_bytes}B, "
            f"budget={self.config.memory_per_executor}B/executor)"
        )
