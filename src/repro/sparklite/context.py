"""The SparkLite driver context: entry point to the execution engine."""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.exceptions import SparkLiteError
from repro.obs import span as obs_span
from repro.sparklite.accumulator import Accumulator
from repro.sparklite.broadcast import Broadcast
from repro.sparklite.cluster import ClusterConfig, MemoryModel, estimate_size
from repro.sparklite.metrics import EngineMetrics
from repro.sparklite.rdd import RDD, _ParallelizedRDD

__all__ = ["Context", "EXECUTORS"]

T = TypeVar("T")

EXECUTORS = ("local", "net")


class Context:
    """Driver-side handle to the SparkLite engine.

    Args:
        default_parallelism: Number of partitions used when
            ``parallelize`` is not given an explicit count.
        max_workers: Number of executor threads used to compute
            partitions concurrently.  ``1`` (the default) evaluates
            sequentially, which is fully deterministic and usually
            fastest in CPython; higher values emulate multi-executor
            scheduling.  Ignored by the ``"net"`` executor.
        executor: ``"local"`` computes partitions in-process;
            ``"net"`` starts a TCP driver (see
            :mod:`repro.sparklite.netexec`) that remote worker
            processes register with, and ships partition tasks,
            broadcasts, and shuffle shards over the wire.  Results are
            bit-identical either way.
        host / port: Bind address for the ``"net"`` driver listener
            (``port=0`` picks a free port — read it back from
            ``context.net.port``).
        task_timeout: Seconds the ``"net"`` driver waits for one task
            round-trip before declaring the worker hung and re-running
            the task elsewhere (``None`` waits forever).
        straggler_threshold: A ``"net"`` worker whose task-duration
            EWMA exceeds this multiple of the cluster median is flagged
            as a suspected straggler (deprioritized for new tasks and
            counted in ``net.straggler_suspected``).
        metrics_port: When set, the ``"net"`` driver also serves
            ``GET /metrics`` (Prometheus text) and ``GET /telemetry``
            (JSON) on this HTTP port (``0`` picks a free port — read
            it back from ``context.net.metrics_http.port``).
    """

    def __init__(
        self,
        default_parallelism: int = 4,
        max_workers: int = 1,
        max_task_retries: int = 3,
        failure_injector: Callable[[Any, int, int], None] | None = None,
        cluster: "ClusterConfig | None" = None,
        executor: str = "local",
        host: str = "127.0.0.1",
        port: int = 0,
        task_timeout: float | None = None,
        straggler_threshold: float = 3.0,
        metrics_port: int | None = None,
    ) -> None:
        if default_parallelism < 1:
            raise SparkLiteError(
                f"default_parallelism must be >= 1, got {default_parallelism}"
            )
        if max_workers < 1:
            raise SparkLiteError(f"max_workers must be >= 1, got {max_workers}")
        if max_task_retries < 0:
            raise SparkLiteError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if executor not in EXECUTORS:
            raise SparkLiteError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.default_parallelism = int(default_parallelism)
        self.max_workers = int(max_workers)
        self.max_task_retries = int(max_task_retries)
        self.executor = executor
        #: Optional fault hook called as ``injector(rdd, partition,
        #: attempt)`` before each task attempt; raising
        #: :class:`~repro.exceptions.TaskFailure` makes the engine
        #: retry the task from lineage.
        self.failure_injector = failure_injector
        #: Optional per-executor memory accounting (simulated OOMs).
        self.memory_model = MemoryModel(cluster) if cluster else None
        self.metrics = EngineMetrics()
        self._next_broadcast_id = itertools.count()
        self._next_accumulator_id = itertools.count()
        #: The network driver (``executor="net"`` only).
        self.net = None
        if executor == "net":
            from repro.sparklite.netexec import NetDriver

            self.net = NetDriver(
                self,
                host=host,
                port=port,
                task_timeout=task_timeout,
                straggler_threshold=straggler_threshold,
                metrics_port=metrics_port,
            )

    # ------------------------------------------------------------------
    # Dataset creation
    # ------------------------------------------------------------------

    def parallelize(
        self,
        data: Iterable[Any],
        num_partitions: int | None = None,
        partitioner=None,
    ) -> RDD:
        """Create an RDD from driver-side data.

        Without a ``partitioner`` the records are split into even
        contiguous slices.  With one (e.g. a
        :class:`~repro.sparklite.partitioner.CellPartitioner`), records
        must be ``(key, value)`` pairs: each is routed to the shard
        ``partitioner.partition_for(key)`` picks, and the resulting
        RDD remembers the partitioner, so later shuffles by the same
        partitioner skip the data movement entirely.
        """
        records = list(data)
        if num_partitions is not None and num_partitions < 1:
            raise SparkLiteError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        n_parts = num_partitions or self.default_parallelism
        if partitioner is None:
            partitions = _split_evenly(records, n_parts)
            return _ParallelizedRDD(self, partitions)
        if partitioner.num_partitions != n_parts:
            raise SparkLiteError(
                f"partitioner covers {partitioner.num_partitions} "
                f"partitions but {n_parts} were requested"
            )
        partitions = [[] for _ in range(n_parts)]
        for record in records:
            if not isinstance(record, tuple) or len(record) != 2:
                raise SparkLiteError(
                    "parallelize with a partitioner needs (key, value) "
                    f"pair records, got {record!r}"
                )
            partitions[partitioner.partition_for(record[0])].append(record)
        rdd = _ParallelizedRDD(self, partitions)
        rdd.partitioner = partitioner
        return rdd

    def empty_rdd(self) -> RDD:
        """An RDD with a single empty partition."""
        return _ParallelizedRDD(self, [[]])

    # ------------------------------------------------------------------
    # Shared variables
    # ------------------------------------------------------------------

    def broadcast(self, value: T) -> Broadcast[T]:
        """Create a read-only broadcast variable visible to every task.

        Under the ``"net"`` executor the value is serialized once and
        the frame is shipped to every *registered worker* (charged
        once per worker in the wire metrics, and once — the
        per-executor replica — against a cluster memory budget, using
        the exact frame length rather than a sampled size estimate).

        Under a cluster memory model, the replica held by each
        executor is charged against its budget; an oversized broadcast
        raises :class:`~repro.exceptions.ExecutorMemoryError`.
        """
        self.metrics.record_broadcast()
        broadcast_id = next(self._next_broadcast_id)
        n_bytes = 0
        frame: tuple[str, bytes] | None = None
        if self.net is not None:
            from repro.net import pack_payload

            encoding, payload = pack_payload(value)
            frame = (encoding, payload)
            n_bytes = estimate_size(value, frame_len=len(payload))
        if self.memory_model is not None:
            if n_bytes == 0:
                n_bytes = estimate_size(value)
            self.memory_model.charge_broadcast(n_bytes)
        with obs_span("sparklite.broadcast", broadcast_id=broadcast_id) as sp:
            if n_bytes:
                sp.set("bytes", n_bytes)
            if frame is not None:
                self.net.ship_broadcast(broadcast_id, frame[0], frame[1])
            return Broadcast(
                broadcast_id,
                value,
                memory_model=self.memory_model,
                n_bytes=n_bytes,
            )

    def accumulator(
        self, zero: T, combine: Callable[[T, T], T] | None = None
    ) -> Accumulator[T]:
        """Create an add-only accumulator (default combine: ``+``)."""
        return Accumulator(next(self._next_accumulator_id), zero, combine)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _compute_all(self, rdd: RDD) -> list[list]:
        """Compute every partition of ``rdd``, possibly in parallel.

        With the ``"net"`` executor the partitions are computed by the
        registered remote workers; locally, a fresh thread pool per
        call avoids deadlocks when a shuffle materialization (running
        inside a worker) needs to schedule its parent's partitions.
        """
        if self.net is not None:
            return self.net.compute_all(rdd)
        indices = range(rdd.num_partitions)
        if self.max_workers == 1 or rdd.num_partitions == 1:
            return [rdd._get_partition(i) for i in indices]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(rdd._get_partition, indices))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (the net driver's listener).

        Local contexts hold nothing persistent; calling this is always
        safe and idempotent.
        """
        if self.net is not None:
            self.net.close()

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"Context(default_parallelism={self.default_parallelism}, "
            f"max_workers={self.max_workers}, executor={self.executor!r})"
        )


def _split_evenly(records: Sequence[Any], n_parts: int) -> list[list]:
    """Split ``records`` into ``n_parts`` contiguous, size-balanced lists."""
    total = len(records)
    base, extra = divmod(total, n_parts)
    partitions: list[list] = []
    start = 0
    for index in range(n_parts):
        size = base + (1 if index < extra else 0)
        partitions.append(list(records[start : start + size]))
        start += size
    return partitions
