"""Failure injectors: deterministic fault simulation for SparkLite.

An injector is any callable ``injector(rdd, partition_index, attempt)``
installed on a :class:`~repro.sparklite.Context`; raising
:class:`~repro.exceptions.TaskFailure` from it makes the engine retry
the task from lineage.  These utilities cover the two common testing
patterns: fail every first attempt (verifies recovery is exercised on
every task) and fail randomly at a given rate (verifies recovery under
realistic flakiness).
"""

from __future__ import annotations

import random
import threading

from repro.exceptions import ParameterError, TaskFailure

__all__ = ["FailFirstAttempts", "RandomFailures"]


class FailFirstAttempts:
    """Fail the first ``n_failures`` attempts of every task.

    With ``n_failures=1`` each task fails once and then succeeds — the
    strongest deterministic exercise of the retry path.
    """

    def __init__(self, n_failures: int = 1) -> None:
        if n_failures < 0:
            raise ParameterError(
                f"n_failures must be >= 0, got {n_failures}"
            )
        self.n_failures = int(n_failures)
        self.injected = 0
        self._lock = threading.Lock()

    def __call__(self, rdd, partition_index: int, attempt: int) -> None:
        if attempt < self.n_failures:
            with self._lock:
                self.injected += 1
            raise TaskFailure(
                f"injected failure (attempt {attempt}) on partition "
                f"{partition_index} of {type(rdd).__name__}"
            )


class RandomFailures:
    """Fail each task attempt independently with probability ``rate``.

    Deterministic given the seed: the decision depends on
    ``(partition_index, attempt, draw_counter)`` only through an
    internal seeded RNG, so a failing run can be replayed.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ParameterError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.injected = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def __call__(self, rdd, partition_index: int, attempt: int) -> None:
        with self._lock:
            fail = self._rng.random() < self.rate
            if fail:
                self.injected += 1
        if fail:
            raise TaskFailure(
                f"random injected failure on partition {partition_index} "
                f"(attempt {attempt})"
            )
