"""Execution metrics collected by the SparkLite engine.

The experiment harness uses these counters to reason about
communication volume (records crossing a shuffle boundary) and task
counts, mirroring what the paper reads off the Spark web UI.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["EngineMetrics"]


@dataclass
class EngineMetrics:
    """Mutable counter set for one :class:`~repro.sparklite.Context`.

    Attributes:
        tasks_executed: Number of partition-level tasks computed
            (cache hits do not count).
        shuffles: Number of shuffle stages materialized.
        records_shuffled: Total records that crossed a shuffle boundary.
        broadcasts: Number of broadcast variables created.
        collects: Number of actions that returned data to the driver.
        task_retries: Task attempts re-executed after a transient
            :class:`~repro.exceptions.TaskFailure`.

    Under the multi-host executor (:mod:`repro.sparklite.netexec`) the
    ``net_*`` counters meter the wire: bytes sent/received by the
    driver, tasks shipped to remote workers, broadcast replica bytes
    (once per registered worker), worker failures, lineage re-runs of
    lost in-flight tasks, and cumulative task round-trip latency.
    They surface in snapshots under dotted ``net.*`` names (and hence
    in run records as ``sparklite.net.*``) only once any network
    activity happened, so purely local runs keep their historical
    counter set.
    """

    tasks_executed: int = 0
    shuffles: int = 0
    records_shuffled: int = 0
    broadcasts: int = 0
    collects: int = 0
    task_retries: int = 0
    net_bytes_out: int = 0
    net_bytes_in: int = 0
    net_tasks: int = 0
    net_broadcast_bytes_out: int = 0
    net_worker_failures: int = 0
    net_lineage_reruns: int = 0
    net_task_seconds: float = 0.0
    net_stragglers: int = 0
    #: Free-form dotted counters (the telemetry harvest's
    #: ``worker.<id>.*`` / ``worker.*`` totals land here); they flow
    #: through :meth:`snapshot` / :meth:`delta` like the fixed fields.
    extra: dict[str, int | float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_tasks(self, count: int) -> None:
        with self._lock:
            self.tasks_executed += count

    def record_shuffle(self, records: int) -> None:
        with self._lock:
            self.shuffles += 1
            self.records_shuffled += records

    def record_broadcast(self) -> None:
        with self._lock:
            self.broadcasts += 1

    def record_collect(self) -> None:
        with self._lock:
            self.collects += 1

    def record_retry(self) -> None:
        with self._lock:
            self.task_retries += 1

    def record_net_sent(self, n_bytes: int) -> None:
        with self._lock:
            self.net_bytes_out += int(n_bytes)

    def record_net_received(self, n_bytes: int) -> None:
        with self._lock:
            self.net_bytes_in += int(n_bytes)

    def record_net_task(self, seconds: float) -> None:
        with self._lock:
            self.net_tasks += 1
            self.net_task_seconds += float(seconds)

    def record_net_broadcast(self, n_bytes: int) -> None:
        with self._lock:
            self.net_broadcast_bytes_out += int(n_bytes)

    def record_net_worker_failure(self) -> None:
        with self._lock:
            self.net_worker_failures += 1

    def record_net_rerun(self, n_tasks: int = 1) -> None:
        with self._lock:
            self.net_lineage_reruns += int(n_tasks)

    def record_net_straggler(self) -> None:
        with self._lock:
            self.net_stragglers += 1

    def record_extra(self, name: str, delta: int | float) -> None:
        """Accumulate a free-form dotted counter (e.g. ``worker.*``)."""
        with self._lock:
            self.extra[name] = self.extra.get(name, 0) + delta

    def snapshot(self) -> dict[str, int | float]:
        """Return a plain-dict copy of all counters.

        The ``net.*`` entries appear only once the network executor
        has moved bytes or tasks, keeping local snapshots unchanged.
        """
        with self._lock:
            out: dict[str, int | float] = {
                "tasks_executed": self.tasks_executed,
                "shuffles": self.shuffles,
                "records_shuffled": self.records_shuffled,
                "broadcasts": self.broadcasts,
                "collects": self.collects,
                "task_retries": self.task_retries,
            }
            if (
                self.net_tasks
                or self.net_bytes_out
                or self.net_bytes_in
                or self.net_worker_failures
            ):
                out.update(
                    {
                        "net.bytes_out": self.net_bytes_out,
                        "net.bytes_in": self.net_bytes_in,
                        "net.tasks": self.net_tasks,
                        "net.broadcast_bytes_out": (
                            self.net_broadcast_bytes_out
                        ),
                        "net.worker_failures": self.net_worker_failures,
                        "net.lineage_reruns": self.net_lineage_reruns,
                        "net.task_seconds": round(
                            self.net_task_seconds, 6
                        ),
                        "net.straggler_suspected": self.net_stragglers,
                    }
                )
            out.update(self.extra)
            return out

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter growth since an earlier :meth:`snapshot`.

        This is how a run on a shared, externally supplied context
        reports *its own* work: snapshot before, delta after, while
        the context keeps its cumulative totals.
        """
        return {
            key: value - before.get(key, 0)
            for key, value in self.snapshot().items()
        }

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self.tasks_executed = 0
            self.shuffles = 0
            self.records_shuffled = 0
            self.broadcasts = 0
            self.collects = 0
            self.task_retries = 0
            self.net_bytes_out = 0
            self.net_bytes_in = 0
            self.net_tasks = 0
            self.net_broadcast_bytes_out = 0
            self.net_worker_failures = 0
            self.net_lineage_reruns = 0
            self.net_task_seconds = 0.0
            self.net_stragglers = 0
            self.extra.clear()

    @staticmethod
    def qualify(counters: dict[str, int | float]) -> dict[str, int | float]:
        """Run-record-qualified names for a snapshot or delta.

        Bare substrate counters and dotted ``net.*`` counters get the
        ``sparklite.`` prefix (``tasks_executed`` ->
        ``sparklite.tasks_executed``, ``net.bytes_out`` ->
        ``sparklite.net.bytes_out``); harvested ``worker.*`` telemetry
        counters keep their own top-level namespace.
        """
        return {
            key if key.startswith("worker.") else f"sparklite.{key}": value
            for key, value in counters.items()
        }
