"""Execution metrics collected by the SparkLite engine.

The experiment harness uses these counters to reason about
communication volume (records crossing a shuffle boundary) and task
counts, mirroring what the paper reads off the Spark web UI.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["EngineMetrics"]


@dataclass
class EngineMetrics:
    """Mutable counter set for one :class:`~repro.sparklite.Context`.

    Attributes:
        tasks_executed: Number of partition-level tasks computed
            (cache hits do not count).
        shuffles: Number of shuffle stages materialized.
        records_shuffled: Total records that crossed a shuffle boundary.
        broadcasts: Number of broadcast variables created.
        collects: Number of actions that returned data to the driver.
        task_retries: Task attempts re-executed after a transient
            :class:`~repro.exceptions.TaskFailure`.
    """

    tasks_executed: int = 0
    shuffles: int = 0
    records_shuffled: int = 0
    broadcasts: int = 0
    collects: int = 0
    task_retries: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_tasks(self, count: int) -> None:
        with self._lock:
            self.tasks_executed += count

    def record_shuffle(self, records: int) -> None:
        with self._lock:
            self.shuffles += 1
            self.records_shuffled += records

    def record_broadcast(self) -> None:
        with self._lock:
            self.broadcasts += 1

    def record_collect(self) -> None:
        with self._lock:
            self.collects += 1

    def record_retry(self) -> None:
        with self._lock:
            self.task_retries += 1

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of all counters."""
        with self._lock:
            return {
                "tasks_executed": self.tasks_executed,
                "shuffles": self.shuffles,
                "records_shuffled": self.records_shuffled,
                "broadcasts": self.broadcasts,
                "collects": self.collects,
                "task_retries": self.task_retries,
            }

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter growth since an earlier :meth:`snapshot`.

        This is how a run on a shared, externally supplied context
        reports *its own* work: snapshot before, delta after, while
        the context keeps its cumulative totals.
        """
        return {
            key: value - before.get(key, 0)
            for key, value in self.snapshot().items()
        }

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self.tasks_executed = 0
            self.shuffles = 0
            self.records_shuffled = 0
            self.broadcasts = 0
            self.collects = 0
            self.task_retries = 0
