"""Multi-host SparkLite: TCP driver and worker executor processes.

This module turns the in-process SparkLite engine into a real (small)
cluster runtime.  A :class:`NetDriver` — owned by a
:class:`~repro.sparklite.Context` built with ``executor="net"`` —
listens on a TCP port; worker processes started with ``repro workers
--connect HOST:PORT`` (or :func:`run_worker`) register with it.  Jobs
then execute remotely:

* Each partition of an RDD lineage is *flattened* into one task — the
  chain of narrow per-partition functions down to a leaf (parallelized
  data, a materialized shuffle bucket, or a cached partition) — and
  shipped to the least-loaded worker.  Closures travel cloudpickled;
  leaf/bucket/result payloads travel as length-prefixed binary frames
  (``.npz`` for arrays — raw float64 buffers, never JSON floats).
* Shuffles materialize on the driver (every SparkLite shuffle is
  driver-coordinated), so the buckets a shuffle produces cross the
  wire as the leaf payloads of downstream tasks.
* Broadcast values ship once per registered worker at creation time
  (and replay to workers that register later); tasks reference them by
  id only (:class:`~repro.sparklite.broadcast.Broadcast` pickles to
  its id, and each worker resolves ids against its local store).

Failure semantics mirror Spark's lineage model:

* A remote :class:`~repro.exceptions.TaskFailure` is retried from
  lineage up to the context's ``max_task_retries``.
* A worker that disconnects (or exceeds ``task_timeout`` on a task)
  is declared lost; its in-flight tasks re-run on surviving workers,
  up to :data:`MAX_WORKER_RERUNS` re-runs per task, after which the
  job fails with :class:`~repro.exceptions.SparkLiteError`.  With no
  live worker left the driver waits ``REREGISTER_GRACE`` seconds for
  a (re)registration before giving up.

Every byte in or out is metered in the context's
:class:`~repro.sparklite.metrics.EngineMetrics` (the ``net.*``
counters), so benchmarks can report communication volume next to the
record-level shuffle counters.

The results are bit-identical to the local executor: tasks run the
very same per-partition closures over the very same partition
contents, only in a different process.
"""

from __future__ import annotations

import asyncio
import os
import socket
import statistics
import subprocess
import sys
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import SparkLiteError, TaskFailure
from repro.net import (
    HAVE_CLOUDPICKLE,
    MAX_LINE_BYTES,
    error_payload,
    exception_from_payload,
    ok_payload,
    pack_closure,
    pack_payload,
    read_message,
    send_message,
    unpack_closure,
    unpack_payload,
)
from repro.obs import SpanRecord, TraceContext, Tracer
from repro.obs import propagation_context as obs_propagation_context
from repro.obs import span as obs_span
from repro.obs.expose import MetricsHTTPServer, telemetry_text
from repro.obs.trace import current_tracer
from repro.sparklite.broadcast import Broadcast
from repro.sparklite.metrics import EngineMetrics
from repro.sparklite.rdd import (
    RDD,
    _MapPartitionsRDD,
    _ParallelizedRDD,
    _ShuffledRDD,
    _UnionRDD,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparklite.context import Context

__all__ = ["NetDriver", "LoopbackCluster", "run_worker", "MAX_WORKER_RERUNS"]

#: How many times one task may be re-run because the worker holding it
#: was lost, before the job fails.
MAX_WORKER_RERUNS = 3

#: Seconds the driver waits for a worker to (re)register when a job
#: needs one and none is alive.
REREGISTER_GRACE = 10.0

#: Smoothing factor of the per-worker task-duration EWMA the straggler
#: detector runs on (higher = reacts faster, forgets sooner).
STRAGGLER_EWMA_ALPHA = 0.3

#: Completed tasks a worker needs before its EWMA is trusted enough to
#: enter the straggler comparison.
STRAGGLER_MIN_TASKS = 3

#: Floor (seconds) on the peer-median a worker is judged against.
#: Sub-millisecond loopback tasks show 3x-10x relative jitter as a
#: matter of course; below this scale nothing is a straggler.
STRAGGLER_MIN_MEDIAN_S = 0.005


class _WorkerLost(Exception):
    """Internal: the worker holding a task died or timed out."""


class _WorkerConn:
    """Driver-side state of one registered worker connection."""

    def __init__(
        self,
        name: str,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.name = name
        self.writer = writer
        self.alive = True
        #: task key -> future resolved by the connection's reader loop.
        self.futures: dict[int, asyncio.Future] = {}
        self.send_lock = asyncio.Lock()
        # -- telemetry (driver-side view, maintained on the loop) ------
        self.tasks_done = 0
        self.task_seconds = 0.0
        #: EWMA of task round-trip seconds (None until the first task).
        self.ewma_s: float | None = None
        #: Currently suspected straggler (EWMA >> cluster median).
        self.straggler = False
        self.bytes_to = 0
        self.bytes_from = 0

    def telemetry(self) -> dict[str, Any]:
        """JSON-safe live state row for the telemetry snapshot."""
        return {
            "name": self.name,
            "alive": self.alive,
            "inflight": len(self.futures),
            "tasks": self.tasks_done,
            "task_seconds": round(self.task_seconds, 6),
            "ewma_ms": (
                round(self.ewma_s * 1e3, 3)
                if self.ewma_s is not None
                else None
            ),
            "straggler": self.straggler,
            "bytes_out": self.bytes_to,
            "bytes_in": self.bytes_from,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "lost"
        return (
            f"_WorkerConn({self.name!r}, {state}, "
            f"inflight={len(self.futures)})"
        )


class NetDriver:
    """TCP job driver for ``Context(executor="net")``.

    Runs an asyncio server on a background thread; the public methods
    (:meth:`compute_all`, :meth:`ship_broadcast`,
    :meth:`wait_for_workers`, :meth:`close`) are called from ordinary
    threads and bridge into the loop.
    """

    def __init__(
        self,
        context: "Context",
        host: str = "127.0.0.1",
        port: int = 0,
        task_timeout: float | None = None,
        straggler_threshold: float = 3.0,
        metrics_port: int | None = None,
    ) -> None:
        if not HAVE_CLOUDPICKLE:
            raise SparkLiteError(
                "executor='net' needs cloudpickle to ship task closures; "
                "install it or use executor='local'"
            )
        self.context = context
        self.host = host
        self.port = port
        self.task_timeout = task_timeout
        #: A worker whose task-duration EWMA exceeds this multiple of
        #: the cluster median is suspected as a straggler.
        self.straggler_threshold = straggler_threshold
        self._closed = False
        self._workers: dict[int, _WorkerConn] = {}
        self._next_conn_id = 0
        self._next_task_key = 0
        #: broadcast id -> (encoding, frame), replayed to late joiners.
        self._broadcasts: dict[int, tuple[str, bytes]] = {}
        self._worker_event: asyncio.Event | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="sparklite-net-driver",
            daemon=True,
        )
        self._thread.start()
        self._call(self._start_server(), timeout=30.0)
        self.metrics_http: MetricsHTTPServer | None = None
        if metrics_port is not None:
            self.metrics_http = MetricsHTTPServer(
                self.telemetry_snapshot, host=self.host, port=metrics_port
            )

    # ------------------------------------------------------------------
    # Thread <-> loop bridge
    # ------------------------------------------------------------------

    def _call(self, coro, timeout: float | None = None):
        """Run a coroutine on the driver loop from a plain thread."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    async def _start_server(self) -> None:
        self._worker_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Number of currently registered, live workers."""
        return sum(1 for w in self._workers.values() if w.alive)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers are registered and alive."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if self.n_workers >= count:
                return
            if remaining <= 0:
                raise SparkLiteError(
                    f"only {self.n_workers}/{count} workers registered "
                    f"within {timeout:.1f}s"
                )
            try:
                self._call(
                    self._await_worker_event(min(remaining, 0.5)),
                    timeout=remaining + 5.0,
                )
            except Exception as exc:  # pragma: no cover - loop stuck
                raise SparkLiteError(
                    "driver event loop unresponsive while waiting "
                    "for workers"
                ) from exc

    async def _await_worker_event(self, timeout: float) -> None:
        event = self._worker_event
        assert event is not None
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            return
        event.clear()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Accept a connection: a worker ``register`` or a monitor.

        Worker connections are metered in the ``net.*`` counters; a
        monitor connection (first op ``telemetry``) is *not* — its
        traffic is observation, not work, and metering it would make
        the act of scraping perturb the byte counters it reports.
        """
        worker: _WorkerConn | None = None
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        try:
            message = await read_message(reader)
            if message is None:
                return
            payload, _frames, n_bytes = message
            if payload.get("op") == "telemetry":
                await self._monitor_loop(reader, writer, payload)
                return
            if payload.get("op") != "register":
                await send_message(
                    writer,
                    error_payload(
                        payload.get("id"),
                        SparkLiteError(
                            "expected a register message, got "
                            f"{payload.get('op')!r}"
                        ),
                        default_type="SparkLiteError",
                    ),
                )
                return
            self.context.metrics.record_net_received(n_bytes)
            worker = _WorkerConn(
                str(payload.get("name") or f"worker-{conn_id}"), writer
            )
            self._workers[conn_id] = worker
            sent = await send_message(
                writer, ok_payload(payload.get("id"), op="welcome")
            )
            # Replay broadcasts created before this worker arrived.
            for bid, (encoding, frame) in sorted(self._broadcasts.items()):
                sent += await send_message(
                    writer,
                    {"op": "broadcast", "bid": bid, "enc": encoding},
                    frames=[frame],
                )
                self.context.metrics.record_net_broadcast(len(frame))
            self.context.metrics.record_net_sent(sent)
            worker.bytes_to += sent
            event = self._worker_event
            assert event is not None
            event.set()
            await self._reader_loop(worker, reader)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            if worker is not None:
                self._mark_lost(conn_id, worker)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _monitor_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: dict[str, Any],
    ) -> None:
        """Serve telemetry snapshots to one monitor until it hangs up."""
        payload: dict[str, Any] | None = first
        while payload is not None:
            if payload.get("op") != "telemetry":
                await send_message(
                    writer,
                    error_payload(
                        payload.get("id"),
                        SparkLiteError(
                            f"unknown monitor op {payload.get('op')!r}"
                        ),
                        default_type="SparkLiteError",
                    ),
                )
                return
            snapshot = self._telemetry_now()
            await send_message(
                writer,
                ok_payload(
                    payload.get("id"),
                    telemetry=snapshot,
                    text=telemetry_text(snapshot),
                ),
            )
            message = await read_message(reader)
            payload = message[0] if message is not None else None

    async def _reader_loop(
        self, worker: _WorkerConn, reader: asyncio.StreamReader
    ) -> None:
        """Dispatch every response from ``worker`` to its task future."""
        while True:
            message = await read_message(reader)
            if message is None:
                return
            payload, frames, n_bytes = message
            self.context.metrics.record_net_received(n_bytes)
            worker.bytes_from += n_bytes
            key = payload.get("task")
            future = worker.futures.pop(key, None) if key is not None else None
            if future is None or future.done():
                continue
            if payload.get("ok"):
                future.set_result((payload, frames))
            else:
                future.set_exception(
                    exception_from_payload(payload, default=SparkLiteError)
                )

    def _mark_lost(self, conn_id: int, worker: _WorkerConn) -> None:
        """Fail a worker's in-flight tasks so the job re-runs them."""
        self._workers.pop(conn_id, None)
        if not worker.alive:
            return
        worker.alive = False
        pending = list(worker.futures.values())
        worker.futures.clear()
        if pending and not self._closed:
            self.context.metrics.record_net_worker_failure()
        for future in pending:
            if not future.done():
                future.set_exception(
                    _WorkerLost(f"worker {worker.name!r} was lost")
                )

    # ------------------------------------------------------------------
    # Broadcasts
    # ------------------------------------------------------------------

    def ship_broadcast(
        self, broadcast_id: int, encoding: str, frame: bytes
    ) -> None:
        """Ship one serialized broadcast value to every live worker.

        The frame is charged once per *registered worker* — never per
        local thread — in ``net.broadcast_bytes_out``, and kept for
        replay to workers that register later.
        """
        self._call(self._ship_broadcast(broadcast_id, encoding, frame))

    async def _ship_broadcast(
        self, broadcast_id: int, encoding: str, frame: bytes
    ) -> None:
        self._broadcasts[broadcast_id] = (encoding, frame)
        for worker in list(self._workers.values()):
            if not worker.alive:
                continue
            try:
                async with worker.send_lock:
                    sent = await send_message(
                        worker.writer,
                        {
                            "op": "broadcast",
                            "bid": broadcast_id,
                            "enc": encoding,
                        },
                        frames=[frame],
                    )
            except (ConnectionResetError, BrokenPipeError, OSError):
                continue  # reader loop will mark the worker lost
            self.context.metrics.record_net_sent(sent)
            self.context.metrics.record_net_broadcast(len(frame))
            worker.bytes_to += sent

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------

    def compute_all(self, rdd: RDD) -> list[list]:
        """Compute every partition of ``rdd`` on the remote workers."""
        if self._closed:
            raise SparkLiteError("the net driver is closed")
        if rdd._cache_enabled:
            with rdd._cache_lock:
                cached = rdd._cached
                if cached is not None and len(cached) == rdd.num_partitions:
                    return [cached[i] for i in range(rdd.num_partitions)]
        # Flattening runs on the calling thread: materializing shuffle
        # ancestors re-enters compute_all for the parent lineage.
        tasks = [
            (index, *self._flatten(rdd, index))
            for index in range(rdd.num_partitions)
        ]
        # Trace context is captured here, on the calling thread — the
        # asyncio loop thread has no span stack of its own.  When
        # tracing is off this is None and tasks carry no trace field
        # (the PR-2 invariant: telemetry off = zero added frame bytes).
        trace_ctx = obs_propagation_context()
        tracer = current_tracer() if trace_ctx is not None else None
        results = self._call(self._run_job(rdd, tasks, tracer, trace_ctx))
        if rdd._cache_enabled:
            with rdd._cache_lock:
                if rdd._cached is None:
                    rdd._cached = {}
                for index, data in enumerate(results):
                    rdd._cached[index] = data
        return results

    def _flatten(
        self, rdd: RDD, index: int
    ) -> tuple[list[tuple[Callable, int]], list]:
        """Flatten partition ``index`` of ``rdd`` into one task.

        Returns ``(funcs, leaf)``: applying each ``(func,
        partition_index)`` of ``funcs`` in order to ``leaf`` yields the
        partition.  Shuffle ancestors are materialized on the driver
        (recursively scheduling their parent lineage over the
        cluster); cached ancestors act as barriers and contribute their
        cached data as the leaf.
        """
        funcs: list[tuple[Callable, int]] = []
        node: RDD = rdd
        node_index = index
        while True:
            if node is not rdd and node._cache_enabled:
                leaf = self._cached_partition(node, node_index)
                break
            if isinstance(node, _MapPartitionsRDD):
                funcs.append((node._func, node_index))
                node = node._parent
                continue
            if isinstance(node, _UnionRDD):
                if node_index < node._left.num_partitions:
                    node = node._left
                else:
                    node_index -= node._left.num_partitions
                    node = node._right
                continue
            if isinstance(node, _ShuffledRDD):
                leaf = node._materialize_shuffle()[node_index]
                break
            if isinstance(node, _ParallelizedRDD):
                leaf = node._data[node_index]
                break
            # Unknown node type: compute it on the driver and treat the
            # result as a leaf — correctness first, locality second.
            leaf = node._get_partition(node_index)
            break
        funcs.reverse()
        return funcs, leaf

    def _cached_partition(self, node: RDD, index: int) -> list:
        with node._cache_lock:
            cached = node._cached
            hit = cached.get(index) if cached is not None else None
        if hit is not None:
            return hit
        # Compute the whole cached ancestor as its own job; compute_all
        # fills its cache, so sibling partitions hit next time around.
        return self.compute_all(node)[index]

    async def _run_job(
        self,
        rdd: RDD,
        tasks: list[tuple[int, list[tuple[Callable, int]], list]],
        tracer: Tracer | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> list[list]:
        results = await asyncio.gather(
            *(
                self._run_task(rdd, index, funcs, leaf, tracer, trace_ctx)
                for index, funcs, leaf in tasks
            )
        )
        return list(results)

    async def _run_task(
        self,
        rdd: RDD,
        index: int,
        funcs: list[tuple[Callable, int]],
        leaf: list,
        tracer: Tracer | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> list:
        """Run one task with retry (TaskFailure) and re-run (lost worker)."""
        closure_blob = pack_closure(funcs)
        payload_encoding, payload_frame = pack_payload(leaf)
        attempts = 0
        reruns = 0
        while True:
            worker = await self._acquire_worker()
            self.context.metrics.record_tasks(1)
            try:
                injector = self.context.failure_injector
                if injector is not None:
                    injector(rdd, index, attempts)
                return await self._dispatch(
                    worker,
                    closure_blob,
                    payload_encoding,
                    payload_frame,
                    tracer,
                    trace_ctx,
                )
            except TaskFailure:
                attempts += 1
                self.context.metrics.record_retry()
                if attempts > self.context.max_task_retries:
                    raise
            except _WorkerLost:
                reruns += 1
                self.context.metrics.record_net_rerun()
                if reruns > MAX_WORKER_RERUNS:
                    raise SparkLiteError(
                        f"partition {index} was re-run {MAX_WORKER_RERUNS} "
                        "times after worker losses and still did not "
                        "complete"
                    ) from None

    async def _acquire_worker(self) -> _WorkerConn:
        """The least-loaded live worker; waits briefly when none exist.

        Suspected stragglers sort after everyone else, so they only
        receive work when every healthy worker is at least as loaded.
        """
        deadline = time.monotonic() + REREGISTER_GRACE
        while True:
            alive = [w for w in self._workers.values() if w.alive]
            if alive:
                return min(alive, key=lambda w: (w.straggler, len(w.futures)))
            if self._closed:
                raise SparkLiteError("the net driver is closed")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SparkLiteError(
                    "no live workers: start some with "
                    f"'repro workers --connect {self.host}:{self.port}'"
                )
            await self._await_worker_event(min(remaining, 0.5))

    def _declare_dead(self, worker: _WorkerConn, reason: str) -> None:
        """Stop routing to ``worker`` and fail its in-flight tasks.

        Used when the driver notices the loss first (a failed send or
        a task timeout) — before the reader loop sees the EOF.  Without
        flipping ``alive`` here, a dead worker with an empty in-flight
        map looks like the *least-loaded* worker and re-runs ping-pong
        into it until the re-run budget is exhausted.
        """
        if not worker.alive:
            return
        worker.alive = False
        self.context.metrics.record_net_worker_failure()
        try:
            worker.writer.close()
        except Exception:  # pragma: no cover - already severed
            pass
        for other in list(worker.futures.values()):
            if not other.done():
                other.set_exception(_WorkerLost(reason))
        worker.futures.clear()

    async def _dispatch(
        self,
        worker: _WorkerConn,
        closure_blob: bytes,
        payload_encoding: str,
        payload_frame: bytes,
        tracer: Tracer | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> list:
        """Ship one task to ``worker`` and await its result frames.

        With an active trace context the task message carries a
        ``trace`` field; the worker then runs the task under its own
        tracer and ships spans + counter deltas back inside the result
        payload, which :meth:`_harvest` grafts into the driver's span
        tree and merges into the context metrics.
        """
        key = self._next_task_key
        self._next_task_key += 1
        future: asyncio.Future = self._loop.create_future()
        worker.futures[key] = future
        message: dict[str, Any] = {
            "op": "task",
            "task": key,
            "enc": payload_encoding,
        }
        if trace_ctx is not None:
            message["trace"] = trace_ctx.to_wire()
        started = time.monotonic()
        started_perf = time.perf_counter()
        try:
            async with worker.send_lock:
                sent = await send_message(
                    worker.writer,
                    message,
                    frames=[closure_blob, payload_frame],
                )
            self.context.metrics.record_net_sent(sent)
            worker.bytes_to += sent
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            worker.futures.pop(key, None)
            self._declare_dead(
                worker, f"send to worker {worker.name!r} failed: {exc}"
            )
            raise _WorkerLost(str(exc)) from None
        try:
            if self.task_timeout is not None:
                payload, frames = await asyncio.wait_for(
                    future, self.task_timeout
                )
            else:
                payload, frames = await future
        except asyncio.TimeoutError:
            worker.futures.pop(key, None)
            self._declare_dead(worker, f"worker {worker.name!r} timed out")
            raise _WorkerLost(
                f"worker {worker.name!r} exceeded the "
                f"{self.task_timeout:.1f}s task timeout"
            ) from None
        elapsed = time.monotonic() - started
        self.context.metrics.record_net_task(elapsed)
        self._note_task_time(worker, elapsed)
        if tracer is not None and trace_ctx is not None:
            telemetry = payload.get("telemetry")
            if telemetry:
                self._harvest(
                    worker, tracer, trace_ctx, started_perf, telemetry
                )
        if not frames:
            raise SparkLiteError(
                f"worker {worker.name!r} returned no result frame"
            )
        return list(unpack_payload(payload.get("enc", "pickle"), frames[0]))

    def _harvest(
        self,
        worker: _WorkerConn,
        tracer: Tracer,
        trace_ctx: TraceContext,
        started_perf: float,
        telemetry: dict[str, Any],
    ) -> None:
        """Graft one task's remote spans and merge its counter deltas.

        Remote span clocks start at the worker tracer's epoch (task
        start), so offsetting them by the dispatch time on the driver's
        ``perf_counter`` timeline places them where the task actually
        ran.  Counters land twice: per-worker under
        ``worker.<id>.<name>`` and pre-aggregated under
        ``worker.<name>``.
        """
        host = telemetry.get("host")
        spans = [
            SpanRecord.from_dict(item)
            for item in telemetry.get("spans", ())
        ]
        if spans:
            tracer.graft(
                spans,
                parent_id=trace_ctx.parent_id,
                base_depth=trace_ctx.depth,
                start_offset_s=started_perf - tracer.epoch,
                tags={"worker_id": worker.name, "host": host},
            )
        for name, value in (telemetry.get("counters") or {}).items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            self.context.metrics.record_extra(
                f"worker.{worker.name}.{name}", value
            )
            self.context.metrics.record_extra(f"worker.{name}", value)

    def _note_task_time(self, worker: _WorkerConn, elapsed: float) -> None:
        """Fold one task round-trip into the worker's EWMA and re-check
        the cluster for stragglers."""
        worker.tasks_done += 1
        worker.task_seconds += elapsed
        if worker.ewma_s is None:
            worker.ewma_s = elapsed
        else:
            worker.ewma_s += STRAGGLER_EWMA_ALPHA * (elapsed - worker.ewma_s)
        self._update_stragglers()

    def _update_stragglers(self) -> None:
        """Flag workers whose EWMA exceeds ``threshold``x the median.

        Each worker is judged against the median EWMA of the *other*
        candidate workers: an inclusive median is dragged up by the
        straggler itself, which on a two-worker cluster caps the ratio
        near 2x and makes a 3x threshold unreachable.  Needs at least
        two candidate workers with :data:`STRAGGLER_MIN_TASKS`
        completed tasks each.  Flagging emits a
        ``net.straggler_suspected`` counter tick and a zero-length
        span event; recovery silently unflags.
        """
        candidates = [
            w
            for w in self._workers.values()
            if w.alive
            and w.ewma_s is not None
            and w.tasks_done >= STRAGGLER_MIN_TASKS
        ]
        if len(candidates) < 2:
            return
        for w in candidates:
            median = statistics.median(
                o.ewma_s for o in candidates if o is not w
            )
            if median < STRAGGLER_MIN_MEDIAN_S:
                continue
            slow = w.ewma_s > self.straggler_threshold * median
            if slow and not w.straggler:
                self.context.metrics.record_net_straggler()
                with obs_span(
                    "net.straggler_suspected",
                    worker_id=w.name,
                    ewma_ms=round(w.ewma_s * 1e3, 3),
                    median_ms=round(median * 1e3, 3),
                ):
                    pass
            w.straggler = slow

    # ------------------------------------------------------------------
    # Telemetry exposition
    # ------------------------------------------------------------------

    def telemetry_snapshot(self) -> dict[str, Any]:
        """Live cluster state + counters, JSON-safe (thread-safe)."""
        return self._call(self._telemetry_async(), timeout=10.0)

    async def _telemetry_async(self) -> dict[str, Any]:
        return self._telemetry_now()

    def _telemetry_now(self) -> dict[str, Any]:
        """Build the snapshot on the loop thread (no await points)."""
        workers = [
            w.telemetry()
            for _, w in sorted(self._workers.items())
        ]
        return {
            "kind": "netdriver",
            "host": self.host,
            "port": self.port,
            "n_workers": sum(1 for w in workers if w["alive"]),
            "straggler_threshold": self.straggler_threshold,
            "counters": EngineMetrics.qualify(
                self.context.metrics.snapshot()
            ),
            "workers": workers,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut workers down, stop the listener and the loop (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.metrics_http is not None:
            try:
                self.metrics_http.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self.metrics_http = None
        try:
            self._call(self._shutdown(), timeout=10.0)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():  # pragma: no branch
            self._loop.close()

    async def _shutdown(self) -> None:
        for worker in list(self._workers.values()):
            if not worker.alive:
                continue
            try:
                async with worker.send_lock:
                    await send_message(worker.writer, {"op": "shutdown"})
                worker.writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def __repr__(self) -> str:
        return (
            f"NetDriver({self.host}:{self.port}, "
            f"workers={self.n_workers})"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def run_worker(
    host: str,
    port: int,
    name: str | None = None,
) -> None:
    """Connect to a driver and execute tasks until it says shutdown.

    This is the body of one ``repro workers`` process: it registers,
    installs the process-local broadcast store, then loops over
    ``broadcast`` / ``task`` / ``shutdown`` messages.  Task errors are
    reported back as typed error payloads — a
    :class:`~repro.exceptions.TaskFailure` makes the driver retry from
    lineage, any other library error propagates to the driver's caller
    as the same exception type.
    """
    if not HAVE_CLOUDPICKLE:
        raise SparkLiteError(
            "a net worker needs cloudpickle to load task closures"
        )
    asyncio.run(_worker_main(host, port, name or f"worker-{os.getpid()}"))


async def _worker_main(host: str, port: int, name: str) -> None:
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES
    )
    store: dict[int, Any] = {}
    Broadcast._resolver = lambda bid: _resolve_broadcast(store, bid)
    try:
        await send_message(writer, {"op": "register", "name": name})
        welcome = await read_message(reader)
        if welcome is None or not welcome[0].get("ok"):
            raise SparkLiteError(
                f"driver at {host}:{port} rejected registration"
            )
        while True:
            message = await read_message(reader)
            if message is None:
                return
            payload, frames, _n_bytes = message
            op = payload.get("op")
            if op == "shutdown":
                return
            if op == "broadcast":
                store[int(payload["bid"])] = unpack_payload(
                    payload.get("enc", "pickle"), frames[0]
                )
                continue
            if op == "task":
                await _run_worker_task(writer, payload, frames)
                continue
            if op == "ping":
                await send_message(
                    writer, ok_payload(payload.get("id"), op="pong")
                )
                continue
            await send_message(
                writer,
                error_payload(
                    payload.get("id"),
                    SparkLiteError(f"unknown op {op!r}"),
                    default_type="SparkLiteError",
                ),
            )
    finally:
        Broadcast._resolver = None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def _resolve_broadcast(store: dict[int, Any], broadcast_id: int) -> Any:
    from repro.exceptions import BroadcastError

    try:
        return store[broadcast_id]
    except KeyError:
        raise BroadcastError(
            f"broadcast {broadcast_id} was never shipped to this worker"
        ) from None


async def _run_worker_task(
    writer: asyncio.StreamWriter,
    payload: dict[str, Any],
    frames: list[bytes],
) -> None:
    """Execute one task; with a ``trace`` field, also record telemetry.

    A traced task runs under a fresh worker-local
    :class:`~repro.obs.Tracer` whose epoch is the task start, so every
    span's ``start_s`` is an offset the driver can rebase onto its own
    timeline.  Spans + counter deltas travel back as plain JSON fields
    of the (already-sent) response payload — no extra frames, and
    nothing at all when tracing is off.
    """
    key = payload.get("task")
    traced = payload.get("trace") is not None
    tracer = Tracer() if traced else None
    try:
        if tracer is not None:
            with tracer.activate():
                with tracer.span(
                    "worker.task", trace=payload["trace"].get("run")
                ):
                    with tracer.span("worker.decode"):
                        funcs = unpack_closure(frames[0])
                        data = list(
                            unpack_payload(
                                payload.get("enc", "pickle"), frames[1]
                            )
                        )
                    records_in = len(data)
                    with tracer.span("worker.execute"):
                        for func, partition_index in funcs:
                            data = list(func(partition_index, iter(data)))
                    with tracer.span("worker.encode"):
                        encoding, result_frame = pack_payload(data)
            telemetry = {
                "host": socket.gethostname(),
                "spans": [s.to_dict() for s in tracer.spans()],
                "counters": {
                    "tasks": 1,
                    "records_in": records_in,
                    "records_out": len(data),
                    "bytes_in": sum(len(f) for f in frames),
                    "bytes_out": len(result_frame),
                    "task_seconds": round(
                        sum(
                            s.duration_s
                            for s in tracer.spans()
                            if s.name == "worker.task"
                        ),
                        6,
                    ),
                },
            }
            response = ok_payload(
                None, task=key, enc=encoding, telemetry=telemetry
            )
        else:
            funcs = unpack_closure(frames[0])
            data = list(
                unpack_payload(payload.get("enc", "pickle"), frames[1])
            )
            for func, partition_index in funcs:
                data = list(func(partition_index, iter(data)))
            encoding, result_frame = pack_payload(data)
            response = ok_payload(None, task=key, enc=encoding)
        await send_message(writer, response, frames=[result_frame])
    except Exception as exc:  # noqa: BLE001 - protocol boundary
        response = error_payload(None, exc, default_type="SparkLiteError")
        response["task"] = key
        await send_message(writer, response)


# ----------------------------------------------------------------------
# Loopback test/bench cluster
# ----------------------------------------------------------------------


class LoopbackCluster:
    """A net-executor :class:`Context` plus local worker subprocesses.

    Spawns ``n_workers`` ``repro workers`` processes against a driver
    bound to 127.0.0.1 and waits for them to register.  Each worker
    gets a ``REPRO_WORKER_INDEX`` environment variable (0-based), which
    failure tests use to kill one specific worker deterministically.

    Use as a context manager::

        with LoopbackCluster(n_workers=2) as cluster:
            rdd = cluster.context.parallelize(range(100), 4)
            assert rdd.count() == 100
    """

    def __init__(
        self,
        n_workers: int = 2,
        task_timeout: float | None = None,
        wait_timeout: float = 30.0,
        **context_options: Any,
    ) -> None:
        from repro.sparklite.context import Context

        if n_workers < 1:
            raise SparkLiteError(f"n_workers must be >= 1, got {n_workers}")
        self.context = Context(
            executor="net",
            host="127.0.0.1",
            port=0,
            task_timeout=task_timeout,
            **context_options,
        )
        self.processes: list[subprocess.Popen] = []
        try:
            port = self.context.net.port
            for index in range(n_workers):
                env = dict(os.environ)
                env["REPRO_WORKER_INDEX"] = str(index)
                env["PYTHONPATH"] = _pythonpath_with_repro(
                    env.get("PYTHONPATH")
                )
                self.processes.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro",
                            "workers",
                            "--connect",
                            f"127.0.0.1:{port}",
                            "--name",
                            f"loopback-{index}",
                        ],
                        env=env,
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                    )
                )
            self.context.net.wait_for_workers(n_workers, wait_timeout)
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Stop the driver and reap the worker processes (idempotent)."""
        self.context.close()
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=5.0)
        self.processes = []

    def __enter__(self) -> "LoopbackCluster":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"LoopbackCluster(port={self.context.net.port}, "
            f"workers={len(self.processes)})"
        )


def _pythonpath_with_repro(existing: str | None) -> str:
    """A PYTHONPATH that lets a subprocess ``import repro``."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    parts = [src_dir]
    if existing:
        parts.append(existing)
    return os.pathsep.join(parts)
