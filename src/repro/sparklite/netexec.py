"""Multi-host SparkLite: TCP driver and worker executor processes.

This module turns the in-process SparkLite engine into a real (small)
cluster runtime.  A :class:`NetDriver` — owned by a
:class:`~repro.sparklite.Context` built with ``executor="net"`` —
listens on a TCP port; worker processes started with ``repro workers
--connect HOST:PORT`` (or :func:`run_worker`) register with it.  Jobs
then execute remotely:

* Each partition of an RDD lineage is *flattened* into one task — the
  chain of narrow per-partition functions down to a leaf (parallelized
  data, a materialized shuffle bucket, or a cached partition) — and
  shipped to the least-loaded worker.  Closures travel cloudpickled;
  leaf/bucket/result payloads travel as length-prefixed binary frames
  (``.npz`` for arrays — raw float64 buffers, never JSON floats).
* Shuffles materialize on the driver (every SparkLite shuffle is
  driver-coordinated), so the buckets a shuffle produces cross the
  wire as the leaf payloads of downstream tasks.
* Broadcast values ship once per registered worker at creation time
  (and replay to workers that register later); tasks reference them by
  id only (:class:`~repro.sparklite.broadcast.Broadcast` pickles to
  its id, and each worker resolves ids against its local store).

Failure semantics mirror Spark's lineage model:

* A remote :class:`~repro.exceptions.TaskFailure` is retried from
  lineage up to the context's ``max_task_retries``.
* A worker that disconnects (or exceeds ``task_timeout`` on a task)
  is declared lost; its in-flight tasks re-run on surviving workers,
  up to :data:`MAX_WORKER_RERUNS` re-runs per task, after which the
  job fails with :class:`~repro.exceptions.SparkLiteError`.  With no
  live worker left the driver waits ``REREGISTER_GRACE`` seconds for
  a (re)registration before giving up.

Every byte in or out is metered in the context's
:class:`~repro.sparklite.metrics.EngineMetrics` (the ``net.*``
counters), so benchmarks can report communication volume next to the
record-level shuffle counters.

The results are bit-identical to the local executor: tasks run the
very same per-partition closures over the very same partition
contents, only in a different process.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import SparkLiteError, TaskFailure
from repro.net import (
    HAVE_CLOUDPICKLE,
    MAX_LINE_BYTES,
    error_payload,
    exception_from_payload,
    ok_payload,
    pack_closure,
    pack_payload,
    read_message,
    send_message,
    unpack_closure,
    unpack_payload,
)
from repro.sparklite.broadcast import Broadcast
from repro.sparklite.rdd import (
    RDD,
    _MapPartitionsRDD,
    _ParallelizedRDD,
    _ShuffledRDD,
    _UnionRDD,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparklite.context import Context

__all__ = ["NetDriver", "LoopbackCluster", "run_worker", "MAX_WORKER_RERUNS"]

#: How many times one task may be re-run because the worker holding it
#: was lost, before the job fails.
MAX_WORKER_RERUNS = 3

#: Seconds the driver waits for a worker to (re)register when a job
#: needs one and none is alive.
REREGISTER_GRACE = 10.0


class _WorkerLost(Exception):
    """Internal: the worker holding a task died or timed out."""


class _WorkerConn:
    """Driver-side state of one registered worker connection."""

    def __init__(
        self,
        name: str,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.name = name
        self.writer = writer
        self.alive = True
        #: task key -> future resolved by the connection's reader loop.
        self.futures: dict[int, asyncio.Future] = {}
        self.send_lock = asyncio.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "lost"
        return (
            f"_WorkerConn({self.name!r}, {state}, "
            f"inflight={len(self.futures)})"
        )


class NetDriver:
    """TCP job driver for ``Context(executor="net")``.

    Runs an asyncio server on a background thread; the public methods
    (:meth:`compute_all`, :meth:`ship_broadcast`,
    :meth:`wait_for_workers`, :meth:`close`) are called from ordinary
    threads and bridge into the loop.
    """

    def __init__(
        self,
        context: "Context",
        host: str = "127.0.0.1",
        port: int = 0,
        task_timeout: float | None = None,
    ) -> None:
        if not HAVE_CLOUDPICKLE:
            raise SparkLiteError(
                "executor='net' needs cloudpickle to ship task closures; "
                "install it or use executor='local'"
            )
        self.context = context
        self.host = host
        self.port = port
        self.task_timeout = task_timeout
        self._closed = False
        self._workers: dict[int, _WorkerConn] = {}
        self._next_conn_id = 0
        self._next_task_key = 0
        #: broadcast id -> (encoding, frame), replayed to late joiners.
        self._broadcasts: dict[int, tuple[str, bytes]] = {}
        self._worker_event: asyncio.Event | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="sparklite-net-driver",
            daemon=True,
        )
        self._thread.start()
        self._call(self._start_server(), timeout=30.0)

    # ------------------------------------------------------------------
    # Thread <-> loop bridge
    # ------------------------------------------------------------------

    def _call(self, coro, timeout: float | None = None):
        """Run a coroutine on the driver loop from a plain thread."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    async def _start_server(self) -> None:
        self._worker_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Number of currently registered, live workers."""
        return sum(1 for w in self._workers.values() if w.alive)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers are registered and alive."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if self.n_workers >= count:
                return
            if remaining <= 0:
                raise SparkLiteError(
                    f"only {self.n_workers}/{count} workers registered "
                    f"within {timeout:.1f}s"
                )
            try:
                self._call(
                    self._await_worker_event(min(remaining, 0.5)),
                    timeout=remaining + 5.0,
                )
            except Exception as exc:  # pragma: no cover - loop stuck
                raise SparkLiteError(
                    "driver event loop unresponsive while waiting "
                    "for workers"
                ) from exc

    async def _await_worker_event(self, timeout: float) -> None:
        event = self._worker_event
        assert event is not None
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            return
        event.clear()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Accept a worker: expect one ``register`` message, then serve."""
        worker: _WorkerConn | None = None
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        try:
            message = await read_message(reader)
            if message is None:
                return
            payload, _frames, n_bytes = message
            self.context.metrics.record_net_received(n_bytes)
            if payload.get("op") != "register":
                await send_message(
                    writer,
                    error_payload(
                        payload.get("id"),
                        SparkLiteError(
                            "expected a register message, got "
                            f"{payload.get('op')!r}"
                        ),
                        default_type="SparkLiteError",
                    ),
                )
                return
            worker = _WorkerConn(
                str(payload.get("name") or f"worker-{conn_id}"), writer
            )
            self._workers[conn_id] = worker
            sent = await send_message(
                writer, ok_payload(payload.get("id"), op="welcome")
            )
            # Replay broadcasts created before this worker arrived.
            for bid, (encoding, frame) in sorted(self._broadcasts.items()):
                sent += await send_message(
                    writer,
                    {"op": "broadcast", "bid": bid, "enc": encoding},
                    frames=[frame],
                )
                self.context.metrics.record_net_broadcast(len(frame))
            self.context.metrics.record_net_sent(sent)
            event = self._worker_event
            assert event is not None
            event.set()
            await self._reader_loop(worker, reader)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            if worker is not None:
                self._mark_lost(conn_id, worker)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reader_loop(
        self, worker: _WorkerConn, reader: asyncio.StreamReader
    ) -> None:
        """Dispatch every response from ``worker`` to its task future."""
        while True:
            message = await read_message(reader)
            if message is None:
                return
            payload, frames, n_bytes = message
            self.context.metrics.record_net_received(n_bytes)
            key = payload.get("task")
            future = worker.futures.pop(key, None) if key is not None else None
            if future is None or future.done():
                continue
            if payload.get("ok"):
                future.set_result((payload, frames))
            else:
                future.set_exception(
                    exception_from_payload(payload, default=SparkLiteError)
                )

    def _mark_lost(self, conn_id: int, worker: _WorkerConn) -> None:
        """Fail a worker's in-flight tasks so the job re-runs them."""
        self._workers.pop(conn_id, None)
        if not worker.alive:
            return
        worker.alive = False
        pending = list(worker.futures.values())
        worker.futures.clear()
        if pending and not self._closed:
            self.context.metrics.record_net_worker_failure()
        for future in pending:
            if not future.done():
                future.set_exception(
                    _WorkerLost(f"worker {worker.name!r} was lost")
                )

    # ------------------------------------------------------------------
    # Broadcasts
    # ------------------------------------------------------------------

    def ship_broadcast(
        self, broadcast_id: int, encoding: str, frame: bytes
    ) -> None:
        """Ship one serialized broadcast value to every live worker.

        The frame is charged once per *registered worker* — never per
        local thread — in ``net.broadcast_bytes_out``, and kept for
        replay to workers that register later.
        """
        self._call(self._ship_broadcast(broadcast_id, encoding, frame))

    async def _ship_broadcast(
        self, broadcast_id: int, encoding: str, frame: bytes
    ) -> None:
        self._broadcasts[broadcast_id] = (encoding, frame)
        for worker in list(self._workers.values()):
            if not worker.alive:
                continue
            try:
                async with worker.send_lock:
                    sent = await send_message(
                        worker.writer,
                        {
                            "op": "broadcast",
                            "bid": broadcast_id,
                            "enc": encoding,
                        },
                        frames=[frame],
                    )
            except (ConnectionResetError, BrokenPipeError, OSError):
                continue  # reader loop will mark the worker lost
            self.context.metrics.record_net_sent(sent)
            self.context.metrics.record_net_broadcast(len(frame))

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------

    def compute_all(self, rdd: RDD) -> list[list]:
        """Compute every partition of ``rdd`` on the remote workers."""
        if self._closed:
            raise SparkLiteError("the net driver is closed")
        if rdd._cache_enabled:
            with rdd._cache_lock:
                cached = rdd._cached
                if cached is not None and len(cached) == rdd.num_partitions:
                    return [cached[i] for i in range(rdd.num_partitions)]
        # Flattening runs on the calling thread: materializing shuffle
        # ancestors re-enters compute_all for the parent lineage.
        tasks = [
            (index, *self._flatten(rdd, index))
            for index in range(rdd.num_partitions)
        ]
        results = self._call(self._run_job(rdd, tasks))
        if rdd._cache_enabled:
            with rdd._cache_lock:
                if rdd._cached is None:
                    rdd._cached = {}
                for index, data in enumerate(results):
                    rdd._cached[index] = data
        return results

    def _flatten(
        self, rdd: RDD, index: int
    ) -> tuple[list[tuple[Callable, int]], list]:
        """Flatten partition ``index`` of ``rdd`` into one task.

        Returns ``(funcs, leaf)``: applying each ``(func,
        partition_index)`` of ``funcs`` in order to ``leaf`` yields the
        partition.  Shuffle ancestors are materialized on the driver
        (recursively scheduling their parent lineage over the
        cluster); cached ancestors act as barriers and contribute their
        cached data as the leaf.
        """
        funcs: list[tuple[Callable, int]] = []
        node: RDD = rdd
        node_index = index
        while True:
            if node is not rdd and node._cache_enabled:
                leaf = self._cached_partition(node, node_index)
                break
            if isinstance(node, _MapPartitionsRDD):
                funcs.append((node._func, node_index))
                node = node._parent
                continue
            if isinstance(node, _UnionRDD):
                if node_index < node._left.num_partitions:
                    node = node._left
                else:
                    node_index -= node._left.num_partitions
                    node = node._right
                continue
            if isinstance(node, _ShuffledRDD):
                leaf = node._materialize_shuffle()[node_index]
                break
            if isinstance(node, _ParallelizedRDD):
                leaf = node._data[node_index]
                break
            # Unknown node type: compute it on the driver and treat the
            # result as a leaf — correctness first, locality second.
            leaf = node._get_partition(node_index)
            break
        funcs.reverse()
        return funcs, leaf

    def _cached_partition(self, node: RDD, index: int) -> list:
        with node._cache_lock:
            cached = node._cached
            hit = cached.get(index) if cached is not None else None
        if hit is not None:
            return hit
        # Compute the whole cached ancestor as its own job; compute_all
        # fills its cache, so sibling partitions hit next time around.
        return self.compute_all(node)[index]

    async def _run_job(
        self,
        rdd: RDD,
        tasks: list[tuple[int, list[tuple[Callable, int]], list]],
    ) -> list[list]:
        results = await asyncio.gather(
            *(
                self._run_task(rdd, index, funcs, leaf)
                for index, funcs, leaf in tasks
            )
        )
        return list(results)

    async def _run_task(
        self,
        rdd: RDD,
        index: int,
        funcs: list[tuple[Callable, int]],
        leaf: list,
    ) -> list:
        """Run one task with retry (TaskFailure) and re-run (lost worker)."""
        closure_blob = pack_closure(funcs)
        payload_encoding, payload_frame = pack_payload(leaf)
        attempts = 0
        reruns = 0
        while True:
            worker = await self._acquire_worker()
            self.context.metrics.record_tasks(1)
            try:
                injector = self.context.failure_injector
                if injector is not None:
                    injector(rdd, index, attempts)
                return await self._dispatch(
                    worker, closure_blob, payload_encoding, payload_frame
                )
            except TaskFailure:
                attempts += 1
                self.context.metrics.record_retry()
                if attempts > self.context.max_task_retries:
                    raise
            except _WorkerLost:
                reruns += 1
                self.context.metrics.record_net_rerun()
                if reruns > MAX_WORKER_RERUNS:
                    raise SparkLiteError(
                        f"partition {index} was re-run {MAX_WORKER_RERUNS} "
                        "times after worker losses and still did not "
                        "complete"
                    ) from None

    async def _acquire_worker(self) -> _WorkerConn:
        """The least-loaded live worker; waits briefly when none exist."""
        deadline = time.monotonic() + REREGISTER_GRACE
        while True:
            alive = [w for w in self._workers.values() if w.alive]
            if alive:
                return min(alive, key=lambda w: len(w.futures))
            if self._closed:
                raise SparkLiteError("the net driver is closed")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SparkLiteError(
                    "no live workers: start some with "
                    f"'repro workers --connect {self.host}:{self.port}'"
                )
            await self._await_worker_event(min(remaining, 0.5))

    def _declare_dead(self, worker: _WorkerConn, reason: str) -> None:
        """Stop routing to ``worker`` and fail its in-flight tasks.

        Used when the driver notices the loss first (a failed send or
        a task timeout) — before the reader loop sees the EOF.  Without
        flipping ``alive`` here, a dead worker with an empty in-flight
        map looks like the *least-loaded* worker and re-runs ping-pong
        into it until the re-run budget is exhausted.
        """
        if not worker.alive:
            return
        worker.alive = False
        self.context.metrics.record_net_worker_failure()
        try:
            worker.writer.close()
        except Exception:  # pragma: no cover - already severed
            pass
        for other in list(worker.futures.values()):
            if not other.done():
                other.set_exception(_WorkerLost(reason))
        worker.futures.clear()

    async def _dispatch(
        self,
        worker: _WorkerConn,
        closure_blob: bytes,
        payload_encoding: str,
        payload_frame: bytes,
    ) -> list:
        """Ship one task to ``worker`` and await its result frames."""
        key = self._next_task_key
        self._next_task_key += 1
        future: asyncio.Future = self._loop.create_future()
        worker.futures[key] = future
        started = time.monotonic()
        try:
            async with worker.send_lock:
                sent = await send_message(
                    worker.writer,
                    {"op": "task", "task": key, "enc": payload_encoding},
                    frames=[closure_blob, payload_frame],
                )
            self.context.metrics.record_net_sent(sent)
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            worker.futures.pop(key, None)
            self._declare_dead(
                worker, f"send to worker {worker.name!r} failed: {exc}"
            )
            raise _WorkerLost(str(exc)) from None
        try:
            if self.task_timeout is not None:
                payload, frames = await asyncio.wait_for(
                    future, self.task_timeout
                )
            else:
                payload, frames = await future
        except asyncio.TimeoutError:
            worker.futures.pop(key, None)
            self._declare_dead(worker, f"worker {worker.name!r} timed out")
            raise _WorkerLost(
                f"worker {worker.name!r} exceeded the "
                f"{self.task_timeout:.1f}s task timeout"
            ) from None
        self.context.metrics.record_net_task(time.monotonic() - started)
        if not frames:
            raise SparkLiteError(
                f"worker {worker.name!r} returned no result frame"
            )
        return list(unpack_payload(payload.get("enc", "pickle"), frames[0]))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut workers down, stop the listener and the loop (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self._shutdown(), timeout=10.0)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():  # pragma: no branch
            self._loop.close()

    async def _shutdown(self) -> None:
        for worker in list(self._workers.values()):
            if not worker.alive:
                continue
            try:
                async with worker.send_lock:
                    await send_message(worker.writer, {"op": "shutdown"})
                worker.writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def __repr__(self) -> str:
        return (
            f"NetDriver({self.host}:{self.port}, "
            f"workers={self.n_workers})"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def run_worker(
    host: str,
    port: int,
    name: str | None = None,
) -> None:
    """Connect to a driver and execute tasks until it says shutdown.

    This is the body of one ``repro workers`` process: it registers,
    installs the process-local broadcast store, then loops over
    ``broadcast`` / ``task`` / ``shutdown`` messages.  Task errors are
    reported back as typed error payloads — a
    :class:`~repro.exceptions.TaskFailure` makes the driver retry from
    lineage, any other library error propagates to the driver's caller
    as the same exception type.
    """
    if not HAVE_CLOUDPICKLE:
        raise SparkLiteError(
            "a net worker needs cloudpickle to load task closures"
        )
    asyncio.run(_worker_main(host, port, name or f"worker-{os.getpid()}"))


async def _worker_main(host: str, port: int, name: str) -> None:
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES
    )
    store: dict[int, Any] = {}
    Broadcast._resolver = lambda bid: _resolve_broadcast(store, bid)
    try:
        await send_message(writer, {"op": "register", "name": name})
        welcome = await read_message(reader)
        if welcome is None or not welcome[0].get("ok"):
            raise SparkLiteError(
                f"driver at {host}:{port} rejected registration"
            )
        while True:
            message = await read_message(reader)
            if message is None:
                return
            payload, frames, _n_bytes = message
            op = payload.get("op")
            if op == "shutdown":
                return
            if op == "broadcast":
                store[int(payload["bid"])] = unpack_payload(
                    payload.get("enc", "pickle"), frames[0]
                )
                continue
            if op == "task":
                await _run_worker_task(writer, payload, frames)
                continue
            if op == "ping":
                await send_message(
                    writer, ok_payload(payload.get("id"), op="pong")
                )
                continue
            await send_message(
                writer,
                error_payload(
                    payload.get("id"),
                    SparkLiteError(f"unknown op {op!r}"),
                    default_type="SparkLiteError",
                ),
            )
    finally:
        Broadcast._resolver = None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def _resolve_broadcast(store: dict[int, Any], broadcast_id: int) -> Any:
    from repro.exceptions import BroadcastError

    try:
        return store[broadcast_id]
    except KeyError:
        raise BroadcastError(
            f"broadcast {broadcast_id} was never shipped to this worker"
        ) from None


async def _run_worker_task(
    writer: asyncio.StreamWriter,
    payload: dict[str, Any],
    frames: list[bytes],
) -> None:
    key = payload.get("task")
    try:
        funcs = unpack_closure(frames[0])
        data = list(unpack_payload(payload.get("enc", "pickle"), frames[1]))
        for func, partition_index in funcs:
            data = list(func(partition_index, iter(data)))
        encoding, result_frame = pack_payload(data)
        response = ok_payload(None, task=key, enc=encoding)
        await send_message(writer, response, frames=[result_frame])
    except Exception as exc:  # noqa: BLE001 - protocol boundary
        response = error_payload(None, exc, default_type="SparkLiteError")
        response["task"] = key
        await send_message(writer, response)


# ----------------------------------------------------------------------
# Loopback test/bench cluster
# ----------------------------------------------------------------------


class LoopbackCluster:
    """A net-executor :class:`Context` plus local worker subprocesses.

    Spawns ``n_workers`` ``repro workers`` processes against a driver
    bound to 127.0.0.1 and waits for them to register.  Each worker
    gets a ``REPRO_WORKER_INDEX`` environment variable (0-based), which
    failure tests use to kill one specific worker deterministically.

    Use as a context manager::

        with LoopbackCluster(n_workers=2) as cluster:
            rdd = cluster.context.parallelize(range(100), 4)
            assert rdd.count() == 100
    """

    def __init__(
        self,
        n_workers: int = 2,
        task_timeout: float | None = None,
        wait_timeout: float = 30.0,
        **context_options: Any,
    ) -> None:
        from repro.sparklite.context import Context

        if n_workers < 1:
            raise SparkLiteError(f"n_workers must be >= 1, got {n_workers}")
        self.context = Context(
            executor="net",
            host="127.0.0.1",
            port=0,
            task_timeout=task_timeout,
            **context_options,
        )
        self.processes: list[subprocess.Popen] = []
        try:
            port = self.context.net.port
            for index in range(n_workers):
                env = dict(os.environ)
                env["REPRO_WORKER_INDEX"] = str(index)
                env["PYTHONPATH"] = _pythonpath_with_repro(
                    env.get("PYTHONPATH")
                )
                self.processes.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro",
                            "workers",
                            "--connect",
                            f"127.0.0.1:{port}",
                            "--name",
                            f"loopback-{index}",
                        ],
                        env=env,
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                    )
                )
            self.context.net.wait_for_workers(n_workers, wait_timeout)
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Stop the driver and reap the worker processes (idempotent)."""
        self.context.close()
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=5.0)
        self.processes = []

    def __enter__(self) -> "LoopbackCluster":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"LoopbackCluster(port={self.context.net.port}, "
            f"workers={len(self.processes)})"
        )


def _pythonpath_with_repro(existing: str | None) -> str:
    """A PYTHONPATH that lets a subprocess ``import repro``."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    parts = [src_dir]
    if existing:
        parts.append(existing)
    return os.pathsep.join(parts)
