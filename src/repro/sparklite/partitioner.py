"""Partitioners: deterministic assignment of keys to shuffle buckets."""

from __future__ import annotations

from repro.exceptions import ParameterError, ShuffleError

__all__ = ["HashPartitioner"]


class HashPartitioner:
    """Assign keys to ``num_partitions`` buckets by Python hash.

    Equality of partitioners matters: two RDDs co-partitioned by equal
    partitioners can be joined without re-shuffling one side.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ParameterError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = int(num_partitions)

    def partition_for(self, key: object) -> int:
        """Return the bucket index for ``key``."""
        try:
            return hash(key) % self.num_partitions
        except TypeError as exc:
            raise ShuffleError(
                f"shuffle key {key!r} of type {type(key).__name__} "
                "is not hashable"
            ) from exc

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:
        return hash(("HashPartitioner", self.num_partitions))

    def __repr__(self) -> str:
        return f"HashPartitioner(num_partitions={self.num_partitions})"
