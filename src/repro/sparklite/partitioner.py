"""Partitioners: deterministic assignment of keys to shuffle buckets.

Two implementations:

* :class:`HashPartitioner` — Spark's default, uniform by key hash.
* :class:`CellPartitioner` — spatially aware: keys are grid-cell
  coordinate tuples and *blocks* of adjacent cells map to the same
  shard, so an epsilon-neighbor of a cell usually lives in the same
  partition.  This is the cell-locality idea of RP-DBSCAN's
  rho-granularity summaries and of cell-graph-partitioned parallel
  DBSCAN: ship whole cells, not row ranges, and cross-shard neighbor
  traffic shrinks.
"""

from __future__ import annotations

from repro.exceptions import ParameterError, ShuffleError

__all__ = ["HashPartitioner", "CellPartitioner"]


class HashPartitioner:
    """Assign keys to ``num_partitions`` buckets by Python hash.

    Equality of partitioners matters: two RDDs co-partitioned by equal
    partitioners can be joined without re-shuffling one side.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ParameterError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = int(num_partitions)

    def partition_for(self, key: object) -> int:
        """Return the bucket index for ``key``."""
        try:
            return hash(key) % self.num_partitions
        except TypeError as exc:
            raise ShuffleError(
                f"shuffle key {key!r} of type {type(key).__name__} "
                "is not hashable"
            ) from exc

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:
        return hash(("HashPartitioner", self.num_partitions))

    def __repr__(self) -> str:
        return f"HashPartitioner(num_partitions={self.num_partitions})"


class CellPartitioner:
    """Assign grid-cell keys to shards with spatial locality.

    Keys must be tuples of integers (grid-cell coordinates).  The low
    ``block_bits`` bits of every coordinate are dropped, grouping
    ``2**block_bits`` consecutive cells per axis into one *block*;
    blocks are then packed into a deterministic integer key and spread
    over the shards.  Cells of the same block — and therefore most
    epsilon-neighbor cell pairs, whose coordinates differ by at most
    one — land on the same shard, which is what makes the shard
    boundaries cheap under the distributed engine's neighbor joins.

    With ``block_bits=0`` every cell is its own block (maximum
    balance, no locality); the default ``2`` groups 4 cells per axis.

    Hashing is value-stable across processes (integer and
    integer-tuple hashes do not depend on ``PYTHONHASHSEED``), so
    routing decisions agree between a driver and its remote workers.
    """

    def __init__(self, num_partitions: int, block_bits: int = 2) -> None:
        if num_partitions < 1:
            raise ParameterError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        if block_bits < 0:
            raise ParameterError(
                f"block_bits must be >= 0, got {block_bits}"
            )
        self.num_partitions = int(num_partitions)
        self.block_bits = int(block_bits)

    def block_of(self, key: tuple) -> tuple:
        """The block coordinates a cell key belongs to."""
        if not isinstance(key, tuple) or not all(
            isinstance(coordinate, int) for coordinate in key
        ):
            raise ShuffleError(
                f"CellPartitioner keys must be integer tuples, "
                f"got {key!r}"
            )
        shift = self.block_bits
        return tuple(coordinate >> shift for coordinate in key)

    def partition_for(self, key: tuple) -> int:
        """Return the shard index for a cell-coordinate key."""
        return hash(self.block_of(key)) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CellPartitioner)
            and other.num_partitions == self.num_partitions
            and other.block_bits == self.block_bits
        )

    def __hash__(self) -> int:
        return hash(
            ("CellPartitioner", self.num_partitions, self.block_bits)
        )

    def __repr__(self) -> str:
        return (
            f"CellPartitioner(num_partitions={self.num_partitions}, "
            f"block_bits={self.block_bits})"
        )
