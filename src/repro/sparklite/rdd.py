"""Lazy, lineage-based RDDs with the Spark transformation vocabulary.

An :class:`RDD` is an immutable description of a distributed dataset:
narrow transformations (map, filter, flatMap, mapPartitions, union)
chain lazily; wide transformations (reduceByKey, groupByKey, join,
cogroup, partitionBy) introduce a hash shuffle that is materialized on
first use and metered in the context's :class:`EngineMetrics`.

Records of pair RDDs are ``(key, value)`` tuples.  All classes here are
driver-side objects; partition data are plain Python lists.
"""

from __future__ import annotations

import itertools
import random
import threading
from collections import defaultdict
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.exceptions import ShuffleError, SparkLiteError, TaskFailure
from repro.obs import span as obs_span
from repro.sparklite.partitioner import HashPartitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparklite.context import Context

__all__ = ["RDD"]


def _as_pair(record: Any) -> tuple[Any, Any]:
    """Validate that a record is a (key, value) pair."""
    if not isinstance(record, tuple) or len(record) != 2:
        raise ShuffleError(
            f"pair-RDD operation on non-pair record {record!r}"
        )
    return record


class RDD:
    """Base class: a lazily evaluated, partitioned dataset.

    Subclasses implement :meth:`_compute_partition`.  User code obtains
    RDDs from :meth:`repro.sparklite.Context.parallelize` and chains
    transformations; actions (``collect``, ``count``, ...) trigger
    evaluation.
    """

    def __init__(
        self,
        context: "Context",
        num_partitions: int,
        partitioner: HashPartitioner | None = None,
    ) -> None:
        if num_partitions < 1:
            raise SparkLiteError(
                f"an RDD needs at least one partition, got {num_partitions}"
            )
        self.context = context
        self.num_partitions = int(num_partitions)
        self.partitioner = partitioner
        self._cache_enabled = False
        self._cached: dict[int, list] | None = None
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Evaluation machinery
    # ------------------------------------------------------------------

    def _compute_partition(self, index: int) -> list:
        raise NotImplementedError

    def _get_partition(self, index: int) -> list:
        """Return partition ``index``, honoring the cache.

        Transient :class:`~repro.exceptions.TaskFailure` errors (e.g.
        from an injected fault) are retried up to the context's
        ``max_task_retries`` by recomputing from lineage, like Spark's
        task re-execution.  Any other exception is deterministic user
        error and propagates immediately.
        """
        if self._cache_enabled:
            with self._cache_lock:
                if self._cached is None:
                    self._cached = {}
                hit = self._cached.get(index)
            if hit is not None:
                return hit
        attempts = 0
        while True:
            self.context.metrics.record_tasks(1)
            try:
                injector = self.context.failure_injector
                if injector is not None:
                    injector(self, index, attempts)
                data = self._compute_partition(index)
                break
            except TaskFailure:
                attempts += 1
                self.context.metrics.record_retry()
                if attempts > self.context.max_task_retries:
                    raise
        if self._cache_enabled:
            with self._cache_lock:
                self._cached[index] = data  # type: ignore[index]
        return data

    def cache(self) -> "RDD":
        """Memoize computed partitions for reuse across actions."""
        self._cache_enabled = True
        return self

    def unpersist(self) -> "RDD":
        """Drop any cached partitions and stop caching."""
        with self._cache_lock:
            self._cache_enabled = False
            self._cached = None
        return self

    def checkpoint(self) -> "RDD":
        """Materialize now and sever the lineage (Spark checkpointing).

        Returns a new leaf RDD holding the computed partitions: later
        recomputations (and ``to_debug_string``) no longer reach the
        ancestors, bounding lineage depth in iterative jobs.  Unlike
        ``cache()``, which keeps the lineage for recovery, a checkpoint
        *is* the recovery point.
        """
        partitions = self.context._compute_all(self)
        leaf = _ParallelizedRDD(self.context, [list(p) for p in partitions])
        leaf.partitioner = self.partitioner
        return leaf

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def map_partitions_with_index(
        self, func: Callable[[int, Iterator], Iterable]
    ) -> "RDD":
        """Apply ``func(partition_index, iterator)`` to each partition."""
        return _MapPartitionsRDD(self, func)

    def map_partitions(self, func: Callable[[Iterator], Iterable]) -> "RDD":
        """Apply ``func(iterator)`` to each partition."""
        return _MapPartitionsRDD(self, lambda _, it: func(it))

    def map(self, func: Callable[[Any], Any]) -> "RDD":
        """Element-wise transformation (Spark MAP)."""
        return self.map_partitions(lambda it: (func(x) for x in it))

    def flat_map(self, func: Callable[[Any], Iterable]) -> "RDD":
        """One-to-many element transformation (Spark FLATMAP)."""
        return self.map_partitions(
            lambda it: itertools.chain.from_iterable(func(x) for x in it)
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        """Keep records for which ``predicate`` is true (Spark FILTER)."""
        return self.map_partitions(
            lambda it: (x for x in it if predicate(x))
        )

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (Spark UNION); partitions are appended."""
        if other.context is not self.context:
            raise SparkLiteError("cannot union RDDs from different contexts")
        return _UnionRDD(self, other)

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli-sample each record with probability ``fraction``."""
        if not 0.0 <= fraction <= 1.0:
            raise SparkLiteError(f"fraction must be in [0, 1], got {fraction}")

        def sample_partition(index: int, iterator: Iterator) -> Iterator:
            rng = random.Random(seed * 1_000_003 + index)
            return (x for x in iterator if rng.random() < fraction)

        return self.map_partitions_with_index(sample_partition)

    def distinct(self) -> "RDD":
        """Deduplicate records (requires hashable records)."""
        deduped = (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a)
            .map(lambda kv: kv[0])
        )
        return deduped

    def glom(self) -> "RDD":
        """Turn each partition into a single list record."""
        return self.map_partitions(lambda it: [list(it)])

    # ------------------------------------------------------------------
    # Pair-RDD (key/value) transformations
    # ------------------------------------------------------------------

    def keys(self) -> "RDD":
        """Keys of a pair RDD."""
        return self.map(lambda kv: _as_pair(kv)[0])

    def values(self) -> "RDD":
        """Values of a pair RDD."""
        return self.map(lambda kv: _as_pair(kv)[1])

    def map_values(self, func: Callable[[Any], Any]) -> "RDD":
        """Transform values, keeping keys (and partitioning) intact."""
        mapped = self.map_partitions(
            lambda it: ((k, func(v)) for k, v in map(_as_pair, it))
        )
        mapped.partitioner = self.partitioner
        return mapped

    def flat_map_values(self, func: Callable[[Any], Iterable]) -> "RDD":
        """Expand each value into several, keeping the key."""
        mapped = self.map_partitions(
            lambda it: (
                (k, out)
                for k, v in map(_as_pair, it)
                for out in func(v)
            )
        )
        mapped.partitioner = self.partitioner
        return mapped

    def partition_by(
        self,
        num_partitions: int | None = None,
        partitioner: "HashPartitioner | None" = None,
    ) -> "RDD":
        """Partition a pair RDD by key (Spark partitionBy).

        Routes through ``partitioner`` when given (e.g. a
        :class:`~repro.sparklite.partitioner.CellPartitioner` for
        spatial locality); defaults to hash partitioning.
        """
        partitioner = partitioner or HashPartitioner(
            num_partitions or self.num_partitions
        )
        if self.partitioner == partitioner:
            return self
        return _ShuffledRDD(self, partitioner)

    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        partitioner: "HashPartitioner | None" = None,
    ) -> "RDD":
        """General shuffle-with-aggregation (Spark combineByKey).

        Performs a map-side combine in each input partition before the
        shuffle, then merges combiners inside each output bucket — so
        ``records_shuffled`` reflects the post-combine volume, exactly
        as in Spark.
        """

        def map_side(iterator: Iterator) -> Iterator:
            combined: dict[Any, Any] = {}
            for key, value in map(_as_pair, iterator):
                try:
                    present = key in combined
                except TypeError as exc:
                    raise ShuffleError(
                        f"shuffle key {key!r} of type "
                        f"{type(key).__name__} is not hashable"
                    ) from exc
                if present:
                    combined[key] = merge_value(combined[key], value)
                else:
                    combined[key] = create_combiner(value)
            return iter(combined.items())

        def reduce_side(iterator: Iterator) -> Iterator:
            merged: dict[Any, Any] = {}
            for key, combiner in iterator:
                if key in merged:
                    merged[key] = merge_combiners(merged[key], combiner)
                else:
                    merged[key] = combiner
            return iter(merged.items())

        partitioner = partitioner or HashPartitioner(
            num_partitions or self.num_partitions
        )
        shuffled = _ShuffledRDD(self.map_partitions(map_side), partitioner)
        result = shuffled.map_partitions(reduce_side)
        result.partitioner = partitioner
        return result

    def reduce_by_key(
        self,
        func: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        partitioner: "HashPartitioner | None" = None,
    ) -> "RDD":
        """Merge values per key with an associative function."""
        return self.combine_by_key(
            create_combiner=lambda v: v,
            merge_value=func,
            merge_combiners=func,
            num_partitions=num_partitions,
            partitioner=partitioner,
        )

    def group_by_key(
        self,
        num_partitions: int | None = None,
        partitioner: "HashPartitioner | None" = None,
    ) -> "RDD":
        """Group all values per key into a list (no map-side combine).

        An RDD already partitioned by an equal ``partitioner`` groups
        in place without a shuffle — the locality dividend of
        cell-partitioned grids.
        """
        partitioner = partitioner or HashPartitioner(
            num_partitions or self.num_partitions
        )
        shuffled = (
            self
            if self.partitioner == partitioner
            else _ShuffledRDD(self, partitioner)
        )

        def group(iterator: Iterator) -> Iterator:
            groups: dict[Any, list] = defaultdict(list)
            for key, value in map(_as_pair, iterator):
                groups[key].append(value)
            return iter(groups.items())

        result = shuffled.map_partitions(group)
        result.partitioner = partitioner
        return result

    def cogroup(
        self,
        other: "RDD",
        num_partitions: int | None = None,
        partitioner: "HashPartitioner | None" = None,
    ) -> "RDD":
        """Group values of both RDDs per key: ``(k, (list_a, list_b))``."""
        if other.context is not self.context:
            raise SparkLiteError("cannot cogroup RDDs from different contexts")
        partitioner = partitioner or HashPartitioner(
            num_partitions or max(self.num_partitions, other.num_partitions)
        )
        tagged = self.map_values(lambda v: (0, v)).union(
            other.map_values(lambda v: (1, v))
        )
        shuffled = _ShuffledRDD(tagged, partitioner)

        def split(iterator: Iterator) -> Iterator:
            groups: dict[Any, tuple[list, list]] = defaultdict(
                lambda: ([], [])
            )
            for key, (side, value) in iterator:
                groups[key][side].append(value)
            return iter(groups.items())

        result = shuffled.map_partitions(split)
        result.partitioner = partitioner
        return result

    def join(
        self,
        other: "RDD",
        num_partitions: int | None = None,
        partitioner: "HashPartitioner | None" = None,
    ) -> "RDD":
        """Inner join on key: ``(k, (v, w))`` for every matching pair."""

        def expand(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            return ((v, w) for v in left for w in right)

        return self.cogroup(
            other, num_partitions, partitioner=partitioner
        ).flat_map_values(expand)

    def left_outer_join(
        self, other: "RDD", num_partitions: int | None = None
    ) -> "RDD":
        """Left outer join: right side is ``None`` when unmatched."""

        def expand(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            if not right:
                return ((v, None) for v in left)
            return ((v, w) for v in left for w in right)

        return self.cogroup(other, num_partitions).flat_map_values(expand)

    def full_outer_join(
        self, other: "RDD", num_partitions: int | None = None
    ) -> "RDD":
        """Full outer join: unmatched sides become ``None``."""

        def expand(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            if not left:
                return ((None, w) for w in right)
            if not right:
                return ((v, None) for v in left)
            return ((v, w) for v in left for w in right)

        return self.cogroup(other, num_partitions).flat_map_values(expand)

    def subtract_by_key(
        self, other: "RDD", num_partitions: int | None = None
    ) -> "RDD":
        """Keep pairs whose key does not appear in ``other``."""

        def keep(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            if right:
                return iter(())
            return iter(left)

        return self.cogroup(other, num_partitions).flat_map_values(keep)

    def aggregate_by_key(
        self,
        zero,
        seq_func: Callable[[Any, Any], Any],
        comb_func: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
    ) -> "RDD":
        """Per-key aggregation with a zero value (Spark aggregateByKey).

        ``seq_func`` folds a value into a per-partition accumulator,
        ``comb_func`` merges accumulators across partitions.  ``zero``
        must be immutable or treated as such (it is shared via a
        factory copy per key).
        """
        import copy

        return self.combine_by_key(
            create_combiner=lambda v: seq_func(copy.deepcopy(zero), v),
            merge_value=seq_func,
            merge_combiners=comb_func,
            num_partitions=num_partitions,
        )

    def fold_by_key(
        self,
        zero,
        func: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
    ) -> "RDD":
        """Per-key fold with a zero value (Spark foldByKey)."""
        return self.aggregate_by_key(zero, func, func, num_partitions)

    def sort_by(
        self,
        key_func: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD":
        """Globally sort records by ``key_func``.

        Implemented as a total sort with range partitioning sampled
        from the data (like Spark's sortBy): records are routed to
        ordered buckets by sampled split points, then each bucket is
        sorted locally, so the concatenation of partitions is sorted.
        """
        n_parts = num_partitions or self.num_partitions
        sample = [
            key_func(record)
            for record in self.sample(min(1.0, 0.1 + 100.0 / 10_000)).collect()
        ]
        sample.sort()
        if sample and n_parts > 1:
            step = max(1, len(sample) // n_parts)
            splits = sample[step::step][: n_parts - 1]
        else:
            splits = []

        import bisect

        def bucket_of(record) -> int:
            key = key_func(record)
            position = bisect.bisect_right(splits, key)
            return position if ascending else len(splits) - position

        routed = self.map(lambda record: (bucket_of(record), record))
        # Bucket ids are 0..n_parts-1 and hash to themselves, so the
        # hash partitioner realizes the range partitioning exactly.
        shuffled = _ShuffledRDD(routed, HashPartitioner(max(n_parts, 1)))
        return shuffled.map_partitions(
            lambda it: sorted(
                (record for _bucket, record in it),
                key=key_func,
                reverse=not ascending,
            )
        )

    def zip_with_index(self) -> "RDD":
        """Pair each record with its global index (Spark zipWithIndex).

        Requires one extra pass to size the partitions, as in Spark.
        """
        sizes = self.num_records_per_partition()
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)

        def index_partition(index: int, iterator: Iterator) -> Iterator:
            return (
                (record, offsets[index] + position)
                for position, record in enumerate(iterator)
            )

        return self.map_partitions_with_index(index_partition)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self) -> list:
        """Return all records to the driver as a list."""
        with obs_span("sparklite.collect") as span:
            partitions = self.context._compute_all(self)
            self.context.metrics.record_collect()
            records = [record for part in partitions for record in part]
            span.set("records", len(records))
            return records

    def count(self) -> int:
        """Number of records."""
        partitions = self.context._compute_all(self)
        self.context.metrics.record_collect()
        return sum(len(part) for part in partitions)

    def take(self, n: int) -> list:
        """First ``n`` records in partition order (computes lazily)."""
        taken: list = []
        for index in range(self.num_partitions):
            if len(taken) >= n:
                break
            taken.extend(self._get_partition(index)[: n - len(taken)])
        self.context.metrics.record_collect()
        return taken

    def first(self) -> Any:
        """The first record; raises if the RDD is empty."""
        records = self.take(1)
        if not records:
            raise SparkLiteError("first() on an empty RDD")
        return records[0]

    def reduce(self, func: Callable[[Any, Any], Any]) -> Any:
        """Fold all records with an associative binary function."""
        partials = []
        for part in self.context._compute_all(self):
            iterator = iter(part)
            try:
                acc = next(iterator)
            except StopIteration:
                continue
            for record in iterator:
                acc = func(acc, record)
            partials.append(acc)
        self.context.metrics.record_collect()
        if not partials:
            raise SparkLiteError("reduce() on an empty RDD")
        acc = partials[0]
        for partial in partials[1:]:
            acc = func(acc, partial)
        return acc

    def for_each(self, func: Callable[[Any], None]) -> None:
        """Apply ``func`` to every record for side effects (Spark FOREACH)."""
        for part in self.context._compute_all(self):
            for record in part:
                func(record)

    def count_by_key(self) -> dict:
        """Count records per key; returned as a driver-side dict."""
        return dict(
            self.map_values(lambda _v: 1).reduce_by_key(lambda a, b: a + b).collect()
        )

    def collect_as_map(self) -> dict:
        """Collect a pair RDD into a dict (later duplicates win)."""
        return dict(_as_pair(record) for record in self.collect())

    def num_records_per_partition(self) -> list[int]:
        """Diagnostic: record count of each partition."""
        return [len(part) for part in self.context._compute_all(self)]

    def top(self, n: int, key: Callable[[Any], Any] | None = None) -> list:
        """The ``n`` largest records (Spark top): per-partition heaps
        merged on the driver, so only O(n) records travel."""
        import heapq

        if n < 1:
            raise SparkLiteError(f"n must be >= 1, got {n}")
        partials = (
            self.map_partitions(
                lambda it: [heapq.nlargest(n, it, key=key)]
            )
            .collect()
        )
        merged = [record for chunk in partials for record in chunk]
        return heapq.nlargest(n, merged, key=key)

    def take_ordered(
        self, n: int, key: Callable[[Any], Any] | None = None
    ) -> list:
        """The ``n`` smallest records (Spark takeOrdered)."""
        import heapq

        if n < 1:
            raise SparkLiteError(f"n must be >= 1, got {n}")
        partials = (
            self.map_partitions(
                lambda it: [heapq.nsmallest(n, it, key=key)]
            )
            .collect()
        )
        merged = [record for chunk in partials for record in chunk]
        return heapq.nsmallest(n, merged, key=key)

    # ------------------------------------------------------------------
    # Lineage inspection
    # ------------------------------------------------------------------

    def _parents(self) -> list["RDD"]:
        """Direct lineage parents (subclasses override)."""
        return []

    def _describe(self) -> str:
        """One-line description of this lineage node."""
        flags = []
        if self._cache_enabled:
            flags.append("cached")
        if self.partitioner is not None:
            flags.append(str(self.partitioner))
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"{type(self).__name__.lstrip('_')}"
            f"({self.num_partitions} partitions){suffix}"
        )

    def to_debug_string(self) -> str:
        """Render the lineage tree (like Spark's ``toDebugString``).

        Each line is one RDD; children are indented under their
        consumer, shuffle boundaries show their partitioner.
        """
        lines: list[str] = []

        def walk(node: "RDD", depth: int) -> None:
            lines.append("  " * depth + "+- " + node._describe())
            for parent in node._parents():
                walk(parent, depth + 1)

        walk(self, 0)
        return "\n".join(lines)


class _ParallelizedRDD(RDD):
    """Leaf RDD backed by driver-side data split into partitions."""

    def __init__(
        self, context: "Context", partitions: list[list]
    ) -> None:
        super().__init__(context, len(partitions))
        self._data = partitions

    def _compute_partition(self, index: int) -> list:
        return self._data[index]


class _MapPartitionsRDD(RDD):
    """Narrow transformation: per-partition function over one parent."""

    def __init__(
        self, parent: RDD, func: Callable[[int, Iterator], Iterable]
    ) -> None:
        super().__init__(parent.context, parent.num_partitions)
        self._parent = parent
        self._func = func

    def _compute_partition(self, index: int) -> list:
        return list(self._func(index, iter(self._parent._get_partition(index))))

    def _parents(self) -> list[RDD]:
        return [self._parent]


class _UnionRDD(RDD):
    """Concatenation of the partitions of two parents."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.context, left.num_partitions + right.num_partitions
        )
        self._left = left
        self._right = right

    def _compute_partition(self, index: int) -> list:
        if index < self._left.num_partitions:
            return self._left._get_partition(index)
        return self._right._get_partition(index - self._left.num_partitions)

    def _parents(self) -> list[RDD]:
        return [self._left, self._right]


class _ShuffledRDD(RDD):
    """Wide transformation: hash-repartition a pair RDD by key.

    The shuffle is materialized once (thread-safe) on first access:
    every parent partition is computed, each record is routed to its
    bucket, and the context metrics record the number of records moved.
    """

    def __init__(self, parent: RDD, partitioner: HashPartitioner) -> None:
        super().__init__(
            parent.context, partitioner.num_partitions, partitioner
        )
        self._parent = parent
        self._buckets: list[list] | None = None
        self._shuffle_lock = threading.Lock()

    def _materialize_shuffle(self) -> list[list]:
        with self._shuffle_lock:
            if self._buckets is None:
                with obs_span(
                    "sparklite.shuffle", partitions=self.num_partitions
                ) as span:
                    buckets: list[list] = [
                        [] for _ in range(self.num_partitions)
                    ]
                    total = 0
                    for part in self.context._compute_all(self._parent):
                        for record in part:
                            key, _ = _as_pair(record)
                            buckets[
                                self.partitioner.partition_for(key)
                            ].append(record)
                            total += 1
                    span.set("records", total)
                self.context.metrics.record_shuffle(total)
                memory_model = self.context.memory_model
                if memory_model is not None:
                    from repro.sparklite.cluster import estimate_size

                    memory_model.charge_shuffle(
                        [estimate_size(bucket) for bucket in buckets]
                    )
                self._buckets = buckets
            return self._buckets

    def _compute_partition(self, index: int) -> list:
        return self._materialize_shuffle()[index]

    def _parents(self) -> list[RDD]:
        return [self._parent]
