"""Live streaming detectors with hot-swappable served snapshots.

The streaming layer promotes the exact incremental engine
(:class:`~repro.core.incremental.IncrementalDBSCOUT`) from a batch
API to a live system:

* :class:`LiveDetector` maintains a sliding window (pluggable
  eviction policies) and exports point-in-time
  :class:`~repro.core.classify.CoreModel` snapshots that are exact
  batch fits over the active window;
* :class:`StreamCoordinator` drives ingest → snapshot →
  :meth:`OutlierService.swap <repro.serve.OutlierService.swap>` on a
  refresh policy (every N points / every T seconds / on drift);
* the serve wire protocol grows ``ingest``/``evict``/``swap_status``
  ops so remote clients can feed a served live detector.
"""

from repro.stream.coordinator import StreamCoordinator
from repro.stream.live import IngestOutcome, LiveDetector, StreamSnapshot
from repro.stream.window import (
    CountWindow,
    EvictionPolicy,
    KeepAll,
    TimeWindow,
    resolve_policy,
)

__all__ = [
    "LiveDetector",
    "IngestOutcome",
    "StreamSnapshot",
    "StreamCoordinator",
    "EvictionPolicy",
    "CountWindow",
    "TimeWindow",
    "KeepAll",
    "resolve_policy",
]
