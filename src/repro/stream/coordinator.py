"""Drives ingest → periodic snapshot → hot swap against a service.

:class:`StreamCoordinator` is the glue between a
:class:`~repro.stream.live.LiveDetector` and an
:class:`~repro.serve.OutlierService`: every ingest batch flows into
the live detector's sliding window, and on a configurable refresh
policy the coordinator exports a point-in-time snapshot and installs
it into the service with :meth:`OutlierService.swap
<repro.serve.OutlierService.swap>` — atomically, without dropping or
blocking in-flight classify batches.

Refresh policies compose (any satisfied trigger refreshes):

* ``every_points=N`` — after N accepted points since the last swap;
* ``every_s=T`` — when the served snapshot is older than T seconds;
* ``drift_threshold=f`` — when the fraction of window labels changed
  since the last snapshot reaches ``f`` (inclusive, matching the
  library's ``<=`` threshold convention).

The coordinator is deliberately passive: policies are evaluated when
:meth:`ingest` or :meth:`tick` is called, so callers own the event
loop (the server's asyncio loop, a timer thread, or a replay script)
and tests stay deterministic.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.exceptions import ParameterError
from repro.stream.live import LiveDetector, StreamSnapshot

__all__ = ["StreamCoordinator"]


class StreamCoordinator:
    """Keeps a served model fresh from a live stream.

    Args:
        live: The live detector owning the sliding window.
        service: An :class:`~repro.serve.OutlierService` (anything
            with ``swap(name, model)``).
        name: Detector name to install snapshots under.
        every_points: Refresh after this many accepted points
            (``None`` disables the trigger).
        every_s: Refresh when the served snapshot is older than this
            many seconds (``None`` disables).
        drift_threshold: Refresh when window-label drift since the
            last snapshot reaches this fraction (``None`` disables).
        min_points: Do not install a snapshot until the window holds
            at least this many points (avoids serving a near-empty
            model during warm-up).

    At least one trigger must be enabled; :meth:`refresh` can always
    be called explicitly regardless of policy.
    """

    def __init__(
        self,
        live: LiveDetector,
        service,
        name: str = "live",
        every_points: int | None = None,
        every_s: float | None = None,
        drift_threshold: float | None = None,
        min_points: int = 1,
    ) -> None:
        if every_points is not None and every_points < 1:
            raise ParameterError(
                f"every_points must be >= 1, got {every_points}"
            )
        if every_s is not None and not every_s > 0:
            raise ParameterError(f"every_s must be > 0, got {every_s}")
        if drift_threshold is not None and not (
            0.0 <= drift_threshold <= 1.0
        ):
            raise ParameterError(
                "drift_threshold must be in [0, 1], "
                f"got {drift_threshold}"
            )
        if every_points is None and every_s is None and (
            drift_threshold is None
        ):
            raise ParameterError(
                "enable at least one refresh trigger (every_points, "
                "every_s, or drift_threshold)"
            )
        self.live = live
        self.service = service
        self.name = str(name)
        self.every_points = every_points
        self.every_s = every_s
        self.drift_threshold = drift_threshold
        self.min_points = int(min_points)
        self._points_since_swap = 0
        self._last_swap_at: float | None = None
        self._swaps = 0
        self._last_snapshot: StreamSnapshot | None = None

    # -- driving -------------------------------------------------------

    def ingest(
        self,
        points: np.ndarray,
        timestamps: np.ndarray | float | None = None,
    ) -> dict[str, Any]:
        """Feed a batch into the window, refreshing if policy fires.

        Returns a status dict (accepted/evicted counts, window size,
        whether a swap happened, installed version if so).
        """
        outcome = self.live.ingest(points, timestamps=timestamps)
        self._points_since_swap += outcome.accepted
        swapped = self._maybe_refresh()
        status = {
            "accepted": outcome.accepted,
            "evicted": outcome.evicted,
            "window_points": outcome.window_points,
            "swapped": swapped is not None,
        }
        if swapped is not None:
            status["version"] = swapped
        return status

    def tick(self) -> int | None:
        """Evaluate time/drift triggers outside the ingest path.

        Returns the installed version when a swap happened, else
        ``None``.  Call this from a timer when the stream can go quiet
        (an ``every_s`` policy must not depend on traffic to fire).
        """
        return self._maybe_refresh()

    def refresh(self) -> int:
        """Snapshot the window now and hot-swap it into the service.

        Returns:
            The version number the service installed.
        """
        snapshot = self.live.snapshot()
        version = self.service.swap(self.name, snapshot.model)
        self._last_snapshot = snapshot
        self._points_since_swap = 0
        self._last_swap_at = time.monotonic()
        self._swaps += 1
        self.live.metrics.increment("stream.swaps")
        return version

    def _maybe_refresh(self) -> int | None:
        if self.live.window_points < self.min_points:
            return None
        if self._due():
            return self.refresh()
        return None

    def _due(self) -> bool:
        if self._swaps == 0:
            # Nothing served yet: the first eligible window ships.
            return True
        if (
            self.every_points is not None
            and self._points_since_swap >= self.every_points
        ):
            return True
        if self.every_s is not None and self._last_swap_at is not None:
            if time.monotonic() - self._last_swap_at >= self.every_s:
                return True
        if self.drift_threshold is not None:
            if (
                self.live.drift_since_snapshot()
                >= self.drift_threshold
            ):
                return True
        return False

    # -- introspection -------------------------------------------------

    @property
    def n_swaps(self) -> int:
        """Snapshots installed into the service so far."""
        return self._swaps

    @property
    def last_snapshot(self) -> StreamSnapshot | None:
        """The most recently installed snapshot (``None`` initially)."""
        return self._last_snapshot

    def status(self) -> dict[str, Any]:
        """One JSON-able view of the stream/serving state."""
        age = self.live.snapshot_age_s()
        status: dict[str, Any] = {
            "detector": self.name,
            "window_points": self.live.window_points,
            "window_policy": self.live.policy.describe(),
            "snapshots": self.live.n_snapshots,
            "swaps": self._swaps,
            "points_since_swap": self._points_since_swap,
            "snapshot_age_s": age,
        }
        if self._last_snapshot is not None:
            status["snapshot_sequence"] = self._last_snapshot.sequence
            status["snapshot_drift"] = self._last_snapshot.drift
        return status

    def telemetry(self) -> dict[str, Any]:
        """Numeric counters from the live detector (stream.* etc.)."""
        return self.live.telemetry()

    def __repr__(self) -> str:
        triggers = []
        if self.every_points is not None:
            triggers.append(f"every_points={self.every_points}")
        if self.every_s is not None:
            triggers.append(f"every_s={self.every_s:g}")
        if self.drift_threshold is not None:
            triggers.append(f"drift>={self.drift_threshold:g}")
        return (
            f"StreamCoordinator(name={self.name!r}, "
            f"{', '.join(triggers)}, swaps={self._swaps})"
        )
