"""Live detectors: exact sliding-window maintenance + snapshot export.

:class:`LiveDetector` is the streaming counterpart of a fitted
detector.  It owns an
:class:`~repro.core.incremental.IncrementalDBSCOUT`, accepts
``ingest``/``evict`` batches, applies a pluggable sliding-window
:class:`~repro.stream.window.EvictionPolicy`, and exports
point-in-time :class:`~repro.core.classify.CoreModel` snapshots.

**Consistency contract.**  A snapshot is an *exact batch fit over the
currently-active window*: the core-point set the snapshot serves is
bit-identical to what ``DBSCOUT.fit`` would compute on exactly the
points currently inside the window (the incremental engine's
affected-neighborhood re-evaluation is exact under the qa exactness
contract — neighbor ⟺ same cell OR ordered-accumulation sq ≤ eps²).
Queries classified against a snapshot therefore never see a half
updated state: each installed model version is one window, frozen.

Every operation updates ``stream.*`` counters on :attr:`metrics`
(declared in :mod:`repro.obs.names`), so a live detector is scrapeable
through the same exposition plane as everything else.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.classify import CoreModel
from repro.core.grid import validate_points
from repro.core.incremental import IncrementalDBSCOUT
from repro.exceptions import ParameterError
from repro.obs import MetricsRegistry
from repro.stream.window import EvictionPolicy, resolve_policy
from repro.types import DetectionResult

__all__ = ["LiveDetector", "IngestOutcome", "StreamSnapshot"]


@dataclass(frozen=True)
class IngestOutcome:
    """Per-batch facts returned by :meth:`LiveDetector.ingest`."""

    accepted: int
    evicted: int
    window_points: int
    lag_s: float


@dataclass(frozen=True)
class StreamSnapshot:
    """One exported point-in-time model plus its provenance."""

    model: CoreModel
    sequence: int
    window_points: int
    built_at: float
    latency_s: float
    drift: float


class LiveDetector:
    """Exact outlier detection over a sliding window of a stream.

    Args:
        eps: Neighborhood radius.
        min_pts: Density threshold (self included).
        window: Sliding-window eviction policy — an
            :class:`~repro.stream.window.EvictionPolicy`, an integer
            (count window of that size), or ``None`` (keep everything).
        kernel: Distance-kernel tier forwarded to the incremental
            engine; labels are bit-identical for every choice.
        name: Detector name used in snapshot metadata.

    Thread safety: every public method takes the detector lock, so one
    ingest path and one snapshot path may run from different threads
    (the server's event loop and a coordinator timer, say) without
    corrupting the window bookkeeping.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        window: EvictionPolicy | int | None = None,
        kernel: str | None = "auto",
        name: str = "live",
    ) -> None:
        self._engine = IncrementalDBSCOUT(eps, min_pts, kernel=kernel)
        self.policy = resolve_policy(window)
        self.name = str(name)
        self.metrics = MetricsRegistry()
        self._lock = threading.RLock()
        self._active: list[int] = []  # insertion ids, oldest first
        self._timestamps: list[float] = []
        self._stream_clock = float("-inf")
        self._snapshots = 0
        self._last_snapshot_at: float | None = None
        self._last_labels: dict[int, bool] = {}

    # -- basic facts ---------------------------------------------------

    @property
    def eps(self) -> float:
        return self._engine.eps

    @property
    def min_pts(self) -> int:
        return self._engine.min_pts

    @property
    def window_points(self) -> int:
        """Points currently inside the active window."""
        with self._lock:
            return len(self._active)

    @property
    def n_snapshots(self) -> int:
        """Snapshots exported so far."""
        with self._lock:
            return self._snapshots

    def active_points(self) -> np.ndarray:
        """The active window's points, oldest first (copy)."""
        with self._lock:
            if not self._active:
                n_dims = self._engine.n_dims or 0
                return np.empty((0, n_dims))
            return self._engine._points_view()[self._active].copy()

    # -- ingest / evict ------------------------------------------------

    def ingest(
        self,
        points: np.ndarray,
        timestamps: np.ndarray | float | None = None,
    ) -> IngestOutcome:
        """Insert a batch, then apply the window policy.

        Args:
            points: ``(n, d)`` batch of new points.
            timestamps: Optional ingest timestamps — an ``(n,)`` array,
                one scalar for the whole batch, or ``None`` (wall
                clock).  The stream clock is the maximum timestamp seen
                so far; time-window eviction measures age against it.
        """
        started = time.perf_counter()
        batch = validate_points(points) if np.asarray(points).size else (
            np.asarray(points, dtype=np.float64)
        )
        n_new = int(batch.shape[0]) if batch.ndim == 2 else 0
        stamps = self._normalize_stamps(timestamps, n_new)
        with self._lock:
            if n_new:
                start = self._engine.n_points
                self._engine.insert(batch)
                self._active.extend(range(start, start + n_new))
                self._timestamps.extend(stamps)
                self._stream_clock = max(
                    self._stream_clock, max(stamps)
                )
            evicted = self._apply_policy()
            window = len(self._active)
        lag_s = time.perf_counter() - started
        self.metrics.increment("stream.batches")
        self.metrics.increment("stream.points_ingested", n_new)
        if evicted:
            self.metrics.increment("stream.points_evicted", evicted)
        self.metrics.set("stream.window_points", window)
        self.metrics.set("stream.ingest_lag_ms", lag_s * 1e3)
        return IngestOutcome(
            accepted=n_new,
            evicted=evicted,
            window_points=window,
            lag_s=lag_s,
        )

    def evict(
        self,
        count: int | None = None,
        older_than: float | None = None,
    ) -> int:
        """Manually evict points; returns how many left the window.

        Args:
            count: Evict the ``count`` oldest points.
            older_than: Evict points stamped strictly before this
                stream timestamp.

        Exactly one of the two must be given.
        """
        if (count is None) == (older_than is None):
            raise ParameterError(
                "evict needs exactly one of count= or older_than="
            )
        with self._lock:
            if count is not None:
                if count < 0:
                    raise ParameterError(
                        f"count must be >= 0, got {count}"
                    )
                victims = self._active[: min(int(count), len(self._active))]
            else:
                victims = [
                    index
                    for index, stamp in zip(
                        self._active, self._timestamps
                    )
                    if stamp < float(older_than)
                ]
            self._drop(victims)
            window = len(self._active)
        if victims:
            self.metrics.increment("stream.points_evicted", len(victims))
        self.metrics.set("stream.window_points", window)
        return len(victims)

    def _normalize_stamps(
        self, timestamps, n_new: int
    ) -> list[float]:
        if n_new == 0:
            return []
        if timestamps is None:
            return [time.time()] * n_new
        array = np.atleast_1d(np.asarray(timestamps, dtype=np.float64))
        if array.size == 1:
            return [float(array[0])] * n_new
        if array.shape != (n_new,):
            raise ParameterError(
                f"timestamps must be scalar or shape ({n_new},), "
                f"got {array.shape}"
            )
        return [float(stamp) for stamp in array]

    def _apply_policy(self) -> int:
        victims = self.policy.select_evictions(
            self._active,
            np.asarray(self._timestamps, dtype=np.float64),
            self._stream_clock,
        )
        self._drop(victims)
        return len(victims)

    def _drop(self, victims: list[int]) -> None:
        if not victims:
            return
        self._engine.remove(victims)
        gone = set(victims)
        keep = [
            (index, stamp)
            for index, stamp in zip(self._active, self._timestamps)
            if index not in gone
        ]
        self._active = [index for index, _ in keep]
        self._timestamps = [stamp for _, stamp in keep]
        for index in victims:
            self._last_labels.pop(index, None)

    # -- results / snapshots -------------------------------------------

    def result(self) -> DetectionResult:
        """Exact labels over the active window, oldest first.

        Equivalent to a batch fit over exactly the active points (the
        consistency contract); only affected neighborhoods are
        recomputed.
        """
        with self._lock:
            full = self._engine.detect()
            active = np.asarray(self._active, dtype=np.int64)
            return DetectionResult(
                n_points=int(active.size),
                outlier_mask=full.outlier_mask[active],
                core_mask=full.core_mask[active],
                timings=full.timings,
                stats=full.stats,
                record=full.record,
            )

    def drift_since_snapshot(self) -> float:
        """Fraction of surviving window labels changed since the last
        snapshot (1.0 before any snapshot, 0.0 for an empty overlap)."""
        with self._lock:
            if not self._last_labels:
                return 1.0
            full = self._engine.detect()
            overlap = [
                index for index in self._active
                if index in self._last_labels
            ]
            if not overlap:
                return 0.0
            changed = sum(
                1
                for index in overlap
                if bool(full.outlier_mask[index])
                != self._last_labels[index]
            )
            return changed / len(overlap)

    def snapshot(self) -> StreamSnapshot:
        """Export the current window as a frozen, servable CoreModel.

        The snapshot is an exact batch fit over the active window: the
        model's core points are precisely the window's core points at
        this instant, so classify against it is bit-consistent with
        ``DBSCOUT.fit`` on the same points.
        """
        started = time.perf_counter()
        with self._lock:
            window = self.result()
            points = self.active_points()
            drift = self._measure_drift(window)
            model = CoreModel.from_fit(
                points,
                window,
                self.eps,
                self.min_pts,
                engine="incremental",
                detector=self.name,
                window_policy=self.policy.describe(),
                snapshot_sequence=self._snapshots + 1,
            ) if points.shape[0] else self._empty_model()
            self._snapshots += 1
            sequence = self._snapshots
            self._last_labels = {
                index: bool(flag)
                for index, flag in zip(
                    self._active, window.outlier_mask
                )
            }
            self._last_snapshot_at = time.monotonic()
            n_window = len(self._active)
        latency_s = time.perf_counter() - started
        self.metrics.increment("stream.snapshots")
        self.metrics.set("stream.snapshot_latency_ms", latency_s * 1e3)
        self.metrics.set("stream.snapshot_age_s", 0.0)
        self.metrics.set("stream.drift", drift)
        return StreamSnapshot(
            model=model,
            sequence=sequence,
            window_points=n_window,
            built_at=time.time(),
            latency_s=latency_s,
            drift=drift,
        )

    def _measure_drift(self, window: DetectionResult) -> float:
        if not self._last_labels:
            return 1.0 if self._snapshots == 0 else 0.0
        overlap = [
            (index, flag)
            for index, flag in zip(self._active, window.outlier_mask)
            if index in self._last_labels
        ]
        if not overlap:
            return 0.0
        changed = sum(
            1
            for index, flag in overlap
            if bool(flag) != self._last_labels[index]
        )
        return changed / len(overlap)

    def _empty_model(self) -> CoreModel:
        n_dims = self._engine.n_dims or 1
        return CoreModel(
            eps=self.eps,
            min_pts=self.min_pts,
            n_dims=n_dims,
            core_points=np.empty((0, n_dims)),
            core_cells=np.empty((0, n_dims), dtype=np.int64),
            core_starts=np.zeros(1, dtype=np.int64),
            n_train=0,
            engine="incremental",
            metadata={"detector": self.name},
        )

    def snapshot_age_s(self) -> float | None:
        """Seconds since the last snapshot (``None`` before the first).

        Also refreshes the ``stream.snapshot_age_s`` gauge, so polling
        status keeps the exposition plane current.
        """
        with self._lock:
            if self._last_snapshot_at is None:
                return None
            age = time.monotonic() - self._last_snapshot_at
        self.metrics.set("stream.snapshot_age_s", age)
        return age

    def telemetry(self) -> dict[str, Any]:
        """Numeric ``stream.*``/``incremental.*`` counters, merged."""
        self.snapshot_age_s()
        counters = self.metrics.snapshot()
        counters.update(self._engine.metrics.snapshot())
        return counters

    def __repr__(self) -> str:
        return (
            f"LiveDetector(name={self.name!r}, eps={self.eps}, "
            f"min_pts={self.min_pts}, window={self.policy.describe()}, "
            f"points={self.window_points}, snapshots={self.n_snapshots})"
        )
