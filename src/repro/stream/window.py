"""Sliding-window eviction policies for live streaming detectors.

A :class:`LiveDetector <repro.stream.live.LiveDetector>` owns an
:class:`~repro.core.incremental.IncrementalDBSCOUT` and applies one of
these policies after every ingest batch to decide which of the
currently active points fall out of the window.  Two shapes cover the
replay patterns of the streaming examples:

* :class:`CountWindow` — keep the most recent ``max_points`` points
  (the GPS-feed replay shape: a bounded in-memory map of the latest
  fixes);
* :class:`TimeWindow` — keep points whose ingest timestamp is within
  ``horizon_s`` of the newest one (sensor feeds where staleness, not
  volume, bounds relevance);
* :class:`KeepAll` — never evict (pure growth, the historical-base
  case).

Policies are pure decision functions over the window bookkeeping the
detector maintains (insertion order and per-point timestamps), so they
are trivially testable and new shapes (e.g. spatial eviction) slot in
by implementing :meth:`EvictionPolicy.select_evictions`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "EvictionPolicy",
    "CountWindow",
    "TimeWindow",
    "KeepAll",
    "resolve_policy",
]


class EvictionPolicy(ABC):
    """Decides which active points leave the window after an ingest."""

    @abstractmethod
    def select_evictions(
        self,
        active_indices: Sequence[int],
        timestamps: np.ndarray,
        now: float,
    ) -> list[int]:
        """Indices (detector insertion ids) to evict.

        Args:
            active_indices: Insertion indices of the active points, in
                insertion (arrival) order — oldest first.
            timestamps: Ingest timestamp per active point, parallel to
                ``active_indices``.
            now: The newest ingest timestamp (the stream clock).

        Returns:
            The subset of ``active_indices`` to remove, oldest first.
        """

    def describe(self) -> str:
        """Human-readable policy summary for status surfaces."""
        return type(self).__name__


class CountWindow(EvictionPolicy):
    """Keep only the most recent ``max_points`` points."""

    def __init__(self, max_points: int) -> None:
        if max_points < 1:
            raise ParameterError(
                f"max_points must be >= 1, got {max_points}"
            )
        self.max_points = int(max_points)

    def select_evictions(
        self,
        active_indices: Sequence[int],
        timestamps: np.ndarray,
        now: float,
    ) -> list[int]:
        excess = len(active_indices) - self.max_points
        if excess <= 0:
            return []
        return list(active_indices[:excess])

    def describe(self) -> str:
        return f"count<={self.max_points}"


class TimeWindow(EvictionPolicy):
    """Keep points whose timestamp is within ``horizon_s`` of ``now``.

    The boundary is inclusive: a point stamped exactly ``now -
    horizon_s`` stays — matching the library's inclusive ``<= eps``
    convention everywhere a threshold appears.
    """

    def __init__(self, horizon_s: float) -> None:
        if not horizon_s > 0:
            raise ParameterError(
                f"horizon_s must be > 0, got {horizon_s}"
            )
        self.horizon_s = float(horizon_s)

    def select_evictions(
        self,
        active_indices: Sequence[int],
        timestamps: np.ndarray,
        now: float,
    ) -> list[int]:
        cutoff = now - self.horizon_s
        expired = np.asarray(timestamps, dtype=np.float64) < cutoff
        return [
            index
            for index, gone in zip(active_indices, expired)
            if gone
        ]

    def describe(self) -> str:
        return f"age<={self.horizon_s:g}s"


class KeepAll(EvictionPolicy):
    """Never evict: the window is the whole stream so far."""

    def select_evictions(
        self,
        active_indices: Sequence[int],
        timestamps: np.ndarray,
        now: float,
    ) -> list[int]:
        return []

    def describe(self) -> str:
        return "keep-all"


def resolve_policy(policy) -> EvictionPolicy:
    """Normalize a policy argument.

    Accepts an :class:`EvictionPolicy`, ``None`` (→ :class:`KeepAll`),
    or an integer (→ :class:`CountWindow` of that size — the common
    shorthand on the CLI and in the examples).
    """
    if policy is None:
        return KeepAll()
    if isinstance(policy, EvictionPolicy):
        return policy
    if isinstance(policy, (int, np.integer)) and not isinstance(
        policy, bool
    ):
        return CountWindow(int(policy))
    raise ParameterError(
        "window policy must be an EvictionPolicy, a max-point count, "
        f"or None; got {policy!r}"
    )
