"""Shared result types for the DBSCOUT reproduction library.

The central type is :class:`DetectionResult`, returned by every outlier
detector in the library (DBSCOUT itself and every baseline) so that the
metrics and experiment harnesses can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.obs.metrics import to_builtin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.record import RunRecord

__all__ = [
    "DetectionResult",
    "TimingBreakdown",
]


@dataclass(frozen=True)
class TimingBreakdown:
    """Wall-clock timing of each named phase of a detector run.

    Attributes:
        phases: Mapping from phase name (e.g. ``"grid"``,
            ``"core_points"``) to elapsed seconds.
    """

    phases: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_spans(cls, spans) -> "TimingBreakdown":
        """Build from a list of span dicts or ``SpanRecord`` objects.

        Top-level spans (depth 0) become phases; repeated names sum.
        This is how engine timings become views over the run record.
        """
        phases: dict[str, float] = {}
        for span in spans:
            if isinstance(span, Mapping):
                depth = span.get("depth", 0)
                name = span["name"]
                duration = span.get("duration_s", 0.0)
            else:
                depth, name, duration = (
                    span.depth, span.name, span.duration_s
                )
            if depth == 0:
                phases[name] = phases.get(name, 0.0) + float(duration)
        return cls(phases)

    @property
    def total(self) -> float:
        """Total elapsed seconds across all phases."""
        return float(sum(self.phases.values()))

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in self.phases.items())
        return f"TimingBreakdown({parts}, total={self.total:.4f}s)"


@dataclass(frozen=True)
class DetectionResult:
    """The outcome of running an outlier detector on a dataset.

    Attributes:
        n_points: Number of input points.
        outlier_mask: Boolean array of shape ``(n_points,)``; ``True``
            marks an outlier.
        core_mask: Boolean array of shape ``(n_points,)`` marking core
            points, when the detector defines them (density-based
            detectors); otherwise ``None``.
        scores: Optional per-point anomaly scores (higher = more
            anomalous) for score-based detectors such as LOF/IF/OC-SVM.
        timings: Optional per-phase wall-clock breakdown.
        record: Optional structured run record
            (:class:`repro.obs.RunRecord`) capturing spans, namespaced
            counters, memory, and library versions for this run; the
            engines populate it and derive ``timings``/``stats`` from
            it, so those fields are views over the record.
        stats: Free-form detector statistics (cell counts, shuffle
            volumes, ...), useful for experiments and debugging.
            Values are coerced to JSON-safe builtins at construction.
            The vectorized engine reports, among others:

            * ``distance_computations`` — pairwise distances actually
              evaluated (the paper's per-tuple work budget);
            * ``pruned_cells`` — cells skipped because their whole
              neighborhood holds fewer than ``min_pts`` points;
            * ``pairs_skipped_covered`` — member/candidate pairs
              resolved by fully-covered cell geometry (bounding-box
              max distance ``<= eps``) without a distance computation;
            * ``pairs_skipped_excluded`` — pairs dropped because the
              bounding-box min distance exceeds ``eps``;
            * ``cells_settled_covered`` — outlier-round work cells
              settled by a single covered core cell;
            * ``n_jobs`` / ``pruning`` — the engine options in effect.
    """

    n_points: int
    outlier_mask: np.ndarray
    core_mask: np.ndarray | None = None
    scores: np.ndarray | None = None
    timings: TimingBreakdown | None = None
    stats: Mapping[str, Any] = field(default_factory=dict)
    record: "RunRecord | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "stats", to_builtin(dict(self.stats), finite=True)
        )
        mask = np.asarray(self.outlier_mask, dtype=bool)
        if mask.shape != (self.n_points,):
            raise ValueError(
                f"outlier_mask has shape {mask.shape}, "
                f"expected ({self.n_points},)"
            )
        object.__setattr__(self, "outlier_mask", mask)
        if self.core_mask is not None:
            core = np.asarray(self.core_mask, dtype=bool)
            if core.shape != (self.n_points,):
                raise ValueError(
                    f"core_mask has shape {core.shape}, "
                    f"expected ({self.n_points},)"
                )
            object.__setattr__(self, "core_mask", core)

    @property
    def outlier_indices(self) -> np.ndarray:
        """Indices of the detected outliers, ascending."""
        return np.flatnonzero(self.outlier_mask)

    @property
    def n_outliers(self) -> int:
        """Number of detected outliers."""
        return int(self.outlier_mask.sum())

    @property
    def n_core_points(self) -> int:
        """Number of core points (0 if the detector has no such notion)."""
        if self.core_mask is None:
            return 0
        return int(self.core_mask.sum())

    def labels(self) -> np.ndarray:
        """Return sklearn-style labels: 1 for outliers, 0 for inliers."""
        return self.outlier_mask.astype(np.int64)
