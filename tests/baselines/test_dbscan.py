"""Tests for the exact DBSCAN baseline."""

import numpy as np
import pytest

from repro.baselines.dbscan import NOISE, DBSCAN, dbscan_labels
from repro.core.reference import brute_force_core_mask, brute_force_detect
from repro.exceptions import ParameterError


class TestClustering:
    def test_two_well_separated_clusters(self, rng):
        a = rng.normal(0.0, 0.3, size=(80, 2))
        b = rng.normal(10.0, 0.3, size=(80, 2))
        result = DBSCAN(1.0, 5).fit(np.vstack([a, b]))
        assert result.n_clusters == 2
        labels_a = set(result.labels[:80]) - {NOISE}
        labels_b = set(result.labels[80:]) - {NOISE}
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_core_mask_matches_definition(self, clustered_2d):
        result = DBSCAN(0.8, 8).fit(clustered_2d)
        expected = brute_force_core_mask(clustered_2d, 0.8, 8)
        assert np.array_equal(result.core_mask, expected)

    def test_noise_equals_definition3_outliers(self, clustered_2d):
        # The bridge to DBSCOUT: DBSCAN noise is exactly the set of
        # points not within eps of any core point.
        result = DBSCAN(0.8, 8).fit(clustered_2d)
        expected = brute_force_detect(clustered_2d, 0.8, 8)
        assert np.array_equal(result.noise_mask, expected.outlier_mask)

    def test_brute_and_kdtree_agree(self, clustered_2d):
        kdtree = DBSCAN(0.8, 8, algorithm="kdtree").fit(clustered_2d)
        brute = DBSCAN(0.8, 8, algorithm="brute").fit(clustered_2d)
        assert np.array_equal(kdtree.noise_mask, brute.noise_mask)
        assert np.array_equal(kdtree.core_mask, brute.core_mask)
        assert kdtree.n_clusters == brute.n_clusters

    def test_every_core_point_is_clustered(self, clustered_2d):
        result = DBSCAN(0.8, 8).fit(clustered_2d)
        assert (result.labels[result.core_mask] != NOISE).all()

    def test_border_points_join_some_cluster(self, clustered_2d):
        result = DBSCAN(0.8, 8).fit(clustered_2d)
        border = ~result.core_mask & ~result.noise_mask
        assert (result.labels[border] >= 0).all()

    def test_clusters_are_eps_connected_through_cores(self, rng):
        # Two clusters bridged by a chain of core points must merge.
        left = rng.normal(0.0, 0.2, size=(50, 2))
        right = rng.normal(0.0, 0.2, size=(50, 2)) + [4.0, 0.0]
        bridge = np.column_stack(
            [np.linspace(0, 4, 80), np.zeros(80)]
        ) + rng.normal(0, 0.02, (80, 2))
        result = DBSCAN(0.5, 4).fit(np.vstack([left, right, bridge]))
        non_noise = result.labels[result.labels != NOISE]
        assert len(set(non_noise)) == 1

    def test_single_cluster_all_duplicates(self):
        points = np.tile([[1.0, 1.0]], (10, 1))
        result = DBSCAN(0.5, 5).fit(points)
        assert result.n_clusters == 1
        assert not result.noise_mask.any()

    def test_empty_input(self):
        result = DBSCAN(1.0, 3).fit(np.zeros((0, 2)))
        assert result.n_clusters == 0
        assert result.labels.shape == (0,)

    def test_all_noise(self, rng):
        points = rng.uniform(-100, 100, size=(20, 2))
        result = DBSCAN(0.01, 3).fit(points)
        assert result.noise_mask.all()
        assert result.n_clusters == 0

    def test_repr(self, clustered_2d):
        assert "n_clusters" in repr(DBSCAN(0.8, 8).fit(clustered_2d))


class TestDetectorFacade:
    def test_detect_matches_dbscout(self, clustered_2d):
        from repro import detect_outliers

        baseline = DBSCAN(0.8, 8).detect(clustered_2d)
        dbscout = detect_outliers(clustered_2d, 0.8, 8)
        assert np.array_equal(baseline.outlier_mask, dbscout.outlier_mask)

    def test_detect_with_overrides(self, clustered_2d):
        baseline = DBSCAN(99.0, 1).detect(clustered_2d, eps=0.8, min_pts=8)
        expected = DBSCAN(0.8, 8).detect(clustered_2d)
        assert np.array_equal(baseline.outlier_mask, expected.outlier_mask)

    def test_stats(self, clustered_2d):
        result = DBSCAN(0.8, 8).detect(clustered_2d)
        assert result.stats["algorithm"] == "dbscan"
        assert result.stats["n_clusters"] >= 1


class TestValidation:
    def test_invalid_algorithm(self):
        with pytest.raises(ParameterError):
            DBSCAN(1.0, 3, algorithm="ball_tree")

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            DBSCAN(-1.0, 3)
        with pytest.raises(ParameterError):
            DBSCAN(1.0, 0)

    def test_labels_helper(self, clustered_2d):
        labels = dbscan_labels(clustered_2d, 0.8, 8)
        assert labels.shape == (clustered_2d.shape[0],)
