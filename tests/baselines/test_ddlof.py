"""Tests for the DDLOF distributed LOF baseline."""

import numpy as np
import pytest

from repro.baselines.ddlof import DDLOF
from repro.baselines.lof import lof_scores
from repro.exceptions import ParameterError


class TestExactness:
    def test_scores_match_centralized_lof(self, rng):
        points = np.vstack(
            [rng.normal(0, 0.5, (300, 2)), rng.uniform(-5, 5, (40, 2))]
        )
        distributed = DDLOF(k=6, points_per_block=60).detect(points)
        assert np.allclose(distributed.scores, lof_scores(points, 6))

    def test_scores_match_in_3d(self, rng):
        points = rng.normal(size=(250, 3))
        distributed = DDLOF(k=5, points_per_block=50).detect(points)
        assert np.allclose(distributed.scores, lof_scores(points, 5))

    def test_small_blocks_force_corrections(self, rng):
        points = rng.normal(size=(200, 2))
        result = DDLOF(
            k=8, points_per_block=10, support_factor=0.05, max_rounds=1
        ).detect(points)
        # Tiny blocks with a thin margin cannot resolve everything in
        # one round; the global fallback must kick in — and the final
        # scores are still exact.
        assert result.stats["n_unresolved"] > 0
        assert np.allclose(result.scores, lof_scores(points, 8))

    def test_multi_round_expansion_resolves_more(self, rng):
        points = rng.normal(size=(300, 2))
        kwargs = dict(k=8, points_per_block=12, support_factor=0.05)
        one_round = DDLOF(max_rounds=1, **kwargs).detect(points)
        many_rounds = DDLOF(max_rounds=4, **kwargs).detect(points)
        # Extra rounds shrink what the global fallback must handle,
        # without changing the (exact) scores.
        assert (
            many_rounds.stats["n_unresolved"]
            < one_round.stats["n_unresolved"]
        )
        assert len(many_rounds.stats["rounds"]) > 1
        assert np.allclose(many_rounds.scores, one_round.scores)
        assert np.allclose(many_rounds.scores, lof_scores(points, 8))

    def test_round_log_margins_double(self, rng):
        points = rng.normal(size=(250, 2))
        result = DDLOF(
            k=8, points_per_block=10, support_factor=0.05, max_rounds=3
        ).detect(points)
        margins = [entry["margin"] for entry in result.stats["rounds"]]
        for previous, current in zip(margins, margins[1:]):
            assert current == pytest.approx(2 * previous)

    def test_block_count_does_not_change_scores(self, rng):
        points = rng.normal(size=(200, 2))
        small_blocks = DDLOF(k=6, points_per_block=20).detect(points)
        big_blocks = DDLOF(k=6, points_per_block=200).detect(points)
        assert np.allclose(small_blocks.scores, big_blocks.scores)


class TestSkewBehaviour:
    def test_memory_valve_triggers_on_skew(self, rng):
        # 90% of the mass in one tiny hotspot: the hottest block blows
        # past the cap, emulating the paper's DDLOF OOM/DNF on Geolife.
        hotspot = rng.normal(0.0, 0.01, size=(900, 2))
        spread = rng.uniform(-100, 100, size=(100, 2))
        points = np.vstack([hotspot, spread])
        detector = DDLOF(
            k=6, points_per_block=50, max_block_population=500
        )
        with pytest.raises(MemoryError):
            detector.detect(points)

    def test_no_valve_completes_on_skew(self, rng):
        hotspot = rng.normal(0.0, 0.01, size=(300, 2))
        spread = rng.uniform(-100, 100, size=(50, 2))
        points = np.vstack([hotspot, spread])
        result = DDLOF(k=6, points_per_block=50).detect(points)
        assert result.n_points == 350

    def test_max_block_population_reported(self, rng):
        points = rng.normal(size=(100, 2))
        result = DDLOF(k=5, points_per_block=25).detect(points)
        assert result.stats["max_block_population"] >= 1


class TestDetector:
    def test_contamination_fraction(self, rng):
        points = rng.normal(size=(200, 2))
        result = DDLOF(k=6, contamination=0.1, points_per_block=50).detect(
            points
        )
        assert result.n_outliers == pytest.approx(20, abs=3)

    def test_finds_planted_outlier(self, rng):
        cluster = rng.normal(0.0, 0.4, size=(150, 2))
        points = np.vstack([cluster, [[9.0, 9.0]]])
        result = DDLOF(k=6, contamination=0.01, points_per_block=40).detect(
            points
        )
        assert result.outlier_mask[-1]

    def test_timings_phases(self, rng):
        points = rng.normal(size=(120, 2))
        result = DDLOF(k=5, points_per_block=30).detect(points)
        assert set(result.timings.phases) == {
            "partition",
            "k_distance",
            "correction",
            "lrd",
            "lof",
        }

    def test_needs_more_points_than_k(self):
        with pytest.raises(ParameterError):
            DDLOF(k=6).detect(np.zeros((5, 2)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"contamination": 0.0},
            {"points_per_block": 0},
            {"support_factor": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            DDLOF(**kwargs)
