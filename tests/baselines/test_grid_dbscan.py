"""Tests for the exact grid-based DBSCAN baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import detect_outliers
from repro.baselines.dbscan import NOISE, DBSCAN
from repro.baselines.grid_dbscan import GridDBSCAN


class TestNoiseEqualsDbscoutOutliers:
    """The paper's starting observation, asserted exactly."""

    def test_clustered_2d(self, clustered_2d):
        grid_result = GridDBSCAN(0.8, 8).fit(clustered_2d)
        scout = detect_outliers(clustered_2d, 0.8, 8)
        assert np.array_equal(grid_result.noise_mask, scout.outlier_mask)
        assert np.array_equal(grid_result.core_mask, scout.core_mask)

    def test_clustered_3d(self, clustered_3d):
        grid_result = GridDBSCAN(1.0, 10).fit(clustered_3d)
        scout = detect_outliers(clustered_3d, 1.0, 10)
        assert np.array_equal(grid_result.noise_mask, scout.outlier_mask)


class TestClusteringCorrectness:
    def test_matches_kdtree_dbscan_structure(self, clustered_2d):
        grid_result = GridDBSCAN(0.8, 8).fit(clustered_2d)
        reference = DBSCAN(0.8, 8).fit(clustered_2d)
        assert grid_result.n_clusters == reference.n_clusters
        assert np.array_equal(grid_result.core_mask, reference.core_mask)
        assert np.array_equal(grid_result.noise_mask, reference.noise_mask)
        # Core points must induce the identical cluster partition
        # (labels may be permuted).
        core = grid_result.core_mask
        mapping: dict[int, int] = {}
        for ours, theirs in zip(
            grid_result.labels[core], reference.labels[core]
        ):
            assert mapping.setdefault(int(ours), int(theirs)) == int(theirs)

    def test_two_separated_clusters(self, rng):
        a = rng.normal(0.0, 0.3, size=(80, 2))
        b = rng.normal(10.0, 0.3, size=(80, 2))
        result = GridDBSCAN(1.0, 5).fit(np.vstack([a, b]))
        assert result.n_clusters == 2

    def test_border_joins_adjacent_cluster(self):
        # A border point must get the label of a cluster with a core
        # point within eps.
        cluster = np.tile([[0.0, 0.0]], (10, 1))
        border = np.array([[0.9, 0.0]])
        points = np.vstack([cluster, border])
        result = GridDBSCAN(1.0, 5).fit(points)
        assert result.labels[-1] == result.labels[0]

    def test_chain_merges_through_cells(self, rng):
        chain = np.column_stack(
            [np.linspace(0, 10, 200), np.zeros(200)]
        ) + rng.normal(0, 0.02, (200, 2))
        result = GridDBSCAN(0.5, 4).fit(chain)
        assert result.n_clusters == 1

    def test_empty(self):
        result = GridDBSCAN(1.0, 3).fit(np.zeros((0, 2)))
        assert result.n_clusters == 0

    def test_detect_facade(self, clustered_2d):
        detection = GridDBSCAN(0.8, 8).detect(clustered_2d)
        assert detection.stats["algorithm"] == "grid_dbscan"
        assert set(detection.timings.phases) == {
            "core_points",
            "cluster_graph",
            "labelling",
        }


coords = st.integers(min_value=-160, max_value=160).map(lambda k: k / 8.0)


@settings(max_examples=50, deadline=None)
@given(
    points=st.integers(min_value=1, max_value=50).flatmap(
        lambda n: arrays(np.float64, (n, 2), elements=coords)
    ),
    eps_k=st.integers(min_value=1, max_value=100),
    min_pts=st.integers(min_value=1, max_value=6),
)
def test_grid_dbscan_equivalence_property(points, eps_k, min_pts):
    eps = eps_k / 8.0
    grid_result = GridDBSCAN(eps, min_pts).fit(points)
    reference = DBSCAN(eps, min_pts, algorithm="brute").fit(points)
    assert np.array_equal(grid_result.core_mask, reference.core_mask)
    assert np.array_equal(grid_result.noise_mask, reference.noise_mask)
    assert grid_result.n_clusters == reference.n_clusters
    # Non-noise points are labelled; labels form a consistent partition
    # of the cores.
    assert ((grid_result.labels >= 0) == ~grid_result.noise_mask).all()
