"""Tests for the HBOS baseline."""

import numpy as np
import pytest

from repro.baselines.hbos import HBOS
from repro.exceptions import NotFittedError, ParameterError


class TestScores:
    def test_isolated_point_scores_highest(self, rng):
        cluster = rng.normal(0.0, 0.5, size=(500, 2))
        points = np.vstack([cluster, [[15.0, 15.0]]])
        detector = HBOS(contamination=0.01)
        result = detector.detect(points)
        assert result.scores.argmax() == 500
        assert result.outlier_mask[-1]

    def test_scores_additive_over_dimensions(self, rng):
        points = rng.normal(size=(300, 2))
        model = HBOS().fit(points)
        full = model.score(points)
        model_x = HBOS().fit(points[:, :1])
        model_y = HBOS().fit(points[:, 1:])
        # With the same auto bin count, the joint score is the sum of
        # the per-dimension scores.
        assert np.allclose(
            full, model_x.score(points[:, :1]) + model_y.score(points[:, 1:])
        )

    def test_out_of_range_points_clamped(self, rng):
        train = rng.normal(size=(200, 2))
        model = HBOS().fit(train)
        far = model.score(np.array([[1e6, -1e6]]))
        near = model.score(np.array([[0.0, 0.0]]))
        assert far[0] >= near[0]

    def test_uniform_data_scores_flat(self, rng):
        points = rng.uniform(0, 1, size=(5000, 2))
        scores = HBOS(n_bins=10).fit(points).score(points)
        assert scores.std() < 0.5

    def test_axis_blindness(self, rng):
        # The known weakness: a point anomalous only in combination
        # (marginals normal) is invisible to HBOS — while DBSCOUT,
        # being density-based, flags it.
        from repro import detect_outliers

        n = 600
        x = rng.normal(0.0, 1.0, n)
        diag = np.column_stack([x, x + rng.normal(0, 0.05, n)])
        off_diagonal = np.array([[1.5, -1.5]])  # normal marginals!
        points = np.vstack([diag, off_diagonal])
        hbos_rank = (
            HBOS(n_bins=20).fit(points).score(points).argsort().argsort()
        )
        scout = detect_outliers(points, eps=0.4, min_pts=5)
        assert scout.outlier_mask[-1]
        assert hbos_rank[-1] < n  # not the top-scored point


class TestDetector:
    def test_contamination_fraction(self, rng):
        points = rng.normal(size=(400, 2))
        result = HBOS(contamination=0.1).detect(points)
        assert result.n_outliers == pytest.approx(40, abs=6)

    def test_auto_bins_recorded(self, rng):
        points = rng.normal(size=(400, 2))
        result = HBOS().detect(points)
        assert result.stats["n_bins"] == 20  # sqrt(400)

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            HBOS().score(rng.normal(size=(5, 2)))

    def test_dimension_mismatch(self, rng):
        model = HBOS().fit(rng.normal(size=(50, 2)))
        with pytest.raises(ParameterError):
            model.score(rng.normal(size=(5, 3)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_bins": 1},
            {"n_bins": "many"},
            {"contamination": 0.0},
            {"contamination": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            HBOS(**kwargs)

    def test_needs_two_points(self):
        with pytest.raises(ParameterError):
            HBOS().fit(np.array([[1.0, 2.0]]))
