"""Tests for the Isolation Forest baseline."""

import numpy as np
import pytest

from repro.baselines.isolation_forest import (
    IsolationForest,
    average_path_length,
)
from repro.exceptions import NotFittedError, ParameterError


class TestAveragePathLength:
    def test_known_values(self):
        # c(1) = 0, c(2) = 1 by definition.
        assert average_path_length(np.array([1.0]))[0] == 0.0
        assert average_path_length(np.array([2.0]))[0] == 1.0

    def test_monotone_increasing(self):
        values = average_path_length(np.array([2.0, 10.0, 100.0, 1000.0]))
        assert (np.diff(values) > 0).all()

    def test_logarithmic_growth(self):
        # c(n) ~ 2 ln(n); doubling n adds roughly 2 ln 2.
        big = average_path_length(np.array([2048.0]))[0]
        half = average_path_length(np.array([1024.0]))[0]
        assert big - half == pytest.approx(2 * np.log(2), abs=0.01)


class TestDetector:
    def test_isolated_point_scores_highest(self, rng):
        cluster = rng.normal(0.0, 0.5, size=(300, 2))
        points = np.vstack([cluster, [[15.0, 15.0]]])
        forest = IsolationForest(n_trees=100, contamination=0.01, seed=1)
        result = forest.detect(points)
        assert result.scores is not None
        assert result.scores[-1] == result.scores.max()
        assert result.outlier_mask[-1]

    def test_scores_in_unit_interval(self, rng):
        points = rng.normal(size=(200, 2))
        scores = IsolationForest(n_trees=30, seed=2).fit(points).score(points)
        assert (scores > 0).all() and (scores < 1).all()

    def test_deterministic_with_seed(self, rng):
        points = rng.normal(size=(100, 2))
        a = IsolationForest(n_trees=20, seed=5).detect(points)
        b = IsolationForest(n_trees=20, seed=5).detect(points)
        assert np.array_equal(a.outlier_mask, b.outlier_mask)
        assert np.allclose(a.scores, b.scores)

    def test_different_seeds_differ(self, rng):
        points = rng.normal(size=(100, 2))
        a = IsolationForest(n_trees=5, seed=1).detect(points)
        b = IsolationForest(n_trees=5, seed=2).detect(points)
        assert not np.allclose(a.scores, b.scores)

    def test_contamination_controls_count(self, rng):
        points = rng.normal(size=(200, 2))
        result = IsolationForest(contamination=0.1, seed=0).detect(points)
        assert result.n_outliers == pytest.approx(20, abs=3)

    def test_score_unseen_points(self, rng):
        train = rng.normal(size=(200, 2))
        forest = IsolationForest(n_trees=50, seed=0).fit(train)
        inlier_score = forest.score(np.array([[0.0, 0.0]]))[0]
        outlier_score = forest.score(np.array([[30.0, 30.0]]))[0]
        assert outlier_score > inlier_score

    def test_subsample_larger_than_data(self, rng):
        points = rng.normal(size=(50, 2))
        result = IsolationForest(
            n_trees=10, subsample_size=256, seed=0
        ).detect(points)
        assert result.stats["subsample_size"] == 50

    def test_duplicates_handled(self):
        points = np.vstack(
            [np.tile([[1.0, 1.0]], (40, 1)), [[9.0, 9.0]]]
        )
        result = IsolationForest(n_trees=20, contamination=0.05, seed=0).detect(
            points
        )
        assert result.outlier_mask[-1]

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            IsolationForest().score(rng.normal(size=(5, 2)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_trees": 0},
            {"subsample_size": 1},
            {"contamination": 0.0},
            {"contamination": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            IsolationForest(**kwargs)
