"""Tests for the top-n kNN-distance outlier baseline."""

import numpy as np
import pytest

from repro.baselines.knn_outlier import KNNOutlierDetector
from repro.exceptions import ParameterError


class TestScores:
    def test_matches_brute_force_kdistance(self, rng):
        points = rng.normal(size=(80, 2))
        k = 4
        scores = KNNOutlierDetector(k=k, n_outliers=5).scores(points)
        dists = np.sqrt(
            ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
        )
        expected = np.sort(dists, axis=1)[:, k]  # column 0 is self
        assert np.allclose(scores, expected)

    def test_isolated_point_has_max_score(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(100, 2))
        points = np.vstack([cluster, [[20.0, 20.0]]])
        scores = KNNOutlierDetector(k=3, n_outliers=1).scores(points)
        assert scores.argmax() == 100


class TestDetect:
    def test_top_n_exact_count(self, rng):
        points = rng.normal(size=(200, 2))
        result = KNNOutlierDetector(k=5, n_outliers=7).detect(points)
        # Ties could exceed n slightly; with continuous data they don't.
        assert result.n_outliers == 7

    def test_contamination_mode(self, rng):
        points = rng.normal(size=(200, 2))
        result = KNNOutlierDetector(k=5, contamination=0.1).detect(points)
        assert result.n_outliers == pytest.approx(20, abs=2)

    def test_finds_planted(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(150, 2))
        planted = rng.uniform(8.0, 12.0, size=(4, 2))
        points = np.vstack([cluster, planted])
        result = KNNOutlierDetector(k=5, n_outliers=4).detect(points)
        assert result.outlier_mask[-4:].all()

    def test_different_notion_than_dbscout(self, rng):
        # A sparse-but-uniform shell: every point has a large
        # k-distance (kNN flags the requested quota there) yet enough
        # eps-neighbors for DBSCOUT to call the dense core inliers.
        from repro import detect_outliers

        dense = rng.normal(0.0, 0.2, size=(150, 2))
        sparse_ring_angles = rng.uniform(0, 2 * np.pi, 30)
        ring = 5.0 * np.column_stack(
            [np.cos(sparse_ring_angles), np.sin(sparse_ring_angles)]
        )
        points = np.vstack([dense, ring])
        knn = KNNOutlierDetector(k=5, n_outliers=30).detect(points)
        scout = detect_outliers(points, eps=3.0, min_pts=5)
        # kNN flags the ring (largest k-distances); DBSCOUT keeps it
        # (enough eps=3 neighbors along the ring).
        assert knn.outlier_mask[150:].sum() > 20
        assert scout.outlier_mask[150:].sum() < 10


class TestValidation:
    def test_needs_exactly_one_quota(self):
        with pytest.raises(ParameterError):
            KNNOutlierDetector(k=3)
        with pytest.raises(ParameterError):
            KNNOutlierDetector(k=3, n_outliers=5, contamination=0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0, "n_outliers": 1},
            {"k": 3, "n_outliers": 0},
            {"k": 3, "contamination": 0.0},
            {"k": 3, "contamination": 0.9},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            KNNOutlierDetector(**kwargs)

    def test_too_few_points(self, rng):
        with pytest.raises(ParameterError):
            KNNOutlierDetector(k=10, n_outliers=1).detect(
                rng.normal(size=(5, 2))
            )

    def test_n_exceeds_dataset(self, rng):
        with pytest.raises(ParameterError):
            KNNOutlierDetector(k=2, n_outliers=100).detect(
                rng.normal(size=(10, 2))
            )
