"""Tests for the Local Outlier Factor baseline."""

import numpy as np
import pytest

from repro.baselines.lof import LocalOutlierFactor, lof_scores
from repro.exceptions import ParameterError


def brute_lof(points: np.ndarray, k: int) -> np.ndarray:
    """Direct transcription of the LOF definition for small inputs."""
    n = points.shape[0]
    dists = np.sqrt(
        ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    )
    np.fill_diagonal(dists, np.inf)
    neighbor_idx = np.argsort(dists, axis=1)[:, :k]
    neighbor_dist = np.take_along_axis(dists, neighbor_idx, axis=1)
    k_dist = neighbor_dist[:, -1]
    reach = np.maximum(k_dist[neighbor_idx], neighbor_dist)
    lrd = 1.0 / np.maximum(reach.mean(axis=1), np.finfo(float).tiny)
    return lrd[neighbor_idx].mean(axis=1) / lrd


class TestScores:
    def test_matches_brute_force(self, rng):
        points = rng.normal(size=(80, 2))
        assert np.allclose(lof_scores(points, 5), brute_lof(points, 5))

    def test_matches_brute_force_3d(self, rng):
        points = rng.normal(size=(60, 3))
        assert np.allclose(lof_scores(points, 7), brute_lof(points, 7))

    def test_uniform_data_scores_near_one(self, rng):
        points = rng.uniform(0, 1, size=(500, 2))
        scores = lof_scores(points, 10)
        # Interior points of homogeneous data have LOF ~ 1.
        assert np.median(scores) == pytest.approx(1.0, abs=0.15)

    def test_isolated_point_scores_high(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(100, 2))
        points = np.vstack([cluster, [[10.0, 10.0]]])
        scores = lof_scores(points, 5)
        assert scores[-1] > 5.0
        assert scores[-1] == scores.max()

    def test_duplicate_points_do_not_crash(self):
        points = np.vstack([np.tile([[0.0, 0.0]], (10, 1)), [[5.0, 5.0]]])
        scores = lof_scores(points, 3)
        assert np.isfinite(scores).all()

    def test_k_validation(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ParameterError):
            lof_scores(points, 0)
        with pytest.raises(ParameterError):
            lof_scores(points, 10)


class TestDetector:
    def test_flags_requested_fraction(self, rng):
        points = rng.normal(size=(200, 2))
        result = LocalOutlierFactor(k=10, contamination=0.1).detect(points)
        assert result.n_outliers == pytest.approx(20, abs=3)

    def test_finds_planted_outliers(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(195, 2))
        planted = rng.uniform(5.0, 10.0, size=(5, 2))
        points = np.vstack([cluster, planted])
        result = LocalOutlierFactor(k=10, contamination=0.025).detect(points)
        assert result.outlier_mask[-5:].all()

    def test_scores_attached(self, rng):
        points = rng.normal(size=(50, 2))
        result = LocalOutlierFactor(k=5, contamination=0.1).detect(points)
        assert result.scores is not None
        assert result.scores.shape == (50,)
        # Flagged points carry the largest scores.
        flagged_min = result.scores[result.outlier_mask].min()
        unflagged_max = (
            result.scores[~result.outlier_mask].max()
            if (~result.outlier_mask).any()
            else -np.inf
        )
        assert flagged_min >= unflagged_max

    def test_contamination_validation(self):
        with pytest.raises(ParameterError):
            LocalOutlierFactor(contamination=0.0)
        with pytest.raises(ParameterError):
            LocalOutlierFactor(contamination=0.7)

    def test_repr(self):
        assert "k=10" in repr(LocalOutlierFactor(k=10))
