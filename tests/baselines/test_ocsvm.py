"""Tests for the One-Class SVM baseline."""

import numpy as np
import pytest

from repro.baselines.ocsvm import OneClassSVM
from repro.exceptions import NotFittedError, ParameterError


class TestDetector:
    def test_isolated_point_flagged(self, rng):
        cluster = rng.normal(0.0, 0.5, size=(300, 2))
        points = np.vstack([cluster, [[12.0, 12.0]]])
        result = OneClassSVM(nu=0.01, n_epochs=10, seed=0).detect(points)
        assert result.outlier_mask[-1]

    def test_decision_lower_for_outliers(self, rng):
        cluster = rng.normal(0.0, 0.5, size=(300, 2))
        model = OneClassSVM(nu=0.05, n_epochs=10, seed=0).fit(cluster)
        inside = model.decision_function(np.array([[0.0, 0.0]]))[0]
        outside = model.decision_function(np.array([[20.0, 20.0]]))[0]
        assert inside > outside

    def test_nu_controls_flagged_fraction(self, rng):
        points = rng.normal(size=(400, 2))
        result = OneClassSVM(nu=0.1, n_epochs=5, seed=0).detect(points)
        assert result.n_outliers == pytest.approx(40, abs=5)

    def test_deterministic(self, rng):
        points = rng.normal(size=(100, 2))
        a = OneClassSVM(nu=0.05, n_epochs=5, seed=9).detect(points)
        b = OneClassSVM(nu=0.05, n_epochs=5, seed=9).detect(points)
        assert np.array_equal(a.outlier_mask, b.outlier_mask)

    def test_gamma_scale_default(self, rng):
        points = rng.normal(size=(100, 2)) * 100.0  # large scale
        result = OneClassSVM(nu=0.05, n_epochs=5, seed=0).detect(points)
        assert result.n_points == 100  # just exercises the scale path

    def test_explicit_gamma(self, rng):
        points = rng.normal(size=(100, 2))
        result = OneClassSVM(nu=0.05, gamma=0.5, n_epochs=5, seed=0).detect(
            points
        )
        assert result.scores is not None

    def test_constant_data_does_not_crash(self):
        points = np.tile([[3.0, 3.0]], (50, 1))
        result = OneClassSVM(nu=0.1, n_epochs=3, seed=0).detect(points)
        assert result.n_points == 50

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            OneClassSVM().decision_function(rng.normal(size=(5, 2)))

    def test_needs_two_points(self):
        with pytest.raises(ParameterError):
            OneClassSVM().fit(np.array([[0.0, 0.0]]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nu": 0.0},
            {"nu": 0.8},
            {"gamma": -1.0},
            {"gamma": "auto"},
            {"n_features": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            OneClassSVM(**kwargs)
